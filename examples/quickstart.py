#!/usr/bin/env python3
"""Quickstart: build a two-thread AADL system and analyze schedulability.

Builds a single-processor rate-monotonic system programmatically, runs the
full paper pipeline (translate to ACSR, explore the prioritized state
space, raise any deadlock back to AADL terms), and prints the verdict --
then repeats with an overloaded variant to show a failing scenario with
its timeline.

Run:  python examples/quickstart.py
"""

from repro.aadl.builder import SystemBuilder
from repro.aadl.properties import DispatchProtocol, SchedulingProtocol, ms
from repro.analysis import analyze_model


def build_system(fast_wcet: int, slow_wcet: int):
    """One processor, two periodic threads, RM scheduling."""
    builder = SystemBuilder("Quickstart")
    cpu = builder.processor(
        "cpu", scheduling=SchedulingProtocol.RATE_MONOTONIC
    )
    builder.thread(
        "fast",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(fast_wcet), ms(fast_wcet)),
        deadline=ms(4),
        processor=cpu,
    )
    builder.thread(
        "slow",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(slow_wcet), ms(slow_wcet)),
        deadline=ms(8),
        processor=cpu,
    )
    return builder.instantiate()


def main() -> None:
    print("=== schedulable system (U = 1/4 + 2/8 = 0.5) ===")
    result = analyze_model(build_system(fast_wcet=1, slow_wcet=2))
    print(result.format())

    print()
    print("=== overloaded system (U = 3/4 + 3/8 = 1.125) ===")
    result = analyze_model(build_system(fast_wcet=3, slow_wcet=3))
    print(result.format())
    print()
    print(
        "The timeline shows the fast thread (priority 2 under RM) "
        "monopolizing the cpu;\nthe slow thread accumulates only "
        "preempted quanta and its dispatcher blocks at\nits deadline -- "
        "the deadlock VERSA-style exploration detects."
    )


if __name__ == "__main__":
    main()
