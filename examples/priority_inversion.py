#!/usr/bin/env python3
"""Shared data, priority inversion, and the ceiling protocol (paper S5).

Three threads on one HPF processor; High and Low share a data component
(Figure 5's resource set R), Medium computes independently.  Once Low has
started executing it holds the shared resource, so when Medium preempts
Low while High waits for the resource, High's tight deadline expires --
the classic *unbounded priority inversion*.  The exhaustive analysis
finds it and raises the scenario; re-translating with
``TranslationOptions(use_priority_ceiling=True)`` (the immediate-ceiling
encoding the paper's S5 alludes to with "priority-inheritance protocol")
bounds the blocking and the system becomes schedulable.

Run:  python examples/priority_inversion.py
"""

from repro.aadl.gallery import priority_inversion_trio
from repro.analysis import analyze_model
from repro.translate import TranslationOptions


def main() -> None:
    instance = priority_inversion_trio()
    print("threads (priority, C, T, D in ms):")
    print("  high   (3, C=1, T=4,  D=3)  -- requires access to SharedState")
    print("  medium (2, C=4, T=12, D=12)")
    print("  low    (1, C=2, T=12, D=12) -- requires access to SharedState")
    print()

    print("=== plain HPF (no resource protocol) ===")
    result = analyze_model(instance)
    print(result.format())
    print()
    print(
        "Reading the timeline: Low acquires the shared resource, Medium\n"
        "preempts Low, and High -- blocked on the resource by Low, blocked\n"
        "on the cpu by Medium -- misses its deadline: unbounded inversion."
    )

    print()
    print("=== immediate priority ceiling (use_priority_ceiling=True) ===")
    result = analyze_model(
        instance, options=TranslationOptions(use_priority_ceiling=True)
    )
    print(result.format())
    print()
    print(
        "With the ceiling encoding, Low executes its critical section at\n"
        "High's priority, Medium cannot interleave, and High's blocking is\n"
        "bounded by one critical section: schedulable."
    )


if __name__ == "__main__":
    main()
