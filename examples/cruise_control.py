#!/usr/bin/env python3
"""The paper's Figure 1 cruise-control case study, end to end.

Parses the textual AADL model (two processors joined by a bus, an HCI
subsystem with four threads and a control-law subsystem with two),
instantiates it, shows the resolved semantic connections -- including the
RefSpeed -> Cruise1 connection that crosses three syntactic connections
and is mapped to the bus (paper S2) -- translates it to ACSR (checking
the S4.1 claim: 6 thread processes, 6 dispatchers, 0 queues), analyzes
both the nominal and an overloaded variant, and compares against the
classical baselines.

Run:  python examples/cruise_control.py
"""

from repro.aadl import instantiate, parse_model
from repro.aadl.gallery import cruise_control_text
from repro.analysis import analyze_model, compare_with_baselines
from repro.translate import translate


def main() -> None:
    model = parse_model(cruise_control_text())
    instance = instantiate(model, "CruiseControl.impl")

    print("=== instance model ===")
    print(instance)
    for thread in instance.threads():
        print(
            f"  {thread.qualified_name:<45s} on "
            f"{thread.bound_processor.qualified_name}"
        )
    print()
    print("semantic connections (ultimate source -> ultimate destination):")
    for conn in instance.connections:
        buses = (
            " via " + ", ".join(b.qualified_name for b in conn.buses)
            if conn.buses
            else ""
        )
        print(
            f"  {conn.qualified_name} "
            f"[{len(conn.syntactic)} syntactic]{buses}"
        )

    print()
    print("=== translation (Algorithm 1) ===")
    translation = translate(instance)
    print(
        f"thread processes: {translation.num_thread_processes}, "
        f"dispatchers: {translation.num_dispatchers}, "
        f"queue processes: {translation.num_queue_processes} "
        f"(paper S4.1 claims 6 / 6 / 0)"
    )
    print(f"quantum: {translation.quantizer.quantum}")

    print()
    print("=== nominal analysis ===")
    result = analyze_model(instance)
    print(result.format())

    print()
    print("=== baselines (per-processor classical tests do not apply:")
    print("    two processors + a shared bus) ===")
    for row in compare_with_baselines(instance):
        print(f"  {row!r}")

    print()
    print("=== overloaded variant (Cruise1 wcet 20 ms -> 40 ms) ===")
    model = parse_model(cruise_control_text(overloaded=True))
    overloaded = instantiate(model, "CruiseControl.impl")
    result = analyze_model(overloaded)
    print(result.format())


if __name__ == "__main__":
    main()
