#!/usr/bin/env python3
"""End-to-end latency observers (paper S5).

Installs observer processes on the cruise-control model that measure the
time from RefSpeed's completion (its speed sample leaves on the bus) to
Cruise1's next completion (the control law has consumed it), and sweep
the latency bound to find the crossover: the smallest bound the system
can guarantee.  Observers deadlock the model on violation, so the check
is exhaustive over all interleavings, not a single simulated run.

Run:  python examples/latency_flows.py
"""

from repro.aadl.gallery import cruise_control
from repro.aadl.properties import ms
from repro.analysis import FlowSpec, Verdict, check_latency

SOURCE = "CruiseControl.hci.refspeed"
DESTINATION = "CruiseControl.ccl.cruise1"


def main() -> None:
    instance = cruise_control()
    print(f"flow: {SOURCE} -> {DESTINATION}")
    print(f"{'bound':>8s}  verdict")
    crossover = None
    for bound in (10, 20, 30, 40, 50, 60, 80):
        result = check_latency(
            instance, [FlowSpec(SOURCE, DESTINATION, ms(bound))]
        )
        ok = result.verdict is Verdict.SCHEDULABLE
        print(f"{bound:>6d}ms  {'guaranteed' if ok else 'VIOLATED'}")
        if ok and crossover is None:
            crossover = bound
    print()
    print(
        f"tightest guaranteed bound in the sweep: {crossover} ms\n"
        "(paper S5: 'an observer process can capture violations of an\n"
        "end-to-end latency constraint ... just like a dispatcher process,\n"
        "[it] would deadlock if the output event is not observed by the\n"
        "flow deadline')"
    )

    print()
    print("violation scenario at a 10 ms bound:")
    result = check_latency(
        instance, [FlowSpec(SOURCE, DESTINATION, ms(10))]
    )
    assert result.scenario is not None
    for event in result.scenario.events:
        print(f"  {event!r}")


if __name__ == "__main__":
    main()
