#!/usr/bin/env python3
"""Scheduling-policy encodings (paper S5): RM vs DM vs EDF vs LLF.

Any fixed-priority policy is a static priority per cpu access; EDF and
LLF use parametric priority expressions over the Compute parameters
(e, s).  This example runs the same task sets under all four policies and
shows the classic separation: at full utilization with non-harmonic
periods, RM misses a deadline while EDF/LLF do not -- and the failing RM
scenario is printed as an AADL-level timeline.

Run:  python examples/policy_comparison.py
"""

from repro.aadl.properties import SchedulingProtocol
from repro.analysis import Verdict, analyze_model
from repro.sched import PeriodicTask, TaskSet
from repro.workloads import task_set_to_system

POLICIES = [
    SchedulingProtocol.RATE_MONOTONIC,
    SchedulingProtocol.DEADLINE_MONOTONIC,
    SchedulingProtocol.EARLIEST_DEADLINE_FIRST,
    SchedulingProtocol.LEAST_LAXITY_FIRST,
]

TASK_SETS = {
    "U=0.75 harmonic   (C,T) = (1,4),(4,8)": TaskSet(
        [PeriodicTask("a", 1, 4), PeriodicTask("b", 4, 8)]
    ),
    "U=1.0  harmonic   (C,T) = (2,4),(4,8)": TaskSet(
        [PeriodicTask("a", 2, 4), PeriodicTask("b", 4, 8)]
    ),
    "U=1.0  separating (C,T) = (2,4),(3,6)": TaskSet(
        [PeriodicTask("a", 2, 4), PeriodicTask("b", 3, 6)]
    ),
}


def main() -> None:
    header = f"{'task set':<42s}" + "".join(
        f"{p.value:>8s}" for p in POLICIES
    )
    print(header)
    print("-" * len(header))
    failing_rm = None
    for label, tasks in TASK_SETS.items():
        row = f"{label:<42s}"
        for policy in POLICIES:
            instance = task_set_to_system(tasks, scheduling=policy)
            result = analyze_model(instance)
            verdict = "yes" if result.verdict is Verdict.SCHEDULABLE else "NO"
            row += f"{verdict:>8s}"
            if (
                "separating" in label
                and policy is SchedulingProtocol.RATE_MONOTONIC
                and result.verdict is Verdict.UNSCHEDULABLE
            ):
                failing_rm = result
        print(row)

    if failing_rm is not None:
        print()
        print("RM failing scenario for the separating set, raised to the")
        print("AADL level (paper S5/S7 'time line form'):")
        print(failing_rm.scenario.format())


if __name__ == "__main__":
    main()
