#!/usr/bin/env python3
"""Multi-modal systems: per-mode schedulability analysis (paper S2).

AADL systems can reconfigure at runtime: "a failure in one of the
components can cause a switch to a recovery mode, in which the failed
component is inactive and its connections are re-routed."  The paper
models modes but omits them from the translation; this library analyzes
each system operation mode as its own completely-bound system
(`analyze_all_modes`), so a mode that only becomes overloaded under
reconfiguration is caught before deployment.

The model: a flight-data system with a `nominal` mode (primary filter +
logger) and a `degraded` mode in which a heavier backup filter replaces
the primary and the logger keeps running.  The backup's demand makes the
degraded mode unschedulable -- detected mode-by-mode.

Run:  python examples/multi_modal.py
"""

from repro.aadl import parse_model
from repro.analysis import analyze_all_modes

MODEL = """
processor CPU
  properties
    Scheduling_Protocol => RMS;
end CPU;

thread PrimaryFilter
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Compute_Deadline => 8 ms;
end PrimaryFilter;

thread BackupFilter
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 6 ms .. 6 ms;
    Compute_Deadline => 8 ms;
end BackupFilter;

thread Logger
  properties
    Dispatch_Protocol => Periodic;
    Period => 16 ms;
    Compute_Execution_Time => 5 ms .. 5 ms;
    Compute_Deadline => 16 ms;
end Logger;

thread Watchdog
  features
    fail: out event port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 16 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Compute_Deadline => 16 ms;
end Watchdog;

system FlightData end FlightData;

system implementation FlightData.impl
  subcomponents
    primary: thread PrimaryFilter in modes (nominal);
    backup: thread BackupFilter in modes (degraded);
    logger: thread Logger;
    watchdog: thread Watchdog;
    cpu: processor CPU;
  modes
    nominal: initial mode;
    degraded: mode;
    m1: nominal -[watchdog.fail]-> degraded;
  properties
    Actual_Processor_Binding => reference(cpu) applies to primary;
    Actual_Processor_Binding => reference(cpu) applies to backup;
    Actual_Processor_Binding => reference(cpu) applies to logger;
    Actual_Processor_Binding => reference(cpu) applies to watchdog;
end FlightData.impl;
"""


def main() -> None:
    model = parse_model(MODEL)
    result = analyze_all_modes(model, "FlightData.impl")
    print(result.format())
    print()
    print(
        "nominal mode:  primary (2/8) + logger (5/16) + watchdog (1/16) "
        "= U 0.625\n"
        "degraded mode: backup (6/8) + logger (5/16) + watchdog (1/16) "
        "= U 1.125\n"
        "The degraded configuration is infeasible; the per-mode analysis\n"
        "pins the miss on the logger starved by the backup filter."
    )


if __name__ == "__main__":
    main()
