#!/usr/bin/env python3
"""Event-driven threads, queues, and overflow protocols (paper S4.3-4.4).

This is the regime the paper motivates: "systems with complex patterns of
interaction between components, which in AADL go beyond the scope of more
traditional schedulability analysis algorithms."  A periodic producer
raises events consumed by a sporadic thread whose minimum separation is
longer than the producer's period, so the connection queue fills up:

* with the Drop protocols, excess events are silently discarded and the
  system stays schedulable;
* with the Error protocol, the queue's error state deadlocks the model
  and the raised scenario reports the overflowing connection.

A second section dispatches an aperiodic worker from a *device* -- the
environment modeled as a nondeterministic event source -- which no
classical task-set test can express.

Run:  python examples/event_driven_pipeline.py
"""

from repro.aadl import instantiate, parse_model
from repro.aadl.gallery import sporadic_consumer
from repro.aadl.properties import OverflowHandlingProtocol
from repro.analysis import analyze_model

DEVICE_DRIVEN = """
processor CPU
  properties
    Scheduling_Protocol => DMS;
end CPU;

device Radar
  features
    echo: out event port;
end Radar;

thread Tracker
  features
    echo: in event port { Queue_Size => 2; };
  properties
    Dispatch_Protocol => Sporadic;
    Period => 4 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Compute_Deadline => 4 ms;
end Tracker;

thread Logger
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Compute_Deadline => 8 ms;
end Logger;

system Surveillance end Surveillance;

system implementation Surveillance.impl
  subcomponents
    radar: device Radar;
    tracker: thread Tracker;
    logger: thread Logger;
    cpu: processor CPU;
  connections
    c1: port radar.echo -> tracker.echo;
  properties
    Actual_Processor_Binding => reference(cpu) applies to tracker;
    Actual_Processor_Binding => reference(cpu) applies to logger;
end Surveillance.impl;
"""


def main() -> None:
    print("=== queue overflow protocols (S4.4) ===")
    for overflow in (
        OverflowHandlingProtocol.DROP_NEWEST,
        OverflowHandlingProtocol.ERROR,
    ):
        instance = sporadic_consumer(
            queue_size=1,
            overflow=overflow,
            producer_period=2,
            min_separation=8,
        )
        result = analyze_model(instance)
        print(f"\nOverflow_Handling_Protocol => {overflow.value}:")
        print(f"  verdict: {result.verdict.value} "
              f"({result.num_states} states)")
        if result.scenario is not None and result.scenario.overflows:
            print("  overflowing connection(s):")
            for conn in result.scenario.overflows:
                print(f"    {conn}")

    print()
    print("=== device-driven sporadic dispatch ===")
    model = parse_model(DEVICE_DRIVEN)
    instance = instantiate(model, "Surveillance.impl")
    result = analyze_model(instance)
    print(
        "Radar device modeled as a nondeterministic event source; the\n"
        "exploration covers EVERY arrival pattern respecting the queue:\n"
    )
    print(result.format())


if __name__ == "__main__":
    main()
