#!/usr/bin/env python3
"""Working with ACSR directly: the paper's Figures 2 and 3.

The library's ACSR layer is a full process algebra usable on its own:
build terms with combinators or parse the VERSA-like concrete syntax,
inspect prioritized transitions, explore state spaces, minimize modulo
strong bisimulation, and export to networkx.

Run:  python examples/acsr_playground.py
"""

from repro.acsr import (
    format_env,
    format_label,
    format_term,
    parse_env,
)
from repro.versa import LTS, Explorer, bisimulation_quotient, find_reachable
from repro.versa.queries import contains_proc

# Figure 2b + Figure 3, in concrete syntax.  Simple computes one step on
# the cpu then one on cpu+bus and announces completion; the driver steals
# the bus for one quantum, then either interrupts Simple or starves it
# off the cpu until it raises the exception.
SOURCE = r"""
-- Figure 2b: Simple with idling steps so it can wait for resources.
process Simple  = {(cpu,1)} : Step2
                + idle : (exc!,1) . Simple;
process Step2   = {(cpu,1),(bus,1)} : (done!,1) . Simple
                + idle : Step2;

-- Figure 3 driver: disjoint step, preempting step, a pause, then the
-- two alternative behaviours.
process Driver  = {(bus,2)} : {(bus,2)} : idle :
                  ( (interrupt!,0) . DriverIdle
                  + {(cpu,2)} : Starver );
process Starver = {(cpu,2)} : Starver;
process DriverIdle = idle : DriverIdle;

process ExcHandler = idle : ExcHandler;
process IntHandler = idle : IntHandler;

system ( scope( Simple; inf;
                except exc -> ExcHandler;
                interrupt -> (interrupt?,0) . IntHandler )
         || Driver ) \ {interrupt};
"""


def main() -> None:
    env, root = parse_env(SOURCE)
    print("=== parsed model (round-tripped through the printer) ===")
    print(format_env(env, root))

    system = env.close(root)
    print("=== prioritized steps from the initial state ===")
    for label, successor in system.prioritized_steps():
        print(f"  {format_label(label):<24s} -> {format_term(successor)[:60]}")

    print()
    print("=== exhaustive exploration ===")
    result = Explorer(system, store_transitions=True).run()
    print(f"  {result}")

    for target, description in (
        ("IntHandler", "interrupt exit (involuntary release)"),
        ("ExcHandler", "exception exit (voluntary release when starved)"),
    ):
        trace = find_reachable(system, contains_proc(target))
        status = "reachable" if trace is not None else "NOT reachable"
        print(f"  {description}: {status}")
        if trace is not None:
            for step in trace:
                print(f"      {format_label(step.label)}")

    print()
    print("=== LTS export and bisimulation minimization ===")
    lts = LTS.from_exploration(result)
    quotient, _ = bisimulation_quotient(lts)
    print(f"  explored LTS:  {lts}")
    print(f"  quotient:      {quotient}")
    graph = lts.to_networkx()
    print(
        f"  networkx view: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges"
    )


if __name__ == "__main__":
    main()
