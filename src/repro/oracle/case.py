"""One differential-testing case: a task set plus its provenance.

A case is the unit the oracle harness generates, analyzes, shrinks and
persists.  Its single source of truth is the explicit task list (the
shrinker mutates it); the generator name, seed and parameters are
provenance metadata that make the original draw reproducible.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.aadl.instance import SystemInstance
from repro.aadl.printer import format_model
from repro.aadl.properties import SchedulingProtocol
from repro.errors import SchedError
from repro.sched.taskmodel import PeriodicTask, TaskSet
from repro.workloads.generators import task_set_builder
from repro.workloads.taskgen import generate_task_set


def _task_to_dict(task: PeriodicTask) -> Dict[str, Any]:
    return {
        "name": task.name,
        "wcet": task.wcet,
        "period": task.period,
        "deadline": task.deadline,
        "priority": task.priority,
        "bcet": task.bcet,
        "offset": task.offset,
    }


def _task_from_dict(data: Dict[str, Any]) -> PeriodicTask:
    return PeriodicTask(
        data["name"],
        wcet=data["wcet"],
        period=data["period"],
        deadline=data.get("deadline"),
        priority=data.get("priority"),
        bcet=data.get("bcet"),
        offset=data.get("offset", 0),
    )


class OracleCase:
    """A task set under a scheduling protocol, with reproducible origin.

    Attributes:
        case_id: stable identifier (``<generator>-<seed>`` for generated
            cases); used as the repro-bundle file name.
        generator: name in :data:`repro.workloads.GENERATORS`, or
            ``"manual"`` for hand-built cases.
        seed: the seed of the original draw (``None`` for manual cases).
        params: keyword arguments of the original draw (``n``,
            ``utilization``, period pool overrides, ...).
        scheduling: AADL ``Scheduling_Protocol`` value (``"RMS"``,
            ``"DMS"``, ``"EDF"``, ...).
        tasks: the explicit task list (source of truth; survives
            shrinking while the provenance fields describe the original).
    """

    def __init__(
        self,
        *,
        case_id: str,
        generator: str,
        seed: Optional[int],
        params: Dict[str, Any],
        scheduling: str,
        tasks: List[Dict[str, Any]],
    ) -> None:
        SchedulingProtocol(scheduling)  # validate early
        self.case_id = case_id
        self.generator = generator
        self.seed = seed
        self.params = dict(params)
        self.scheduling = scheduling
        self.tasks = [dict(task) for task in tasks]

    # -- construction ---------------------------------------------------

    @classmethod
    def generate(
        cls,
        generator: str,
        seed: int,
        *,
        n: int,
        utilization: float,
        scheduling: str,
        **params: Any,
    ) -> "OracleCase":
        """Draw a case from a named workload generator."""
        tasks = generate_task_set(
            generator,
            n,
            utilization,
            rng=np.random.default_rng(seed),
            **params,
        )
        return cls(
            case_id=f"{generator}-{seed}",
            generator=generator,
            seed=seed,
            params={"n": n, "utilization": utilization, **params},
            scheduling=scheduling,
            tasks=[_task_to_dict(task) for task in tasks],
        )

    @classmethod
    def from_task_set(
        cls,
        tasks: TaskSet,
        *,
        scheduling: str,
        case_id: str = "manual",
    ) -> "OracleCase":
        """Wrap an explicit task set (corpus seeding, tests)."""
        return cls(
            case_id=case_id,
            generator="manual",
            seed=None,
            params={},
            scheduling=scheduling,
            tasks=[_task_to_dict(task) for task in tasks],
        )

    def with_tasks(self, tasks: TaskSet) -> "OracleCase":
        """A copy of this case with a different task list (shrinking)."""
        return OracleCase(
            case_id=self.case_id,
            generator=self.generator,
            seed=self.seed,
            params=self.params,
            scheduling=self.scheduling,
            tasks=[_task_to_dict(task) for task in tasks],
        )

    # -- materialization ------------------------------------------------

    def task_set(self) -> TaskSet:
        """The explicit task set (validates the task invariants)."""
        return TaskSet([_task_from_dict(task) for task in self.tasks])

    def protocol(self) -> SchedulingProtocol:
        return SchedulingProtocol(self.scheduling)

    def system(self) -> SystemInstance:
        """The case as a bound single-processor AADL instance."""
        return task_set_builder(
            self.task_set(), scheduling=self.protocol()
        ).instantiate()

    def aadl_text(self) -> str:
        """AADL source of the case (round-trips through the parser)."""
        return format_model(
            task_set_builder(
                self.task_set(), scheduling=self.protocol()
            ).declarative()
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case_id": self.case_id,
            "generator": self.generator,
            "seed": self.seed,
            "params": dict(self.params),
            "scheduling": self.scheduling,
            "tasks": [dict(task) for task in self.tasks],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OracleCase":
        missing = {"case_id", "generator", "scheduling", "tasks"} - set(data)
        if missing:
            raise SchedError(
                f"oracle case is missing fields: {sorted(missing)}"
            )
        return cls(
            case_id=data["case_id"],
            generator=data["generator"],
            seed=data.get("seed"),
            params=data.get("params", {}),
            scheduling=data["scheduling"],
            tasks=data["tasks"],
        )

    def __repr__(self) -> str:
        return (
            f"OracleCase({self.case_id!r}, {self.scheduling}, "
            f"{len(self.tasks)} task(s))"
        )
