"""Replayable repro bundles: the oracle's persistent artifact format.

A bundle freezes everything needed to re-run one case years later with
no access to the original campaign: the (shrunk) case, the original
pre-shrink case when there was one, both sides' verdicts, the agreement
classification, the AADL source text, and the tool parameters.  Two
kinds exist:

* ``disagreement`` -- written by a campaign when the pipeline and an
  oracle conflict; the bug report.
* ``regression`` -- an *agreed* case interesting enough to pin forever
  (boundary utilization, offset rescues, ...); the committed corpus
  under ``tests/corpus/`` replays these on every CI run.

``repro oracle replay <bundle>`` (and :func:`replay_bundle`) re-runs the
pipeline and oracles on the stored case and reports whether the current
code still produces the recorded verdict.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Union

from repro.analysis.schedulability import Verdict
from repro.errors import SchedError
from repro.oracle.case import OracleCase
from repro.oracle.verdicts import (
    CaseClassification,
    FaultFn,
    OracleVerdict,
    classical_verdicts,
    classify,
    run_pipeline,
)

SCHEMA_VERSION = 1

#: Default artifact directory for campaign-written bundles.
DEFAULT_ARTIFACTS_DIR = os.path.join("artifacts", "oracle")


class ReproBundle:
    """One frozen case plus both sides' verdicts and provenance."""

    def __init__(
        self,
        *,
        kind: str,
        case: OracleCase,
        pipeline_verdict: str,
        pipeline_states: int,
        pipeline_elapsed: float,
        oracles: List[OracleVerdict],
        classification: CaseClassification,
        aadl: str,
        max_states: int,
        profile: Optional[str] = None,
        fault: Optional[str] = None,
        original_case: Optional[OracleCase] = None,
        shrink_evaluations: int = 0,
    ) -> None:
        if kind not in ("disagreement", "regression"):
            raise SchedError(f"unknown bundle kind {kind!r}")
        Verdict(pipeline_verdict)  # validate early
        self.kind = kind
        self.case = case
        self.pipeline_verdict = pipeline_verdict
        self.pipeline_states = pipeline_states
        self.pipeline_elapsed = pipeline_elapsed
        self.oracles = list(oracles)
        self.classification = classification
        self.aadl = aadl
        self.max_states = max_states
        self.profile = profile
        self.fault = fault
        self.original_case = original_case
        self.shrink_evaluations = shrink_evaluations

    # -- construction ---------------------------------------------------

    @classmethod
    def from_evaluation(
        cls,
        *,
        kind: str,
        case: OracleCase,
        pipeline,
        oracles: List[OracleVerdict],
        classification: CaseClassification,
        max_states: int,
        profile: Optional[str] = None,
        fault: Optional[str] = None,
        original_case: Optional[OracleCase] = None,
        shrink_evaluations: int = 0,
    ) -> "ReproBundle":
        """Build a bundle from an :func:`evaluate_case`-style result."""
        return cls(
            kind=kind,
            case=case,
            pipeline_verdict=pipeline.verdict.value,
            pipeline_states=pipeline.num_states,
            pipeline_elapsed=pipeline.elapsed,
            oracles=oracles,
            classification=classification,
            aadl=case.aadl_text(),
            max_states=max_states,
            profile=profile,
            fault=fault,
            original_case=original_case,
            shrink_evaluations=shrink_evaluations,
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "case": self.case.to_dict(),
            "pipeline": {
                "verdict": self.pipeline_verdict,
                "states": self.pipeline_states,
                "elapsed": self.pipeline_elapsed,
            },
            "oracles": [oracle.to_dict() for oracle in self.oracles],
            "classification": self.classification.to_dict(),
            "aadl": self.aadl,
            "tool": {
                "max_states": self.max_states,
                "profile": self.profile,
                "fault": self.fault,
                "shrink_evaluations": self.shrink_evaluations,
            },
        }
        if self.original_case is not None:
            data["original_case"] = self.original_case.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReproBundle":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchedError(
                f"unsupported bundle schema version {version!r} "
                f"(this tool reads version {SCHEMA_VERSION})"
            )
        tool = data.get("tool", {})
        original = data.get("original_case")
        return cls(
            kind=data["kind"],
            case=OracleCase.from_dict(data["case"]),
            pipeline_verdict=data["pipeline"]["verdict"],
            pipeline_states=data["pipeline"].get("states", 0),
            pipeline_elapsed=data["pipeline"].get("elapsed", 0.0),
            oracles=[
                OracleVerdict.from_dict(entry)
                for entry in data.get("oracles", [])
            ],
            classification=CaseClassification.from_dict(
                data["classification"]
            ),
            aadl=data.get("aadl", ""),
            max_states=tool.get("max_states", 300_000),
            profile=tool.get("profile"),
            fault=tool.get("fault"),
            original_case=(
                OracleCase.from_dict(original) if original else None
            ),
            shrink_evaluations=tool.get("shrink_evaluations", 0),
        )

    def save(self, directory: str) -> str:
        """Write the bundle as ``<case_id>.json`` under ``directory``."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.case.case_id}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ReproBundle":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def replay_command(self, path: Optional[str] = None) -> str:
        """The CLI incantation that replays this bundle."""
        where = path or os.path.join(
            DEFAULT_ARTIFACTS_DIR, f"{self.case.case_id}.json"
        )
        return f"repro oracle replay {where}"

    def __repr__(self) -> str:
        return (
            f"ReproBundle({self.kind}, {self.case.case_id!r}, "
            f"pipeline={self.pipeline_verdict})"
        )


class ReplayResult:
    """Outcome of re-running a bundle on the current code."""

    __slots__ = ("bundle", "pipeline", "oracles", "classification")

    def __init__(self, bundle, pipeline, oracles, classification) -> None:
        self.bundle = bundle
        self.pipeline = pipeline
        self.oracles = oracles
        self.classification = classification

    @property
    def verdict_matches(self) -> bool:
        """Does the current pipeline verdict equal the recorded one?"""
        return self.pipeline.verdict.value == self.bundle.pipeline_verdict

    def format(self) -> str:
        lines = [
            f"bundle: {self.bundle.case.case_id} ({self.bundle.kind})",
            f"recorded verdict: {self.bundle.pipeline_verdict}",
            f"current verdict:  {self.pipeline.verdict.value} "
            f"({self.pipeline.num_states} states, "
            f"{self.pipeline.elapsed:.3f}s)",
            f"current agreement: {self.classification.status.value}",
        ]
        if self.classification.conflicts:
            lines.append(
                "conflicting oracles: "
                + ", ".join(self.classification.conflicts)
            )
        for note in self.classification.notes:
            lines.append(f"note: {note}")
        lines.append(
            "verdict match: " + ("yes" if self.verdict_matches else "NO")
        )
        return "\n".join(lines)


def replay_bundle(
    bundle: ReproBundle,
    *,
    max_states: Optional[int] = None,
    fault: Union[FaultFn, str, None] = None,
) -> ReplayResult:
    """Re-run the pipeline and oracles on a bundle's stored case.

    ``fault`` defaults to none -- replaying a disagreement bundle on a
    *fixed* pipeline is exactly how a fix is confirmed.  Pass the
    original fault (name or callable) back in to reproduce the
    historical failure.
    """
    if isinstance(fault, str):
        from repro.oracle.faults import get_fault

        fault = get_fault(fault)
    budget = max_states if max_states is not None else bundle.max_states
    pipeline = run_pipeline(bundle.case, max_states=budget, fault=fault)
    oracles = classical_verdicts(bundle.case)
    classification = classify(pipeline, oracles)
    return ReplayResult(bundle, pipeline, oracles, classification)
