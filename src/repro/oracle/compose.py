"""Differential oracle for compositional analysis.

The relation under test: on any workload, ``analyze --compose`` and the
monolithic pipeline must reach the **same verdict**.  For decomposable
models that is the soundness claim of the island decomposition (a
deadlock in some island is a deadlock of the composition, and a
deadlock-free product of independent islands is deadlock-free); for
coupled models it is trivially true because compose falls back to the
monolithic pipeline -- the campaign still runs such cases to pin the
fallback path.

Each seeded case draws a multiprocessor system from
:func:`repro.workloads.generators.multiprocessor_system`
(``shared_bus=False`` gives an island per processor; a fraction keeps
the bus to exercise the fallback), runs both analyses, and classifies:

* ``AGREED`` -- same decided verdict;
* ``UNKNOWN`` -- either side exhausted its budget (a budget-bound
  demotion is not evidence of unsoundness: an island can decide what
  the larger monolithic space cannot);
* ``DISAGREED`` -- both sides decided and differ.  This is the bug
  signal; CI gates on it.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

import numpy as np

from repro.analysis.schedulability import Verdict, analyze_model
from repro.compose.runner import analyze_compositionally
from repro.oracle.verdicts import AgreementStatus
from repro.workloads.generators import multiprocessor_system


class ComposeCaseOutcome:
    """One seed's monolithic-vs-compositional comparison."""

    __slots__ = (
        "seed",
        "status",
        "monolithic_verdict",
        "compositional_verdict",
        "mode",
        "islands",
        "monolithic_states",
        "compositional_states",
        "coupled",
    )

    def __init__(
        self,
        *,
        seed: int,
        status: AgreementStatus,
        monolithic_verdict: Verdict,
        compositional_verdict: Verdict,
        mode: str,
        islands: int,
        monolithic_states: int,
        compositional_states: int,
        coupled: bool,
    ) -> None:
        self.seed = seed
        self.status = status
        self.monolithic_verdict = monolithic_verdict
        self.compositional_verdict = compositional_verdict
        self.mode = mode
        self.islands = islands
        self.monolithic_states = monolithic_states
        self.compositional_states = compositional_states
        self.coupled = coupled

    def __repr__(self) -> str:
        return (
            f"ComposeCaseOutcome(seed={self.seed}, {self.status.value}, "
            f"mono={self.monolithic_verdict.value}, "
            f"comp={self.compositional_verdict.value})"
        )


class ComposeCampaignReport:
    """Aggregate of one compositional-agreement campaign."""

    def __init__(
        self,
        *,
        outcomes: List[ComposeCaseOutcome],
        elapsed: float,
        base_seed: int,
    ) -> None:
        self.outcomes = outcomes
        self.elapsed = elapsed
        self.base_seed = base_seed

    @property
    def disagreements(self) -> List[ComposeCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.DISAGREED
        ]

    @property
    def agreed(self) -> List[ComposeCaseOutcome]:
        return [
            o for o in self.outcomes if o.status is AgreementStatus.AGREED
        ]

    @property
    def unknown(self) -> List[ComposeCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.UNKNOWN
        ]

    def format(self) -> str:
        decomposed = [o for o in self.outcomes if o.mode == "compositional"]
        lines = [
            f"compose campaign: {len(self.outcomes)} case(s) "
            f"(base seed {self.base_seed}), {self.elapsed:.1f}s",
            f"  agreed: {len(self.agreed)}  "
            f"disagreed: {len(self.disagreements)}  "
            f"unknown: {len(self.unknown)}",
            f"  decomposed: {len(decomposed)}, "
            f"monolithic fallback: {len(self.outcomes) - len(decomposed)}",
        ]
        if decomposed:
            mono = sum(o.monolithic_states for o in decomposed)
            comp = sum(o.compositional_states for o in decomposed)
            lines.append(
                f"  states over decomposed cases: monolithic {mono}, "
                f"islands {comp}"
            )
        for outcome in self.disagreements:
            lines.append(
                f"  DISAGREED seed {outcome.seed}: monolithic "
                f"{outcome.monolithic_verdict.value} vs compositional "
                f"{outcome.compositional_verdict.value} "
                f"({outcome.islands} islands)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ComposeCampaignReport(cases={len(self.outcomes)}, "
            f"disagreed={len(self.disagreements)})"
        )


def classify_agreement(
    monolithic: Verdict, compositional: Verdict
) -> AgreementStatus:
    """The compositional ≡ monolithic relation, UNKNOWN-aware."""
    if Verdict.UNKNOWN in (monolithic, compositional):
        return AgreementStatus.UNKNOWN
    if monolithic is compositional:
        return AgreementStatus.AGREED
    return AgreementStatus.DISAGREED


def evaluate_compose_case(
    seed: int,
    *,
    max_states: int = 150_000,
    coupled_fraction: float = 0.25,
) -> ComposeCaseOutcome:
    """Draw one multiprocessor system from ``seed`` and compare the two
    analyses.  Every parameter (processor count, thread counts, target
    utilization, bus coupling) derives from the seed, so a failing seed
    reproduces byte-for-byte."""
    rng = np.random.default_rng(seed)
    n_processors = int(rng.integers(2, 4))
    threads_per_processor = int(rng.integers(1, 3))
    utilization = float(rng.uniform(0.3, 1.15))
    coupled = bool(rng.random() < coupled_fraction)
    instance = multiprocessor_system(
        n_processors,
        threads_per_processor,
        utilization_per_processor=utilization,
        shared_bus=coupled,
        rng=rng,
    )
    monolithic = analyze_model(instance, max_states=max_states)
    compositional = analyze_compositionally(
        instance, max_states=max_states, workers=1
    )
    return ComposeCaseOutcome(
        seed=seed,
        status=classify_agreement(monolithic.verdict, compositional.verdict),
        monolithic_verdict=monolithic.verdict,
        compositional_verdict=compositional.verdict,
        mode=compositional.mode,
        islands=len(compositional.partition.islands),
        monolithic_states=monolithic.num_states,
        compositional_states=compositional.total_states,
        coupled=coupled,
    )


def run_compose_campaign(
    *,
    seeds: int = 50,
    base_seed: int = 0,
    max_states: int = 150_000,
    coupled_fraction: float = 0.25,
    progress: bool = False,
) -> ComposeCampaignReport:
    """Seeded campaign over the compositional ≡ monolithic relation.

    Runs inline (no pool): each case already analyzes two full models,
    and the monolithic side dominates, so pool-per-case overhead buys
    nothing at smoke scale.
    """
    from repro.obs.tracer import current_tracer

    started = time.perf_counter()
    outcomes: List[ComposeCaseOutcome] = []
    with current_tracer().span(
        "oracle.compose", seeds=seeds, base_seed=base_seed
    ) as span:
        for index in range(seeds):
            outcome = evaluate_compose_case(
                base_seed + index,
                max_states=max_states,
                coupled_fraction=coupled_fraction,
            )
            outcomes.append(outcome)
            if progress:
                print(
                    f"[{index + 1}/{seeds}] seed {outcome.seed}: "
                    f"{outcome.status.value} ({outcome.mode})",
                    file=sys.stderr,
                )
        span.set(
            disagreed=sum(
                1
                for o in outcomes
                if o.status is AgreementStatus.DISAGREED
            )
        )
    return ComposeCampaignReport(
        outcomes=outcomes,
        elapsed=time.perf_counter() - started,
        base_seed=base_seed,
    )
