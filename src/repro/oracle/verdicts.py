"""Verdict collection and agreement classification.

The paper's S5 theorem gives the pipeline an exact external reference on
the classical regime: AADL -> ACSR -> deadlock search must agree with
response-time analysis, the EDF processor-demand criterion and a
simulated worst-case window.  Outside that regime the classical results
weaken to one-sided checks; this module encodes each oracle's *relation*
to the pipeline verdict explicitly so nothing is compared silently:

* ``exact`` -- the oracle's boolean must equal the pipeline's;
* ``sufficient`` -- oracle True forces pipeline True (oracle False says
  nothing), e.g. synchronous RTA on an offset-bearing set;
* ``necessary`` -- oracle False forces pipeline False (oracle True says
  nothing), e.g. the ``U <= 1`` cap.

Oracles that do not apply at all (utilization bounds on constrained
deadlines, say) report ``verdict=None`` with the reason in ``detail``.
A pipeline ``UNKNOWN`` (budget exhausted before coverage) is its own
classification status -- it is never counted as agreement, and never as
disagreement either.  Inexact quantization (impossible for the integer
generators, but checked anyway) demotes every exact oracle to
sufficient and leaves an explanatory note.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, List, Optional, Union

from repro.aadl.properties import SchedulingProtocol
from repro.analysis.schedulability import AnalysisResult, Verdict, analyze_model
from repro.engine.observers import Observer
from repro.errors import SchedError
from repro.oracle.case import OracleCase
from repro.sched.demand import edf_schedulable
from repro.sched.rta import rta_exactness, rta_schedulable
from repro.sched.simulation import simulate
from repro.sched.taskmodel import TaskSet
from repro.sched.utilization import hyperbolic_bound_test, liu_layland_test

#: A fault transforms the task set handed to the *pipeline* side only,
#: emulating a translator defect (the model analyzed differs from the
#: model specified).  See :mod:`repro.oracle.faults`.
FaultFn = Callable[[TaskSet], TaskSet]


class OracleVerdict:
    """One classical method's verdict on one case."""

    __slots__ = ("method", "relation", "verdict", "detail")

    def __init__(
        self,
        method: str,
        relation: str,
        verdict: Optional[bool],
        detail: str = "",
    ) -> None:
        if relation not in ("exact", "sufficient", "necessary"):
            raise SchedError(f"unknown oracle relation {relation!r}")
        self.method = method
        self.relation = relation
        self.verdict = verdict
        self.detail = detail

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "relation": self.relation,
            "verdict": self.verdict,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OracleVerdict":
        return cls(
            data["method"],
            data["relation"],
            data["verdict"],
            data.get("detail", ""),
        )

    def __repr__(self) -> str:
        verdict = (
            "schedulable" if self.verdict
            else "unschedulable" if self.verdict is not None
            else "n/a"
        )
        return f"{self.method} [{self.relation}]: {verdict}"


class AgreementStatus(enum.Enum):
    AGREED = "agreed"
    DISAGREED = "disagreed"
    UNKNOWN = "unknown"


class CaseClassification:
    """Outcome of comparing the pipeline verdict with every oracle."""

    __slots__ = ("status", "conflicts", "notes")

    def __init__(
        self,
        status: AgreementStatus,
        conflicts: List[str],
        notes: List[str],
    ) -> None:
        self.status = status
        self.conflicts = conflicts
        self.notes = notes

    def to_dict(self) -> dict:
        return {
            "status": self.status.value,
            "conflicts": list(self.conflicts),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CaseClassification":
        return cls(
            AgreementStatus(data["status"]),
            list(data.get("conflicts", [])),
            list(data.get("notes", [])),
        )

    def __repr__(self) -> str:
        extra = f", conflicts={self.conflicts}" if self.conflicts else ""
        return f"CaseClassification({self.status.value}{extra})"


def run_pipeline(
    case: OracleCase,
    *,
    max_states: int = 300_000,
    fault: Optional[FaultFn] = None,
    observers: Union[Observer, Iterable[Observer], None] = None,
) -> AnalysisResult:
    """The full AADL -> ACSR -> engine pipeline verdict for a case.

    ``fault`` (testing the harness itself) perturbs the task set on the
    pipeline side only, emulating a translator bug.
    """
    from repro.workloads.generators import task_set_to_system

    tasks = case.task_set()
    if fault is not None:
        tasks = fault(tasks)
    instance = task_set_to_system(tasks, scheduling=case.protocol())
    return analyze_model(instance, max_states=max_states, observers=observers)


def _simulation_horizon(tasks: TaskSet) -> Optional[int]:
    """Exact simulation window: ``O_max + 2H`` for offset sets (Leung &
    Merrill), one hyperperiod for synchronous ones; ``None`` when the
    backlog of an over-utilized asynchronous set may defer the first
    miss past any fixed window."""
    max_offset = max(task.offset for task in tasks)
    if max_offset == 0:
        return tasks.hyperperiod
    if tasks.utilization > 1.0 + 1e-12:
        return None
    return max_offset + 2 * tasks.hyperperiod


def classical_verdicts(case: OracleCase) -> List[OracleVerdict]:
    """Run every applicable classical analysis, tagged with its relation
    to the pipeline verdict (see the module docstring)."""
    tasks = case.task_set()
    protocol = case.protocol()
    synchronous = all(task.offset == 0 for task in tasks)
    verdicts: List[OracleVerdict] = []

    # Utilization cap: schedulable => U <= 1 on one processor, always.
    utilization = tasks.utilization
    verdicts.append(
        OracleVerdict(
            "utilization-cap",
            "necessary",
            utilization <= 1.0 + 1e-12,
            f"U={utilization:.4f}",
        )
    )

    fixed_priority = {
        SchedulingProtocol.RATE_MONOTONIC: "rate",
        SchedulingProtocol.DEADLINE_MONOTONIC: "deadline",
        SchedulingProtocol.HIGHEST_PRIORITY_FIRST: "explicit",
    }

    if protocol in fixed_priority:
        ordering = fixed_priority[protocol]
        if protocol is SchedulingProtocol.RATE_MONOTONIC:
            for name, test in (
                ("utilization-ll", liu_layland_test),
                ("utilization-hyperbolic", hyperbolic_bound_test),
            ):
                try:
                    verdicts.append(
                        OracleVerdict(name, "sufficient", test(tasks))
                    )
                except SchedError as exc:
                    verdicts.append(
                        OracleVerdict(name, "sufficient", None, str(exc))
                    )
        try:
            rta = rta_schedulable(tasks, ordering=ordering)
            verdicts.append(
                OracleVerdict(
                    "response-time-analysis",
                    # Synchronous release is the critical instant: exact
                    # there, only an upper bound once offsets shift it
                    # (the guard lives with RTA itself).
                    rta_exactness(tasks),
                    rta,
                    f"ordering={ordering}",
                )
            )
        except SchedError as exc:
            verdicts.append(
                OracleVerdict("response-time-analysis", "exact", None, str(exc))
            )
        sim_policy = ordering
    elif protocol is SchedulingProtocol.EARLIEST_DEADLINE_FIRST:
        verdicts.append(
            OracleVerdict(
                "edf-demand",
                "exact" if synchronous else "sufficient",
                edf_schedulable(tasks),
                f"U={utilization:.4f}",
            )
        )
        sim_policy = "edf"
    else:
        verdicts.append(
            OracleVerdict(
                "classical-tests",
                "sufficient",
                None,
                f"no exact classical oracle for {protocol.value}",
            )
        )
        sim_policy = None

    if sim_policy is not None:
        horizon = _simulation_horizon(tasks)
        if horizon is None:
            verdicts.append(
                OracleVerdict(
                    "simulation",
                    "exact",
                    None,
                    "over-utilized asynchronous set: no finite exact "
                    "window (the utilization-cap oracle already decides)",
                )
            )
        else:
            sim = simulate(tasks, policy=sim_policy, horizon=horizon)
            verdicts.append(
                OracleVerdict(
                    "simulation",
                    "exact",
                    sim.schedulable,
                    f"policy={sim_policy} horizon={horizon}",
                )
            )
    return verdicts


def classify(
    pipeline: AnalysisResult,
    oracles: List[OracleVerdict],
) -> CaseClassification:
    """Compare the pipeline verdict with every oracle, explicitly."""
    notes: List[str] = []

    if pipeline.verdict is Verdict.UNKNOWN:
        limit = (
            pipeline.exploration.limit_hit
            if pipeline.exploration is not None
            else None
        )
        notes.append(
            f"pipeline exhausted its exploration budget "
            f"(limit_hit={limit!r}) before covering the space; "
            f"no agreement claim is possible"
        )
        return CaseClassification(AgreementStatus.UNKNOWN, [], notes)

    quantizer = pipeline.translation.quantizer
    quantization_exact = all(
        quantizer.thread_timing(thread).exact
        for thread in pipeline.translation.instance.threads()
    )
    if not quantization_exact:
        notes.append(
            f"quantization (quantum {quantizer.quantum}) rounded some "
            f"durations; exact oracles demoted to sufficient for this case"
        )

    verdict = pipeline.schedulable
    conflicts: List[str] = []
    for oracle in oracles:
        if oracle.verdict is None:
            continue
        relation = oracle.relation
        if relation == "exact" and not quantization_exact:
            relation = "sufficient"
        if relation == "exact" and oracle.verdict != verdict:
            conflicts.append(oracle.method)
        elif relation == "sufficient" and oracle.verdict and not verdict:
            conflicts.append(oracle.method)
        elif relation == "necessary" and not oracle.verdict and verdict:
            conflicts.append(oracle.method)

    status = (
        AgreementStatus.DISAGREED if conflicts else AgreementStatus.AGREED
    )
    return CaseClassification(status, conflicts, notes)


def evaluate_case(
    case: OracleCase,
    *,
    max_states: int = 300_000,
    fault: Optional[FaultFn] = None,
    observers: Union[Observer, Iterable[Observer], None] = None,
):
    """Convenience: pipeline + oracles + classification in one call.

    Returns ``(pipeline_result, oracle_verdicts, classification)``.
    """
    pipeline = run_pipeline(
        case, max_states=max_states, fault=fault, observers=observers
    )
    oracles = classical_verdicts(case)
    return pipeline, oracles, classify(pipeline, oracles)
