"""Differential oracle for the transition-aware modal analysis.

Two relations per seeded fault/recovery system
(:func:`repro.workloads.generators.faulty_modal_system`), both over the
asynchronous protocol (the one with actual transient machinery):

* **steady equivalence** -- every reachable mode's verdict inside
  :func:`repro.modal.analyze_modal` must equal an independent
  :func:`~repro.analysis.schedulability.analyze_model` run of the same
  mode instantiated on its own.  The modal steady half is plumbing over
  the same engine, so any drift is a routing bug.
* **transient soundness (one-sided)** -- a transition the modal checker
  calls SCHEDULABLE must be miss-free in the reference: the honest
  exhaustive simulation of the switch at *every* boundary phasing of
  the old mode's hyperperiod, full window, carry-over included
  (:func:`repro.modal.transient.simulate_transition` driven directly by
  the oracle).  The converse need not hold -- the modal side may return
  UNSCHEDULABLE or UNKNOWN conservatively -- so a modal-fail /
  reference-pass split is conservatism, not a bug.

* ``AGREED`` -- steady halves match and no transition is passed
  unsoundly;
* ``UNKNOWN`` -- the reference exceeded its caps on some transition the
  modal side passed, so soundness could not be confirmed;
* ``DISAGREED`` -- a steady verdict mismatch, or a transition passed by
  the modal checker that the reference simulation misses.  CI gates on
  it.

``fault=`` injects a registered transient-checker defect
(:data:`repro.modal.transient.MODAL_FAULTS`) into the modal side only
-- the reference always simulates honestly -- and the campaign must
then disagree on some seed: the self-test that this oracle would catch
an unsound transient shortcut.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

import numpy as np

from repro.oracle.verdicts import AgreementStatus
from repro.workloads.generators import faulty_modal_system

#: Caps for campaign cases; generator periods are small powers of two,
#: so real phasing counts and windows stay far below these.
DEFAULT_CAMPAIGN_PHASINGS = 512
DEFAULT_CAMPAIGN_WINDOW = 1 << 15

_ROOT = "FaultyModal.impl"


class ModalCaseOutcome:
    """One seed's modal-vs-reference comparison."""

    __slots__ = (
        "seed",
        "status",
        "modes",
        "transitions",
        "modal_passes",
        "reference_passes",
        "conservative",
        "steady_mismatches",
        "details",
    )

    def __init__(
        self,
        *,
        seed: int,
        status: AgreementStatus,
        modes: int,
        transitions: int,
        modal_passes: int,
        reference_passes: int,
        conservative: int,
        steady_mismatches: int,
        details: List[str],
    ) -> None:
        self.seed = seed
        self.status = status
        self.modes = modes
        self.transitions = transitions
        #: transitions the modal checker called SCHEDULABLE
        self.modal_passes = modal_passes
        #: transitions the reference simulation found miss-free
        self.reference_passes = reference_passes
        #: modal-fail(/unknown) / reference-pass splits (conservatism)
        self.conservative = conservative
        self.steady_mismatches = steady_mismatches
        self.details = details

    def __repr__(self) -> str:
        return (
            f"ModalCaseOutcome(seed={self.seed}, {self.status.value}, "
            f"{self.transitions} transition(s))"
        )


class ModalCampaignReport:
    """Aggregate of one modal-agreement campaign."""

    def __init__(
        self,
        *,
        outcomes: List[ModalCaseOutcome],
        elapsed: float,
        base_seed: int,
        fault: Optional[str],
    ) -> None:
        self.outcomes = outcomes
        self.elapsed = elapsed
        self.base_seed = base_seed
        self.fault = fault

    @property
    def disagreements(self) -> List[ModalCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.DISAGREED
        ]

    @property
    def agreed(self) -> List[ModalCaseOutcome]:
        return [
            o for o in self.outcomes if o.status is AgreementStatus.AGREED
        ]

    @property
    def unknown(self) -> List[ModalCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.UNKNOWN
        ]

    @property
    def conservative(self) -> int:
        return sum(o.conservative for o in self.outcomes)

    def format(self) -> str:
        transitions = sum(o.transitions for o in self.outcomes)
        lines = [
            "modal campaign"
            + (f" fault={self.fault}" if self.fault else "")
            + f": {len(self.outcomes)} case(s), {transitions} "
            f"transition(s) (base seed {self.base_seed}), "
            f"{self.elapsed:.1f}s",
            f"  agreed: {len(self.agreed)}  "
            f"disagreed: {len(self.disagreements)}  "
            f"unknown: {len(self.unknown)}",
            f"  modal passes: "
            f"{sum(o.modal_passes for o in self.outcomes)}  "
            f"reference passes: "
            f"{sum(o.reference_passes for o in self.outcomes)}  "
            f"conservative (modal-only fails): {self.conservative}",
        ]
        for outcome in self.disagreements:
            for detail in outcome.details:
                lines.append(f"  DISAGREED seed {outcome.seed}: {detail}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ModalCampaignReport(cases={len(self.outcomes)}, "
            f"disagreed={len(self.disagreements)})"
        )


def classify_transition(
    modal_pass: bool, reference_ok: Optional[bool]
) -> AgreementStatus:
    """The one-sided modal-pass ⇒ reference-pass relation for one
    transition."""
    if modal_pass and reference_ok is None:
        return AgreementStatus.UNKNOWN
    if modal_pass and not reference_ok:
        return AgreementStatus.DISAGREED
    return AgreementStatus.AGREED


def _reference_transition(
    edge,
    mode_units,
    *,
    max_phasings: int,
    max_window: int,
) -> Optional[bool]:
    """The honest reference: simulate the switch at every boundary
    phasing of the old mode's hyperperiod, carry-over included, full
    window -- no analytic shortcut, no fault.  None when a cap is hit
    or the task model is unavailable."""
    from repro.sched.taskmodel import TaskSet
    from repro.modal.transient import simulate_transition

    old_units = mode_units.get(edge.source.lower())
    new_units = mode_units.get(edge.target.lower())
    if not isinstance(old_units, dict) or not isinstance(new_units, dict):
        return None
    for processor in sorted(set(old_units) | set(new_units)):
        old_unit = old_units.get(processor)
        new_unit = new_units.get(processor)
        unit = new_unit or old_unit
        policy = unit.sim_policy
        if policy is None:
            return None
        old_tasks = list(old_unit.tasks) if old_unit else []
        new_tasks = list(new_unit.tasks) if new_unit else []
        old_hyper = TaskSet(old_tasks).hyperperiod if old_tasks else 1
        new_hyper = TaskSet(new_tasks).hyperperiod if new_tasks else 1
        if old_hyper > max_phasings:
            return None
        max_old_deadline = max(
            (t.offset + t.deadline for t in old_tasks), default=0
        )
        max_new_offset = max((t.offset for t in new_tasks), default=0)
        for switch in range(old_hyper):
            window = (
                switch + max_old_deadline + max_new_offset + 2 * new_hyper
            )
            if window > max_window:
                return None
            ok, _ = simulate_transition(
                old_tasks,
                new_tasks,
                switch=switch,
                policy=policy,
                window=window,
            )
            if not ok:
                return False
    return True


def evaluate_modal_case(
    seed: int,
    *,
    max_phasings: int = DEFAULT_CAMPAIGN_PHASINGS,
    max_window: int = DEFAULT_CAMPAIGN_WINDOW,
    fault: Optional[str] = None,
) -> ModalCaseOutcome:
    """Draw one fault/recovery modal system from ``seed`` and compare
    the transition-aware analysis against the steady and transient
    references.  Every parameter (mode count, threads, utilizations,
    orphan mode) derives from the seed, so a failing seed reproduces
    byte-for-byte."""
    from repro.aadl.instance import instantiate
    from repro.analysis.schedulability import Verdict, analyze_model
    from repro.modal import analyze_modal
    from repro.modal.analysis import _steady_unit_map

    rng = np.random.default_rng(seed)
    n_modes = int(rng.integers(2, 4))
    threads_per_mode = int(rng.integers(1, 4))
    model = faulty_modal_system(
        n_modes,
        threads_per_mode,
        include_orphan=bool(rng.random() < 0.25),
        rng=rng,
    )
    impl = model.implementation(_ROOT)
    modal = analyze_modal(
        model,
        _ROOT,
        protocol="asynchronous",
        max_phasings=max_phasings,
        max_window=max_window,
        fault=fault,
    )

    statuses: List[AgreementStatus] = []
    details: List[str] = []
    steady_mismatches = 0
    for mode, outcome in modal.steady.per_mode.items():
        independent = analyze_model(
            instantiate(model, _ROOT, mode_overrides={impl.name: mode})
        )
        if independent.verdict is not outcome.verdict:
            steady_mismatches += 1
            statuses.append(AgreementStatus.DISAGREED)
            details.append(
                f"mode {mode}: modal steady says {outcome.verdict.value}, "
                f"independent analysis says {independent.verdict.value}"
            )

    # The reference extracts task sets honestly, under the same
    # common-quantizer rule the modal side uses.
    mode_units = _steady_unit_map(
        model, impl, list(modal.steady.per_mode), None
    )
    modal_passes = reference_passes = conservative = 0
    for outcome in modal.transitions:
        modal_pass = outcome.verdict is Verdict.SCHEDULABLE
        reference_ok = _reference_transition(
            outcome.edge,
            mode_units,
            max_phasings=max_phasings,
            max_window=max_window,
        )
        status = classify_transition(modal_pass, reference_ok)
        statuses.append(status)
        if modal_pass:
            modal_passes += 1
        if reference_ok:
            reference_passes += 1
        if not modal_pass and reference_ok:
            conservative += 1
        if status is AgreementStatus.DISAGREED:
            details.append(
                f"transition {outcome.edge.label}: modal checker passed "
                f"({outcome.decided_by}) but the exhaustive phasing "
                f"simulation misses"
            )

    if AgreementStatus.DISAGREED in statuses:
        status = AgreementStatus.DISAGREED
    elif AgreementStatus.UNKNOWN in statuses:
        status = AgreementStatus.UNKNOWN
    else:
        status = AgreementStatus.AGREED
    return ModalCaseOutcome(
        seed=seed,
        status=status,
        modes=len(modal.steady.per_mode),
        transitions=len(modal.transitions),
        modal_passes=modal_passes,
        reference_passes=reference_passes,
        conservative=conservative,
        steady_mismatches=steady_mismatches,
        details=details,
    )


def run_modal_campaign(
    *,
    seeds: int = 50,
    base_seed: int = 0,
    max_phasings: int = DEFAULT_CAMPAIGN_PHASINGS,
    max_window: int = DEFAULT_CAMPAIGN_WINDOW,
    fault: Optional[str] = None,
    progress: bool = False,
) -> ModalCampaignReport:
    """Seeded campaign over the modal steady-equivalence and
    transient-soundness relations.  Runs inline: every case is a small
    exploration plus short simulations, so a pool buys nothing at
    smoke scale."""
    from repro.obs.tracer import current_tracer

    started = time.perf_counter()
    outcomes: List[ModalCaseOutcome] = []
    with current_tracer().span(
        "oracle.modal", seeds=seeds, base_seed=base_seed
    ) as span:
        for index in range(seeds):
            outcome = evaluate_modal_case(
                base_seed + index,
                max_phasings=max_phasings,
                max_window=max_window,
                fault=fault,
            )
            outcomes.append(outcome)
            if progress:
                print(
                    f"[{index + 1}/{seeds}] seed {outcome.seed}: "
                    f"{outcome.status.value} "
                    f"({outcome.modal_passes}/{outcome.transitions} "
                    f"transition(s) passed)",
                    file=sys.stderr,
                )
        span.set(
            disagreed=sum(
                1
                for o in outcomes
                if o.status is AgreementStatus.DISAGREED
            )
        )
    return ModalCampaignReport(
        outcomes=outcomes,
        elapsed=time.perf_counter() - started,
        base_seed=base_seed,
        fault=fault,
    )
