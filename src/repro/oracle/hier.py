"""Differential oracle for the hierarchical (BDR-interface) analysis.

The relation under test: on any partition, a **pass** from the
sufficient interface check (:mod:`repro.hier.check`) implies the exact
supply-aware flattened simulation (:mod:`repro.hier.flatten`) also
passes.  The converse need not hold -- the BDR abstraction gives up
supply a concrete periodic server actually delivers, so an
interface-fail / simulation-pass split is legitimate conservatism, not
a bug -- which makes this a one-sided (soundness) relation rather than
an equivalence:

* ``AGREED`` -- both sides pass, both fail, or only the (conservative)
  interface side fails;
* ``UNKNOWN`` -- the flattened window exceeded the cap on some
  partition, so the exact side abstained;
* ``DISAGREED`` -- the interface check passed a partition the exact
  simulation fails.  That is a soundness hole; CI gates on it.

``fault=`` injects a registered interface-derivation bug
(:data:`repro.hier.interface.HIER_FAULTS`) into the analytic side only
-- the flattened side always simulates the *true* server parameters --
and the campaign must then disagree on some seed: the oracle's own
self-test that it can catch an over-promising supply abstraction.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

import numpy as np

from repro.oracle.verdicts import AgreementStatus
from repro.workloads.generators import partitioned_system

#: Flattened-simulation window cap for campaign cases; generator
#: periods are harmonic-ish, so real windows stay far below this.
DEFAULT_CAMPAIGN_WINDOW = 1 << 16


class HierCaseOutcome:
    """One seed's interface-vs-flattened comparison."""

    __slots__ = (
        "seed",
        "status",
        "partitions",
        "interface_passes",
        "sim_passes",
        "conservative",
        "details",
    )

    def __init__(
        self,
        *,
        seed: int,
        status: AgreementStatus,
        partitions: int,
        interface_passes: int,
        sim_passes: int,
        conservative: int,
        details: List[str],
    ) -> None:
        self.seed = seed
        self.status = status
        self.partitions = partitions
        #: partitions the interface check passed
        self.interface_passes = interface_passes
        #: partitions the flattened simulation passed
        self.sim_passes = sim_passes
        #: interface-fail / simulation-pass splits (abstraction cost)
        self.conservative = conservative
        self.details = details

    def __repr__(self) -> str:
        return (
            f"HierCaseOutcome(seed={self.seed}, {self.status.value}, "
            f"{self.partitions} partition(s))"
        )


class HierCampaignReport:
    """Aggregate of one hierarchical-agreement campaign."""

    def __init__(
        self,
        *,
        outcomes: List[HierCaseOutcome],
        elapsed: float,
        base_seed: int,
        fault: Optional[str],
    ) -> None:
        self.outcomes = outcomes
        self.elapsed = elapsed
        self.base_seed = base_seed
        self.fault = fault

    @property
    def disagreements(self) -> List[HierCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.DISAGREED
        ]

    @property
    def agreed(self) -> List[HierCaseOutcome]:
        return [
            o for o in self.outcomes if o.status is AgreementStatus.AGREED
        ]

    @property
    def unknown(self) -> List[HierCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.UNKNOWN
        ]

    @property
    def conservative(self) -> int:
        return sum(o.conservative for o in self.outcomes)

    def format(self) -> str:
        partitions = sum(o.partitions for o in self.outcomes)
        lines = [
            "hier campaign"
            + (f" fault={self.fault}" if self.fault else "")
            + f": {len(self.outcomes)} case(s), {partitions} partition(s) "
            f"(base seed {self.base_seed}), {self.elapsed:.1f}s",
            f"  agreed: {len(self.agreed)}  "
            f"disagreed: {len(self.disagreements)}  "
            f"unknown: {len(self.unknown)}",
            f"  interface passes: "
            f"{sum(o.interface_passes for o in self.outcomes)}  "
            f"simulation passes: "
            f"{sum(o.sim_passes for o in self.outcomes)}  "
            f"conservative (interface-only fails): {self.conservative}",
        ]
        for outcome in self.disagreements:
            for detail in outcome.details:
                lines.append(f"  DISAGREED seed {outcome.seed}: {detail}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"HierCampaignReport(cases={len(self.outcomes)}, "
            f"disagreed={len(self.disagreements)})"
        )


def classify_partition(
    interface_ok: bool, sim_ok: Optional[bool]
) -> AgreementStatus:
    """The one-sided interface ⇒ simulation relation for one partition."""
    if sim_ok is None:
        return AgreementStatus.UNKNOWN
    if interface_ok and not sim_ok:
        return AgreementStatus.DISAGREED
    return AgreementStatus.AGREED


def evaluate_hier_case(
    seed: int,
    *,
    max_window: int = DEFAULT_CAMPAIGN_WINDOW,
    fault: Optional[str] = None,
) -> HierCaseOutcome:
    """Draw one partitioned system from ``seed`` and compare the
    interface check against the flattened simulation on each partition.
    Every parameter (partition count, threads, utilization, supply
    factor, server period, scheduling mix) derives from the seed, so a
    failing seed reproduces byte-for-byte."""
    from repro.aadl.properties import SchedulingProtocol
    from repro.hier.analysis import derive_interfaces
    from repro.hier.check import check_partition
    from repro.hier.flatten import simulate_partition
    from repro.portfolio.context import build_context

    rng = np.random.default_rng(seed)
    n_partitions = int(rng.integers(1, 4))
    threads_per_partition = int(rng.integers(1, 4))
    utilization = float(rng.uniform(0.2, 0.8))
    instance = partitioned_system(
        n_partitions,
        threads_per_partition,
        utilization_per_partition=utilization,
        supply_factor=(0.6, 1.8),
        edf_fraction=0.3,
        rng=rng,
    )
    context = build_context(instance)
    if not context.applicable:  # pragma: no cover - generator guarantees
        raise RuntimeError(
            f"seed {seed}: generated model fell outside the analytic "
            f"fragment: {context.inapplicable}"
        )
    faulty = (
        derive_interfaces(instance, context.quantizer, fault=fault)
        if fault
        else None
    )

    statuses: List[AgreementStatus] = []
    details: List[str] = []
    interface_passes = sim_passes = conservative = 0
    partition_units = [u for u in context.units if u.interface is not None]
    for unit in partition_units:
        checked = faulty[unit.processor] if faulty else unit.interface
        check = check_partition(
            unit.tasks,
            checked,
            ordering=unit.ordering,
            edf=(
                unit.protocol
                is SchedulingProtocol.EARLIEST_DEADLINE_FIRST
            ),
        )
        interface_ok = check is not None and check.ok
        # The flattened side always runs the *true* server parameters:
        # a fault may only corrupt the abstraction under test.
        run = simulate_partition(
            unit.tasks,
            unit.interface.period,
            unit.interface.budget,
            policy=unit.sim_policy or "rate",
            max_window=max_window,
        )
        status = classify_partition(interface_ok, run.schedulable)
        statuses.append(status)
        if interface_ok:
            interface_passes += 1
        if run.schedulable:
            sim_passes += 1
        if not interface_ok and run.schedulable:
            conservative += 1
        if status is AgreementStatus.DISAGREED:
            details.append(
                f"{unit.processor} [{checked.token}]: interface passed "
                f"but flattened simulation misses "
                f"({run.misses[0][0]} at t={run.misses[0][1]})"
            )

    if AgreementStatus.DISAGREED in statuses:
        status = AgreementStatus.DISAGREED
    elif AgreementStatus.UNKNOWN in statuses:
        status = AgreementStatus.UNKNOWN
    else:
        status = AgreementStatus.AGREED
    return HierCaseOutcome(
        seed=seed,
        status=status,
        partitions=len(partition_units),
        interface_passes=interface_passes,
        sim_passes=sim_passes,
        conservative=conservative,
        details=details,
    )


def run_hier_campaign(
    *,
    seeds: int = 50,
    base_seed: int = 0,
    max_window: int = DEFAULT_CAMPAIGN_WINDOW,
    fault: Optional[str] = None,
    progress: bool = False,
) -> HierCampaignReport:
    """Seeded campaign over the interface ⇒ flattened-simulation
    relation.  Runs inline: both sides are analytic or small
    simulations, so a pool buys nothing at smoke scale."""
    from repro.obs.tracer import current_tracer

    started = time.perf_counter()
    outcomes: List[HierCaseOutcome] = []
    with current_tracer().span(
        "oracle.hier", seeds=seeds, base_seed=base_seed
    ) as span:
        for index in range(seeds):
            outcome = evaluate_hier_case(
                base_seed + index, max_window=max_window, fault=fault
            )
            outcomes.append(outcome)
            if progress:
                print(
                    f"[{index + 1}/{seeds}] seed {outcome.seed}: "
                    f"{outcome.status.value} "
                    f"({outcome.interface_passes}/{outcome.partitions} "
                    f"by interface)",
                    file=sys.stderr,
                )
        span.set(
            disagreed=sum(
                1
                for o in outcomes
                if o.status is AgreementStatus.DISAGREED
            )
        )
    return HierCampaignReport(
        outcomes=outcomes,
        elapsed=time.perf_counter() - started,
        base_seed=base_seed,
        fault=fault,
    )
