"""Differential oracle for the tiered verdict portfolio.

The relation under test: on any workload, ``analyze --portfolio`` and
the pure exhaustive exploration must reach the **same verdict**.  That
is exactly the soundness contract of the tier chain -- a SUFFICIENT
tier may only claim SCHEDULABLE, a NECESSARY tier only UNSCHEDULABLE,
and an EXACT tier both, all on the very model the translation would
explore (same quantizer, same fragment).  Any divergence means a tier
overstepped its soundness class or its applicability screen leaked.

Each seeded case is drawn from the same envelope as the main oracle's
smoke campaign (:data:`repro.oracle.campaign.PROFILES`), so the
portfolio faces the full generator spread: uniform, harmonic,
constrained-deadline and offset-bearing sets under RM, DM and EDF.
Both analyses run at the same exploration budget and the outcome is
classified UNKNOWN-aware, mirroring :mod:`repro.oracle.compose`:

* ``AGREED`` -- same decided verdict; additionally, an analytic
  UNSCHEDULABLE must carry a *witness* scenario that names at least one
  deadline miss (a claim without evidence is classified ``DISAGREED``
  even when the verdicts line up);
* ``UNKNOWN`` -- the exploration side exhausted its budget (the
  portfolio deciding what the budget could not is the feature, not a
  bug signal);
* ``DISAGREED`` -- both sides decided and differ, or an analytic
  unschedulable verdict arrived without a substantiating witness.  CI
  gates on this.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional

from repro.analysis.schedulability import Verdict, analyze_model
from repro.oracle.campaign import PROFILES, draw_case
from repro.oracle.compose import classify_agreement
from repro.oracle.verdicts import AgreementStatus


class PortfolioCaseOutcome:
    """One seed's portfolio-vs-exploration comparison."""

    __slots__ = (
        "seed",
        "case_id",
        "scheduling",
        "status",
        "portfolio_verdict",
        "exploration_verdict",
        "decided_by",
        "portfolio_states",
        "exploration_states",
        "note",
    )

    def __init__(
        self,
        *,
        seed: int,
        case_id: str,
        scheduling: str,
        status: AgreementStatus,
        portfolio_verdict: Verdict,
        exploration_verdict: Verdict,
        decided_by: Optional[str],
        portfolio_states: int,
        exploration_states: int,
        note: str = "",
    ) -> None:
        self.seed = seed
        self.case_id = case_id
        self.scheduling = scheduling
        self.status = status
        self.portfolio_verdict = portfolio_verdict
        self.exploration_verdict = exploration_verdict
        #: deciding tier name, or "exploration" after escalation
        self.decided_by = decided_by
        self.portfolio_states = portfolio_states
        self.exploration_states = exploration_states
        self.note = note

    @property
    def analytic(self) -> bool:
        """True when an analytic tier decided (no escalation)."""
        return self.decided_by is not None and (
            self.decided_by != "exploration"
        )

    def __repr__(self) -> str:
        return (
            f"PortfolioCaseOutcome(seed={self.seed}, {self.status.value}, "
            f"portfolio={self.portfolio_verdict.value} "
            f"[{self.decided_by}], "
            f"exploration={self.exploration_verdict.value})"
        )


class PortfolioCampaignReport:
    """Aggregate of one portfolio-agreement campaign."""

    def __init__(
        self,
        *,
        outcomes: List[PortfolioCaseOutcome],
        elapsed: float,
        base_seed: int,
    ) -> None:
        self.outcomes = outcomes
        self.elapsed = elapsed
        self.base_seed = base_seed

    @property
    def disagreements(self) -> List[PortfolioCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.DISAGREED
        ]

    @property
    def agreed(self) -> List[PortfolioCaseOutcome]:
        return [
            o for o in self.outcomes if o.status is AgreementStatus.AGREED
        ]

    @property
    def unknown(self) -> List[PortfolioCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.UNKNOWN
        ]

    @property
    def analytic(self) -> List[PortfolioCaseOutcome]:
        return [o for o in self.outcomes if o.analytic]

    def tier_histogram(self) -> Dict[str, int]:
        """How many cases each tier (or the escalation) decided."""
        histogram: Dict[str, int] = {}
        for outcome in self.outcomes:
            key = outcome.decided_by or "?"
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def format(self) -> str:
        analytic = self.analytic
        lines = [
            f"portfolio campaign: {len(self.outcomes)} case(s) "
            f"(base seed {self.base_seed}), {self.elapsed:.1f}s",
            f"  agreed: {len(self.agreed)}  "
            f"disagreed: {len(self.disagreements)}  "
            f"unknown: {len(self.unknown)}",
            f"  analytic: {len(analytic)}, escalated: "
            f"{len(self.outcomes) - len(analytic)}",
        ]
        lines.append("  decided by:")
        for name, count in sorted(
            self.tier_histogram().items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"    {name}: {count}")
        if analytic:
            explored = sum(o.exploration_states for o in analytic)
            lines.append(
                f"  states the analytic tiers saved: {explored} "
                f"(exploration side, over analytic cases)"
            )
        for outcome in self.disagreements:
            note = f" -- {outcome.note}" if outcome.note else ""
            lines.append(
                f"  DISAGREED seed {outcome.seed} ({outcome.case_id}, "
                f"{outcome.scheduling}): portfolio "
                f"{outcome.portfolio_verdict.value} "
                f"[{outcome.decided_by}] vs exploration "
                f"{outcome.exploration_verdict.value}{note}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PortfolioCampaignReport(cases={len(self.outcomes)}, "
            f"disagreed={len(self.disagreements)}, "
            f"analytic={len(self.analytic)})"
        )


def _witness_note(result) -> str:
    """Why an analytic UNSCHEDULABLE fails the witness cross-check, or
    the empty string when its evidence holds up."""
    if result.verdict is not Verdict.UNSCHEDULABLE:
        return ""
    if result.decided_by in (None, "exploration"):
        return ""  # exploration carries its own counterexample trace
    scenario = result.scenario
    if scenario is None:
        return "analytic unschedulable verdict carries no witness"
    if not scenario.misses:
        return "witness scenario names no deadline miss"
    return ""


def evaluate_portfolio_case(
    seed: int,
    index: int = 0,
    *,
    max_states: int = 150_000,
) -> PortfolioCaseOutcome:
    """Draw one case and compare the portfolio against pure exploration.

    The draw reuses the main oracle's smoke envelope (generator cycling
    plus seed-derived parameters), so a failing seed reproduces
    byte-for-byte with ``draw_case(PROFILES["smoke"], seed, index)``.
    """
    from repro.portfolio import analyze_portfolio

    case = draw_case(PROFILES["smoke"], seed, index)
    instance = case.system()
    portfolio = analyze_portfolio(instance, max_states=max_states)
    exploration = analyze_model(instance, max_states=max_states)

    status = classify_agreement(
        exploration.verdict, portfolio.verdict
    )
    note = _witness_note(portfolio)
    if note and status is not AgreementStatus.UNKNOWN:
        status = AgreementStatus.DISAGREED
    return PortfolioCaseOutcome(
        seed=seed,
        case_id=case.case_id,
        scheduling=case.scheduling,
        status=status,
        portfolio_verdict=portfolio.verdict,
        exploration_verdict=exploration.verdict,
        decided_by=portfolio.decided_by,
        portfolio_states=portfolio.num_states,
        exploration_states=exploration.num_states,
        note=note,
    )


def run_portfolio_campaign(
    *,
    seeds: int = 50,
    base_seed: int = 0,
    max_states: int = 150_000,
    progress: bool = False,
) -> PortfolioCampaignReport:
    """Seeded campaign over the portfolio ≡ exploration relation.

    Runs inline (no pool): the exploration side dominates each case and
    the campaign is smoke-sized, so pool-per-case overhead buys nothing.
    """
    from repro.obs.tracer import current_tracer

    started = time.perf_counter()
    outcomes: List[PortfolioCaseOutcome] = []
    with current_tracer().span(
        "oracle.portfolio", seeds=seeds, base_seed=base_seed
    ) as span:
        for index in range(seeds):
            outcome = evaluate_portfolio_case(
                base_seed + index, index, max_states=max_states
            )
            outcomes.append(outcome)
            if progress:
                print(
                    f"[{index + 1}/{seeds}] seed {outcome.seed}: "
                    f"{outcome.status.value} "
                    f"(decided by {outcome.decided_by})",
                    file=sys.stderr,
                )
        span.set(
            disagreed=sum(
                1
                for o in outcomes
                if o.status is AgreementStatus.DISAGREED
            ),
            analytic=sum(1 for o in outcomes if o.analytic),
        )
    return PortfolioCampaignReport(
        outcomes=outcomes,
        elapsed=time.perf_counter() - started,
        base_seed=base_seed,
    )
