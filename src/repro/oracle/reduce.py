"""Differential oracle for state-space reduction.

The relation under test: on any workload, the reduced exploration
(``--reduce sym,por``) and the unreduced one must reach the **same
verdict**.  Symmetry canonicalization and the partial-order ample
filter are both argued sound (``docs/reduction.md``); this campaign is
the empirical gate on that argument, end to end through the real
pipeline -- translation, reduction construction, exploration, trace
raising.

Each seeded case draws a replicated multiprocessor system from
:func:`repro.workloads.generators.replicated_system` (a fraction with
offset jitter, where symmetry must *not* fire), runs the monolithic
pipeline with and without reduction, and classifies:

* ``AGREED`` -- same decided verdict;
* ``UNKNOWN`` -- either side exhausted its budget (reduction changes
  which prefix of the space a truncated run covers, so a budget-bound
  demotion on one side only is not evidence of unsoundness);
* ``DISAGREED`` -- both sides decided and differ.  This is the bug
  signal; CI gates on it.

``fault=`` injects a registered reduction bug
(:data:`repro.engine.reduce.REDUCTION_FAULTS`) into the reduced side
only; the campaign must then disagree on some seed, which is the
oracle's own self-test.  When a disagreeing case is unschedulable on
the unreduced side, its failing scenario raises through the ordinary
trace-raising path -- under symmetry the witness is concrete up to
replica renaming (each step is a real transition of a symmetric image
of the state), so repro bundles built from the *unreduced* run stay
byte-for-byte replayable.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

import numpy as np

from repro.analysis.schedulability import Verdict, analyze_model
from repro.oracle.verdicts import AgreementStatus
from repro.workloads.generators import replicated_system

#: The spec exercised by default: both passes, as the CLI's bare
#: ``--reduce`` selects.
DEFAULT_SPEC = "sym,por"


class ReduceCaseOutcome:
    """One seed's unreduced-vs-reduced comparison."""

    __slots__ = (
        "seed",
        "status",
        "unreduced_verdict",
        "reduced_verdict",
        "unreduced_states",
        "reduced_states",
        "orbits_merged",
        "por_pruned",
        "jittered",
    )

    def __init__(
        self,
        *,
        seed: int,
        status: AgreementStatus,
        unreduced_verdict: Verdict,
        reduced_verdict: Verdict,
        unreduced_states: int,
        reduced_states: int,
        orbits_merged: int,
        por_pruned: int,
        jittered: bool,
    ) -> None:
        self.seed = seed
        self.status = status
        self.unreduced_verdict = unreduced_verdict
        self.reduced_verdict = reduced_verdict
        self.unreduced_states = unreduced_states
        self.reduced_states = reduced_states
        self.orbits_merged = orbits_merged
        self.por_pruned = por_pruned
        self.jittered = jittered

    def __repr__(self) -> str:
        return (
            f"ReduceCaseOutcome(seed={self.seed}, {self.status.value}, "
            f"unreduced={self.unreduced_verdict.value}, "
            f"reduced={self.reduced_verdict.value})"
        )


class ReduceCampaignReport:
    """Aggregate of one reduction-agreement campaign."""

    def __init__(
        self,
        *,
        outcomes: List[ReduceCaseOutcome],
        elapsed: float,
        base_seed: int,
        spec: str,
        fault: Optional[str],
    ) -> None:
        self.outcomes = outcomes
        self.elapsed = elapsed
        self.base_seed = base_seed
        self.spec = spec
        self.fault = fault

    @property
    def disagreements(self) -> List[ReduceCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.DISAGREED
        ]

    @property
    def agreed(self) -> List[ReduceCaseOutcome]:
        return [
            o for o in self.outcomes if o.status is AgreementStatus.AGREED
        ]

    @property
    def unknown(self) -> List[ReduceCaseOutcome]:
        return [
            o for o in self.outcomes
            if o.status is AgreementStatus.UNKNOWN
        ]

    @property
    def orbits_merged(self) -> int:
        return sum(o.orbits_merged for o in self.outcomes)

    @property
    def por_pruned(self) -> int:
        return sum(o.por_pruned for o in self.outcomes)

    def format(self) -> str:
        lines = [
            f"reduce campaign [{self.spec}]"
            + (f" fault={self.fault}" if self.fault else "")
            + f": {len(self.outcomes)} case(s) "
            f"(base seed {self.base_seed}), {self.elapsed:.1f}s",
            f"  agreed: {len(self.agreed)}  "
            f"disagreed: {len(self.disagreements)}  "
            f"unknown: {len(self.unknown)}",
            f"  states: unreduced "
            f"{sum(o.unreduced_states for o in self.outcomes)}, reduced "
            f"{sum(o.reduced_states for o in self.outcomes)}",
            f"  orbits_merged: {self.orbits_merged}  "
            f"por_pruned: {self.por_pruned}",
        ]
        for outcome in self.disagreements:
            lines.append(
                f"  DISAGREED seed {outcome.seed}: unreduced "
                f"{outcome.unreduced_verdict.value} vs reduced "
                f"{outcome.reduced_verdict.value}"
                + (" (jittered)" if outcome.jittered else "")
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ReduceCampaignReport(cases={len(self.outcomes)}, "
            f"disagreed={len(self.disagreements)})"
        )


def classify_reduction_agreement(
    unreduced: Verdict, reduced: Verdict
) -> AgreementStatus:
    """The reduced ≡ unreduced relation, UNKNOWN-aware."""
    if Verdict.UNKNOWN in (unreduced, reduced):
        return AgreementStatus.UNKNOWN
    if unreduced is reduced:
        return AgreementStatus.AGREED
    return AgreementStatus.DISAGREED


def evaluate_reduce_case(
    seed: int,
    *,
    max_states: int = 150_000,
    spec: str = DEFAULT_SPEC,
    fault: Optional[str] = None,
    jitter_fraction: float = 0.25,
) -> ReduceCaseOutcome:
    """Draw one replicated system from ``seed`` and compare reduced vs
    unreduced exploration.  Every parameter (replica count, threads per
    replica, utilization, offset jitter) derives from the seed, so a
    failing seed reproduces byte-for-byte."""
    rng = np.random.default_rng(seed)
    n_replicas = int(rng.integers(2, 5))
    threads_per_replica = int(rng.integers(1, 3))
    utilization = float(rng.uniform(0.3, 1.15))
    jittered = bool(rng.random() < jitter_fraction)
    instance = replicated_system(
        n_replicas,
        threads_per_replica,
        utilization_per_replica=utilization,
        offset_jitter=jittered,
        rng=rng,
    )
    unreduced = analyze_model(instance, max_states=max_states)
    reduced = analyze_model(
        instance,
        max_states=max_states,
        reduction=spec,
        reduction_fault=fault,
    )
    stats = reduced.exploration.stats
    return ReduceCaseOutcome(
        seed=seed,
        status=classify_reduction_agreement(
            unreduced.verdict, reduced.verdict
        ),
        unreduced_verdict=unreduced.verdict,
        reduced_verdict=reduced.verdict,
        unreduced_states=unreduced.num_states,
        reduced_states=reduced.num_states,
        orbits_merged=stats.orbits_merged if stats is not None else 0,
        por_pruned=stats.por_pruned if stats is not None else 0,
        jittered=jittered,
    )


def run_reduce_campaign(
    *,
    seeds: int = 50,
    base_seed: int = 0,
    max_states: int = 150_000,
    spec: str = DEFAULT_SPEC,
    fault: Optional[str] = None,
    jitter_fraction: float = 0.25,
    progress: bool = False,
) -> ReduceCampaignReport:
    """Seeded campaign over the reduced ≡ unreduced relation.

    Runs inline (no pool): each case already explores the same model
    twice, and the unreduced side dominates, so pool-per-case overhead
    buys nothing at smoke scale.
    """
    from repro.obs.tracer import current_tracer

    started = time.perf_counter()
    outcomes: List[ReduceCaseOutcome] = []
    with current_tracer().span(
        "oracle.reduce", seeds=seeds, base_seed=base_seed
    ) as span:
        for index in range(seeds):
            outcome = evaluate_reduce_case(
                base_seed + index,
                max_states=max_states,
                spec=spec,
                fault=fault,
                jitter_fraction=jitter_fraction,
            )
            outcomes.append(outcome)
            if progress:
                print(
                    f"[{index + 1}/{seeds}] seed {outcome.seed}: "
                    f"{outcome.status.value} "
                    f"({outcome.unreduced_states} -> "
                    f"{outcome.reduced_states} states)",
                    file=sys.stderr,
                )
        span.set(
            disagreed=sum(
                1
                for o in outcomes
                if o.status is AgreementStatus.DISAGREED
            )
        )
    return ReduceCampaignReport(
        outcomes=outcomes,
        elapsed=time.perf_counter() - started,
        base_seed=base_seed,
        spec=spec,
        fault=fault,
    )
