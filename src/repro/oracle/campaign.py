"""Seeded differential-testing campaigns.

A campaign draws ``seeds`` cases (round-robin over the workload
generators, every parameter derived from the seed), runs each through
the full AADL -> ACSR -> engine pipeline *and* the classical oracles,
classifies the agreement, and -- on disagreement -- shrinks the case to
a minimal reproducer and persists it as a replayable JSON bundle under
``artifacts/oracle/``.

Case evaluation fans out across the :mod:`repro.batch` worker pool
(``jobs`` processes, default one per core) and can consult the
persistent verdict cache, so a repeated campaign skips already-proven
cases; per-job seeding is deterministic, which makes ``jobs=1`` and
``jobs=N`` produce identical verdict sets.  Shrinking stays in the
parent process: it is a sequential search whose every probe depends on
the previous answer.  Every evaluation's
:class:`~repro.engine.stats.EngineStats` snapshot is aggregated into
campaign totals, so a run accounts for exactly where its state budget
went.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.engine.observers import ProgressObserver
from repro.errors import SchedError
from repro.oracle.bundle import DEFAULT_ARTIFACTS_DIR, ReproBundle
from repro.oracle.case import OracleCase
from repro.oracle.faults import Fault, get_fault
from repro.oracle.shrink import shrink_case
from repro.oracle.verdicts import (
    AgreementStatus,
    CaseClassification,
    evaluate_case,
)


class CampaignProfile:
    """Parameter envelope of one campaign flavour."""

    __slots__ = (
        "name",
        "generators",
        "n_range",
        "utilization_range",
        "boundary_fraction",
        "max_states",
        "shrink_evaluations",
        "generator_params",
        "schedulings",
    )

    def __init__(
        self,
        name: str,
        *,
        generators: Tuple[str, ...],
        n_range: Tuple[int, int],
        utilization_range: Tuple[float, float],
        boundary_fraction: float,
        max_states: int,
        shrink_evaluations: int,
        generator_params: Optional[Dict[str, Dict[str, Any]]] = None,
        schedulings: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> None:
        self.name = name
        self.generators = generators
        self.n_range = n_range
        self.utilization_range = utilization_range
        #: fraction of draws forced near the U = 1 boundary, where
        #: disagreements (quantization, off-by-one interference) cluster
        self.boundary_fraction = boundary_fraction
        self.max_states = max_states
        self.shrink_evaluations = shrink_evaluations
        self.generator_params = generator_params or {}
        #: scheduling protocols drawn per generator; constrained-deadline
        #: sets pair with DM (the optimal fixed-priority order there)
        self.schedulings = schedulings or {
            "uniform": ("RMS", "EDF"),
            "harmonic": ("RMS", "EDF"),
            "constrained": ("DMS", "EDF"),
            "offset": ("RMS", "EDF"),
        }


#: Small periods keep hyperperiods -- and ACSR state spaces -- tractable.
_SMALL_PERIODS = (4, 6, 8, 12)

PROFILES: Dict[str, CampaignProfile] = {
    "smoke": CampaignProfile(
        "smoke",
        generators=("uniform", "harmonic", "constrained", "offset"),
        n_range=(1, 4),
        utilization_range=(0.3, 1.15),
        boundary_fraction=0.25,
        max_states=150_000,
        shrink_evaluations=300,
        generator_params={
            "uniform": {"periods": _SMALL_PERIODS},
            "constrained": {"periods": _SMALL_PERIODS},
            "offset": {"periods": _SMALL_PERIODS},
        },
    ),
    "nightly": CampaignProfile(
        "nightly",
        generators=("uniform", "harmonic", "constrained", "offset"),
        n_range=(2, 6),
        utilization_range=(0.3, 1.2),
        boundary_fraction=0.3,
        max_states=600_000,
        shrink_evaluations=600,
    ),
}


class CaseOutcome:
    """One case's journey through a campaign."""

    __slots__ = (
        "case",
        "verdict",
        "classification",
        "states",
        "elapsed",
        "limit_hit",
        "shrunk_case",
        "bundle_path",
    )

    def __init__(
        self,
        case: OracleCase,
        verdict: str,
        classification: CaseClassification,
        states: int,
        elapsed: float,
        limit_hit: Optional[str],
        shrunk_case: Optional[OracleCase] = None,
        bundle_path: Optional[str] = None,
    ) -> None:
        self.case = case
        self.verdict = verdict
        self.classification = classification
        self.states = states
        self.elapsed = elapsed
        self.limit_hit = limit_hit
        self.shrunk_case = shrunk_case
        self.bundle_path = bundle_path

    def __repr__(self) -> str:
        return (
            f"CaseOutcome({self.case.case_id!r}, {self.verdict}, "
            f"{self.classification.status.value})"
        )


class CampaignReport:
    """Aggregated result of one campaign run."""

    def __init__(
        self,
        *,
        profile: str,
        seeds: int,
        base_seed: int,
        fault: Optional[str],
        outcomes: List[CaseOutcome],
        totals: Dict[str, Any],
        elapsed: float,
        workers: int = 1,
    ) -> None:
        self.profile = profile
        self.seeds = seeds
        self.base_seed = base_seed
        self.fault = fault
        self.outcomes = outcomes
        #: aggregated EngineStats across every pipeline run of the
        #: campaign (including shrink re-evaluations)
        self.totals = totals
        self.elapsed = elapsed
        #: worker-pool width the cases were evaluated with
        self.workers = workers

    def _by_status(self, status: AgreementStatus) -> List[CaseOutcome]:
        return [
            outcome
            for outcome in self.outcomes
            if outcome.classification.status is status
        ]

    @property
    def agreed(self) -> List[CaseOutcome]:
        return self._by_status(AgreementStatus.AGREED)

    @property
    def disagreements(self) -> List[CaseOutcome]:
        return self._by_status(AgreementStatus.DISAGREED)

    @property
    def unknown(self) -> List[CaseOutcome]:
        return self._by_status(AgreementStatus.UNKNOWN)

    def format(self) -> str:
        lines = [
            f"oracle campaign: profile={self.profile} seeds={self.seeds} "
            f"base_seed={self.base_seed}"
            + (f" fault={self.fault}" if self.fault else "")
            + (f" jobs={self.workers}" if self.workers != 1 else ""),
        ]
        generators = sorted(
            {outcome.case.generator for outcome in self.outcomes}
        )
        width = max([len(g) for g in generators] + [10])
        header = "  " + " " * 11 + "".join(
            f"{g:>{width + 2}}" for g in generators
        ) + f"{'total':>{width + 2}}"
        lines.append("agreement matrix:")
        lines.append(header)
        for status in AgreementStatus:
            row = self._by_status(status)
            counts = {
                g: sum(1 for o in row if o.case.generator == g)
                for g in generators
            }
            lines.append(
                f"  {status.value:<11}"
                + "".join(f"{counts[g]:>{width + 2}}" for g in generators)
                + f"{len(row):>{width + 2}}"
            )
        totals = self.totals
        lines.append(
            f"engine totals: {totals['runs']} pipeline run(s), "
            f"{totals['states']} states, {totals['transitions']} "
            f"transitions in {totals['engine_elapsed']:.2f}s "
            f"(campaign wall clock {self.elapsed:.2f}s)"
        )
        cache_total = totals["cache_hits"] + totals["cache_misses"]
        if cache_total:
            lines.append(
                f"cache: {totals['cache_hits']} hits / "
                f"{totals['cache_misses']} misses "
                f"({totals['cache_hits'] / cache_total:.1%} hit rate)"
            )
        vc_hits = totals.get("verdict_cache_hits", 0)
        vc_misses = totals.get("verdict_cache_misses", 0)
        if vc_hits or vc_misses:
            lines.append(
                f"verdict cache: {vc_hits} hits / {vc_misses} misses "
                f"({vc_hits / (vc_hits + vc_misses):.1%} hit rate)"
            )
        if totals["budget_capped"]:
            lines.append(
                f"budget-capped runs: {totals['budget_capped']} "
                f"(reported as UNKNOWN, never as agreement)"
            )
        for outcome in self.unknown:
            lines.append(
                f"unknown: {outcome.case.case_id} "
                f"(limit_hit={outcome.limit_hit!r}, "
                f"{outcome.states} states explored)"
            )
        for outcome in self.disagreements:
            shrunk = outcome.shrunk_case
            lines.append(
                f"DISAGREEMENT: {outcome.case.case_id} "
                f"pipeline={outcome.verdict} "
                f"conflicts={outcome.classification.conflicts}"
            )
            if shrunk is not None:
                lines.append(
                    f"  shrunk from {len(outcome.case.tasks)} to "
                    f"{len(shrunk.tasks)} task(s): "
                    + "; ".join(
                        f"{t['name']}(C={t['wcet']}, T={t['period']}, "
                        f"D={t['deadline']}, O={t['offset']})"
                        for t in shrunk.tasks
                    )
                )
            if outcome.bundle_path is not None:
                lines.append(
                    f"  replay: repro oracle replay {outcome.bundle_path}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"CampaignReport(profile={self.profile!r}, seeds={self.seeds}, "
            f"agreed={len(self.agreed)}, "
            f"disagreed={len(self.disagreements)}, "
            f"unknown={len(self.unknown)})"
        )


def draw_case(
    profile: CampaignProfile, seed: int, index: int
) -> OracleCase:
    """Deterministically derive case number ``index`` of a campaign.

    The generator cycles round-robin; every numeric parameter comes from
    a generator seeded with the case seed, so the draw is reproducible
    from the ``(profile, seed)`` pair alone.
    """
    generator = profile.generators[index % len(profile.generators)]
    prng = np.random.default_rng([seed, 0x0FACE])
    lo, hi = profile.n_range
    n = int(prng.integers(lo, hi + 1))
    if prng.random() < profile.boundary_fraction:
        utilization = float(prng.uniform(0.85, 1.1))
    else:
        utilization = float(prng.uniform(*profile.utilization_range))
    choices = profile.schedulings.get(generator, ("RMS", "EDF"))
    scheduling = choices[int(prng.integers(len(choices)))]
    params = profile.generator_params.get(generator, {})
    return OracleCase.generate(
        generator,
        seed,
        n=n,
        utilization=round(utilization, 4),
        scheduling=scheduling,
        **params,
    )


def _accumulate(totals: Dict[str, Any], pipeline) -> None:
    stats = pipeline.exploration.stats
    totals["runs"] += 1
    totals["states"] += pipeline.num_states
    totals["elapsed"] = totals.get("elapsed", 0.0)
    if stats is not None:
        totals["transitions"] += stats.transitions
        totals["engine_elapsed"] += stats.elapsed
        totals["cache_hits"] += stats.cache_hits
        totals["cache_misses"] += stats.cache_misses
        if stats.limit_hit is not None:
            totals["budget_capped"] += 1


def run_campaign(
    *,
    seeds: int,
    profile: Union[str, CampaignProfile] = "smoke",
    base_seed: int = 0,
    artifacts_dir: str = DEFAULT_ARTIFACTS_DIR,
    fault: Union[Fault, str, None] = None,
    max_states: Optional[int] = None,
    progress: Union[bool, Callable[[int, int, CaseOutcome], None]] = False,
    jobs: Optional[int] = None,
    cache=None,
) -> CampaignReport:
    """Run a differential campaign of ``seeds`` cases.

    Cases are drawn upfront and evaluated through
    :func:`repro.batch.run_batch` (``jobs`` workers, default one per
    core; ``cache`` enables the persistent verdict cache).  Cached
    results are served without re-running and are *not* counted in
    ``totals["runs"]``.  Disagreements are shrunk in the parent process
    and persisted under ``artifacts_dir``; the returned report carries
    every outcome plus aggregated engine statistics.  ``fault`` injects
    a known translator defect into the pipeline side (see
    :mod:`repro.oracle.faults`) -- used to test the harness itself.
    """
    from repro.batch import AnalysisJob, run_batch

    if seeds < 1:
        raise SchedError(f"need at least one seed, got {seeds}")
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise SchedError(
                f"unknown campaign profile {profile!r}; "
                f"choose from {sorted(PROFILES)}"
            ) from None
    if isinstance(fault, str):
        fault = get_fault(fault)
    budget = max_states if max_states is not None else profile.max_states
    fault_name = fault.name if fault is not None else None

    totals: Dict[str, Any] = {
        "runs": 0,
        "states": 0,
        "transitions": 0,
        "engine_elapsed": 0.0,
        "cache_hits": 0,
        "cache_misses": 0,
        "budget_capped": 0,
        "verdict_cache_hits": 0,
        "verdict_cache_misses": 0,
    }

    def evaluate(case: OracleCase):
        # Parent-process path, used for shrinking: every probe depends
        # on the previous answer, so this never rides the pool.  Live
        # progress on explorations that grow large; every run's
        # EngineStats snapshot lands in the campaign totals.
        observer = ProgressObserver(every_states=50_000)
        pipeline, oracles, classification = evaluate_case(
            case, max_states=budget, fault=fault, observers=observer
        )
        _accumulate(totals, pipeline)
        return pipeline, oracles, classification

    from repro.obs.tracer import current_tracer

    campaign_span = current_tracer().span(
        "oracle.campaign", profile=profile.name, seeds=seeds
    )
    started = time.perf_counter()
    cases = [
        draw_case(profile, base_seed + index, index)
        for index in range(seeds)
    ]
    job_list = [
        AnalysisJob.from_case(
            case,
            job_id=case.case_id,
            max_states=budget,
            fault=fault_name,
        )
        for case in cases
    ]

    def batch_progress(done: int, total: int, result) -> None:
        if done % 10 == 0 or done == total:
            status = (result.classification or {}).get("status", "?")
            mark = " [cached]" if result.cached else ""
            print(
                f"  [{done}/{total}] {result.job_id}: "
                f"{result.verdict} ({status}){mark}",
                file=sys.stderr,
            )

    report = run_batch(
        job_list,
        workers=jobs,
        cache=cache,
        progress=batch_progress
        if (progress and not callable(progress))
        else None,
    )

    for result in report.results:
        if not result.cached:
            totals["runs"] += 1
            totals["states"] += result.states
            if result.limit_hit is not None:
                totals["budget_capped"] += 1
            if result.stats is not None:
                totals["transitions"] += result.stats.get("transitions", 0)
                totals["engine_elapsed"] += result.stats.get("elapsed", 0.0)
                totals["cache_hits"] += result.stats.get("cache_hits", 0)
                totals["cache_misses"] += result.stats.get(
                    "cache_misses", 0
                )
    totals["verdict_cache_hits"] = report.stats.verdict_cache_hits
    totals["verdict_cache_misses"] = report.stats.verdict_cache_misses

    outcomes: List[CaseOutcome] = []
    for index, (case, result) in enumerate(zip(cases, report.results)):
        if result.error is not None:
            raise SchedError(f"case {case.case_id}: {result.error}")
        classification = CaseClassification.from_dict(result.classification)
        outcome = CaseOutcome(
            case,
            result.verdict,
            classification,
            result.states,
            result.elapsed,
            result.limit_hit,
        )

        if classification.status is AgreementStatus.DISAGREED:
            def still_disagrees(candidate: OracleCase) -> bool:
                _, _, cls = evaluate(candidate)
                return cls.status is AgreementStatus.DISAGREED

            shrink = shrink_case(
                case,
                still_disagrees,
                max_evaluations=profile.shrink_evaluations,
            )
            (
                shrunk_pipeline,
                shrunk_oracles,
                shrunk_classification,
            ) = evaluate(shrink.case)
            bundle = ReproBundle.from_evaluation(
                kind="disagreement",
                case=shrink.case,
                pipeline=shrunk_pipeline,
                oracles=shrunk_oracles,
                classification=shrunk_classification,
                max_states=budget,
                profile=profile.name,
                fault=fault_name,
                original_case=case,
                shrink_evaluations=shrink.evaluations,
            )
            outcome.shrunk_case = shrink.case
            outcome.bundle_path = bundle.save(artifacts_dir)

        outcomes.append(outcome)
        if callable(progress):
            progress(index + 1, seeds, outcome)

    campaign_span.incr("cases", len(outcomes)).incr(
        "disagreements",
        sum(
            1
            for o in outcomes
            if o.classification.status is AgreementStatus.DISAGREED
        ),
    )
    campaign_span.finish()
    return CampaignReport(
        profile=profile.name,
        seeds=seeds,
        base_seed=base_seed,
        fault=fault_name,
        outcomes=outcomes,
        totals=totals,
        elapsed=time.perf_counter() - started,
        workers=report.workers,
    )
