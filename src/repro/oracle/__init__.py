"""Differential-testing oracle: the paper's S5 theorem as infrastructure.

An AADL model is schedulable iff its ACSR translation is deadlock-free,
so on the classical regime the full pipeline has exact external oracles:
response-time analysis, the EDF processor-demand criterion and a
simulated worst-case window must all agree with the exploration verdict.
This subpackage turns that cross-check into a first-class subsystem:

* :mod:`~repro.oracle.case` -- one case (task set + provenance);
* :mod:`~repro.oracle.verdicts` -- pipeline + classical verdicts and
  the explicit agreement classification (exact / sufficient / necessary
  relations, ``UNKNOWN`` and quantization caveats never silent);
* :mod:`~repro.oracle.shrink` -- delta-debugging disagreements to
  minimal reproducers;
* :mod:`~repro.oracle.bundle` -- replayable JSON repro bundles
  (``repro oracle replay <bundle>``);
* :mod:`~repro.oracle.campaign` -- seeded campaigns over the
  :mod:`repro.workloads` generators (``repro oracle run``);
* :mod:`~repro.oracle.faults` -- injectable translator defects that
  prove the harness catches what it is supposed to catch.

See ``docs/oracle.md`` for the agreement matrix and caveats.
"""

from repro.oracle.bundle import (
    DEFAULT_ARTIFACTS_DIR,
    ReplayResult,
    ReproBundle,
    replay_bundle,
)
from repro.oracle.campaign import (
    CampaignProfile,
    CampaignReport,
    CaseOutcome,
    PROFILES,
    draw_case,
    run_campaign,
)
from repro.oracle.case import OracleCase
from repro.oracle.compose import (
    ComposeCampaignReport,
    ComposeCaseOutcome,
    evaluate_compose_case,
    run_compose_campaign,
)
from repro.oracle.faults import FAULTS, Fault, fault_names, get_fault
from repro.oracle.hier import (
    HierCampaignReport,
    HierCaseOutcome,
    evaluate_hier_case,
    run_hier_campaign,
)
from repro.oracle.modal import (
    ModalCampaignReport,
    ModalCaseOutcome,
    evaluate_modal_case,
    run_modal_campaign,
)
from repro.oracle.reduce import (
    ReduceCampaignReport,
    ReduceCaseOutcome,
    evaluate_reduce_case,
    run_reduce_campaign,
)
from repro.oracle.portfolio import (
    PortfolioCampaignReport,
    PortfolioCaseOutcome,
    evaluate_portfolio_case,
    run_portfolio_campaign,
)
from repro.oracle.shrink import ShrinkResult, shrink_case
from repro.oracle.verdicts import (
    AgreementStatus,
    CaseClassification,
    OracleVerdict,
    classical_verdicts,
    classify,
    evaluate_case,
    run_pipeline,
)

__all__ = [
    "AgreementStatus",
    "CampaignProfile",
    "CampaignReport",
    "CaseClassification",
    "CaseOutcome",
    "ComposeCampaignReport",
    "ComposeCaseOutcome",
    "DEFAULT_ARTIFACTS_DIR",
    "FAULTS",
    "Fault",
    "HierCampaignReport",
    "HierCaseOutcome",
    "ModalCampaignReport",
    "ModalCaseOutcome",
    "OracleCase",
    "OracleVerdict",
    "PROFILES",
    "PortfolioCampaignReport",
    "PortfolioCaseOutcome",
    "ReduceCampaignReport",
    "ReduceCaseOutcome",
    "ReplayResult",
    "ReproBundle",
    "ShrinkResult",
    "classical_verdicts",
    "classify",
    "draw_case",
    "evaluate_case",
    "evaluate_compose_case",
    "evaluate_hier_case",
    "evaluate_modal_case",
    "evaluate_portfolio_case",
    "evaluate_reduce_case",
    "fault_names",
    "get_fault",
    "replay_bundle",
    "run_campaign",
    "run_compose_campaign",
    "run_hier_campaign",
    "run_modal_campaign",
    "run_pipeline",
    "run_portfolio_campaign",
    "run_reduce_campaign",
    "shrink_case",
]
