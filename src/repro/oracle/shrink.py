"""Counterexample shrinking for oracle disagreements.

When the pipeline and a classical oracle disagree, the raw random case
is rarely the story: a 5-task draw usually hides a 1-2 task kernel.  The
shrinker delta-debugs the task set toward a minimal reproducer with a
fixed, deterministic reduction order:

1. drop whole tasks (one at a time, first-to-last);
2. shrink WCETs toward 1 (jump to 1, then halve, then decrement);
3. shrink periods toward the smallest value in the case's period pool;
4. normalize: deadline back to the period, offset to zero.

A reduction is kept iff the caller's ``is_interesting`` predicate still
holds (for campaigns: the disagreement persists).  Every candidate is
validated through the task-model invariants; illegal mutants are simply
skipped.  The number of predicate evaluations is capped so a pathological
case cannot stall a campaign.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import SchedError
from repro.oracle.case import OracleCase
from repro.sched.taskmodel import PeriodicTask, TaskSet

IsInteresting = Callable[[OracleCase], bool]


class ShrinkResult:
    """The minimal case found, with accounting of the search."""

    __slots__ = ("case", "evaluations", "reductions", "exhausted")

    def __init__(
        self,
        case: OracleCase,
        evaluations: int,
        reductions: int,
        exhausted: bool,
    ) -> None:
        self.case = case
        #: predicate evaluations spent
        self.evaluations = evaluations
        #: reductions accepted
        self.reductions = reductions
        #: True when the evaluation budget ran out before a fixpoint
        self.exhausted = exhausted

    def __repr__(self) -> str:
        return (
            f"ShrinkResult({len(self.case.tasks)} task(s), "
            f"{self.reductions} reduction(s), "
            f"{self.evaluations} evaluation(s))"
        )


def _wcet_candidates(wcet: int) -> List[int]:
    candidates = []
    for value in (1, wcet // 2, wcet - 1):
        if 1 <= value < wcet and value not in candidates:
            candidates.append(value)
    return candidates


def _period_candidates(period: int, pool: List[int]) -> List[int]:
    return [value for value in pool if value < period]


def _rebuild(task: PeriodicTask, **overrides) -> Optional[PeriodicTask]:
    """A mutated copy of ``task``, or None when the mutation violates the
    task-model invariants (deadline bounds, offset range, ...)."""
    fields = {
        "wcet": task.wcet,
        "period": task.period,
        "deadline": task.deadline,
        "priority": task.priority,
        "bcet": task.bcet,
        "offset": task.offset,
    }
    fields.update(overrides)
    # Mutations that change the period drag the dependent fields along.
    fields["deadline"] = min(fields["deadline"], fields["period"])
    fields["bcet"] = min(fields["bcet"], fields["wcet"])
    if fields["offset"] >= fields["period"]:
        fields["offset"] = 0
    try:
        return PeriodicTask(task.name, **fields)
    except SchedError:
        return None


def shrink_case(
    case: OracleCase,
    is_interesting: IsInteresting,
    *,
    max_evaluations: int = 400,
    period_pool: Optional[Iterable[int]] = None,
) -> ShrinkResult:
    """Delta-debug ``case`` to a minimal still-interesting reproducer.

    ``case`` itself must satisfy ``is_interesting`` (the caller has just
    observed the disagreement).  ``period_pool`` defaults to the set of
    periods present in the case.
    """
    current = case
    tasks = list(current.task_set())
    pool = sorted(
        set(period_pool) if period_pool is not None
        else {task.period for task in tasks}
    )

    evaluations = 0
    reductions = 0

    def try_accept(candidate_tasks: List[PeriodicTask]) -> bool:
        nonlocal current, evaluations, reductions
        if not candidate_tasks:
            return False
        try:
            candidate = current.with_tasks(TaskSet(candidate_tasks))
        except SchedError:
            return False
        evaluations += 1
        if is_interesting(candidate):
            current = candidate
            reductions += 1
            return True
        return False

    def budget_left() -> bool:
        return evaluations < max_evaluations

    progress = True
    while progress and budget_left():
        progress = False
        tasks = list(current.task_set())

        # 1. Drop whole tasks.
        index = 0
        while index < len(tasks) and budget_left():
            if try_accept(tasks[:index] + tasks[index + 1:]):
                tasks = list(current.task_set())
                progress = True
            else:
                index += 1

        # 2. Shrink WCETs toward 1.
        for index, task in enumerate(list(tasks)):
            for wcet in _wcet_candidates(task.wcet):
                if not budget_left():
                    break
                mutant = _rebuild(task, wcet=wcet)
                if mutant is None:
                    continue
                if try_accept(tasks[:index] + [mutant] + tasks[index + 1:]):
                    tasks = list(current.task_set())
                    progress = True
                    break

        # 3. Shrink periods toward the pool minimum.
        for index, task in enumerate(list(tasks)):
            for period in _period_candidates(task.period, pool):
                if not budget_left():
                    break
                mutant = _rebuild(task, period=period)
                if mutant is None:
                    continue
                if try_accept(tasks[:index] + [mutant] + tasks[index + 1:]):
                    tasks = list(current.task_set())
                    progress = True
                    break

        # 4. Normalize deadlines and offsets.
        for index, task in enumerate(list(tasks)):
            if not budget_left():
                break
            simplified = []
            if task.deadline != task.period:
                simplified.append(_rebuild(task, deadline=task.period))
            if task.offset != 0:
                simplified.append(_rebuild(task, offset=0))
            for mutant in simplified:
                if mutant is None:
                    continue
                if try_accept(tasks[:index] + [mutant] + tasks[index + 1:]):
                    tasks = list(current.task_set())
                    progress = True
                    break

    return ShrinkResult(current, evaluations, reductions, not budget_left())
