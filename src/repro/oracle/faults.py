"""Injectable translator faults: the oracle harness's own test fixtures.

A differential oracle that has never caught anything is untested
infrastructure.  These canned faults perturb the task set handed to the
*pipeline* side of a campaign -- emulating a defect in the AADL -> ACSR
translation (the model analyzed silently differing from the model
specified) -- so tests and the nightly job can assert that a real
discrepancy is (a) detected, (b) shrunk to a small reproducer and (c)
persisted as a replayable bundle.

Faults never touch the classical-oracle side; the oracles keep judging
the model as specified.

Reduction faults are a separate registry
(:data:`repro.engine.reduce.REDUCTION_FAULTS`, exercised by ``repro
oracle reduce --fault ...``): they perturb the reduction passes rather
than the task set, so the reduced-vs-unreduced campaign can prove it
catches an unsound reduction.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import SchedError
from repro.sched.taskmodel import PeriodicTask, TaskSet


class Fault:
    """A named task-set perturbation applied to the pipeline input."""

    def __init__(
        self,
        name: str,
        description: str,
        transform: Callable[[TaskSet], TaskSet],
    ) -> None:
        self.name = name
        self.description = description
        self._transform = transform

    def __call__(self, tasks: TaskSet) -> TaskSet:
        return self._transform(tasks)

    def __repr__(self) -> str:
        return f"Fault({self.name!r})"


def _copy(task: PeriodicTask, **overrides) -> PeriodicTask:
    fields = {
        "wcet": task.wcet,
        "period": task.period,
        "deadline": task.deadline,
        "priority": task.priority,
        "bcet": task.bcet,
        "offset": task.offset,
    }
    fields.update(overrides)
    fields["bcet"] = min(fields["bcet"], fields["wcet"])
    return PeriodicTask(task.name, **fields)


def _underestimate_wcet(tasks: TaskSet) -> TaskSet:
    """Translate every WCET one quantum short (classic off-by-one in a
    duration-to-quanta conversion): over-full sets look schedulable."""
    return TaskSet(
        [
            _copy(task, wcet=max(1, task.wcet - 1))
            for task in tasks
        ]
    )


def _ignore_offsets(tasks: TaskSet) -> TaskSet:
    """Drop Dispatch_Offset on the way in: phase-separated sets that are
    only schedulable thanks to their offsets now look unschedulable."""
    return TaskSet([_copy(task, offset=0) for task in tasks])


def _deadline_as_period(tasks: TaskSet) -> TaskSet:
    """Ignore Compute_Deadline and use the period instead: constrained-
    deadline misses go unnoticed."""
    return TaskSet(
        [_copy(task, deadline=task.period) for task in tasks]
    )


FAULTS: Dict[str, Fault] = {
    fault.name: fault
    for fault in (
        Fault(
            "underestimate-wcet",
            "translate every WCET one quantum short",
            _underestimate_wcet,
        ),
        Fault(
            "ignore-offsets",
            "drop Dispatch_Offset during translation",
            _ignore_offsets,
        ),
        Fault(
            "deadline-as-period",
            "substitute the period for Compute_Deadline",
            _deadline_as_period,
        ),
    )
}


def get_fault(name: str) -> Fault:
    try:
        return FAULTS[name]
    except KeyError:
        raise SchedError(
            f"unknown fault {name!r}; choose from {sorted(FAULTS)}"
        ) from None


def fault_names() -> List[str]:
    return sorted(FAULTS)
