"""The batch runner: cache-aware fan-out over a worker pool.

:func:`run_batch` takes a list of self-contained
:class:`~repro.batch.jobs.AnalysisJob` specs and

1. consults the persistent :class:`~repro.batch.cache.VerdictCache`
   (when given) and serves hits without running anything;
2. fans the misses across a :mod:`multiprocessing` pool (``workers``
   processes, default ``os.cpu_count()``; ``workers=1`` runs inline
   with no pool overhead);
3. merges every per-job :class:`~repro.engine.stats.EngineStats`
   snapshot -- workers serialize them as dicts -- into one aggregate,
   with verdict-cache hit/miss counters folded in;
4. writes freshly computed results back to the cache.

Determinism: jobs embed all of their own seeds and options, workers
share no mutable state, and results are reported in input order -- so
``workers=1`` and ``workers=N`` produce identical verdict lists (pinned
by ``tests/test_batch.py``).  Only JSON-typed dicts cross the process
boundary, which keeps the pool working under both ``fork`` and
``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.stats import EngineStats
from repro.errors import BatchError, ReproError
from repro.batch.cache import VerdictCache, cache_key, resolve_cache
from repro.batch.jobs import AnalysisJob, JobResult, execute_job

#: Progress callback: ``(done, total, result)`` after every job.
ProgressFn = Callable[[int, int, JobResult], None]


def resolve_workers(workers: Optional[int]) -> int:
    """Default the worker count to the machine's core count."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise BatchError(f"need at least one worker, got {workers}")
    return workers


def _execute_payload(data: Dict) -> Dict:
    """Pool target: dict in, dict out (must stay module-level so it
    pickles under the ``spawn`` start method).

    When the parent is tracing, the payload carries a ``_trace_path``:
    the worker then records its own spans locally (span ids prefixed
    with the worker id, so a later merge cannot collide) and writes
    them as JSONL for the parent to fold in after the pool drains --
    tracing never adds cross-process coordination to the hot path.
    """
    trace_path = data.pop("_trace_path", None)
    if trace_path is None:
        return execute_job(AnalysisJob.from_dict(data)).to_dict()

    from repro.obs.tracer import Tracer, activate

    tracer = Tracer(worker=f"w{os.getpid()}")
    with activate(tracer):
        result = execute_job(AnalysisJob.from_dict(data)).to_dict()
    tracer.write_jsonl(trace_path)
    return result


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class BatchReport:
    """Everything one batch run produced, in input order."""

    def __init__(
        self,
        *,
        results: List[JobResult],
        workers: int,
        elapsed: float,
        stats: EngineStats,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.results = results
        self.workers = workers
        self.elapsed = elapsed
        #: aggregate of every executed job's EngineStats, with
        #: verdict-cache hit/miss counters folded in
        self.stats = stats
        self.cache_dir = cache_dir

    @property
    def cache_hits(self) -> int:
        return self.stats.verdict_cache_hits

    @property
    def cache_misses(self) -> int:
        return self.stats.verdict_cache_misses

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.verdict] = counts.get(result.verdict, 0) + 1
        return counts

    def exit_code(self) -> int:
        """The CLI exit-code contract over a whole batch: the worst
        individual outcome (error 2 > unschedulable 1 > unknown 3 >
        schedulable 0, with "worst" meaning decisiveness, not the
        numeric value)."""
        verdicts = {result.verdict for result in self.results}
        if "error" in verdicts:
            return 2
        if "unschedulable" in verdicts:
            return 1
        if "unknown" in verdicts:
            return 3
        return 0

    def format(self, *, show_stats: bool = False) -> str:
        width = max([len(r.job_id) for r in self.results] + [8])
        lines = [
            f"batch: {len(self.results)} job(s), {self.workers} worker(s), "
            f"{self.elapsed:.2f}s wall clock"
        ]
        for result in self.results:
            mark = " (cached)" if result.cached else ""
            detail = (
                f"error: {result.error}"
                if result.error
                else f"{result.states} states, {result.elapsed:.3f}s"
            )
            lines.append(
                f"  {result.job_id:<{width}}  "
                f"{result.verdict:<14} {detail}{mark}"
            )
        counts = self.counts()
        lines.append(
            "verdicts: "
            + ", ".join(f"{counts[v]} {v}" for v in sorted(counts))
        )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"verdict cache: {self.cache_hits} hits / "
                f"{self.cache_misses} misses"
                + (f" ({self.cache_dir})" if self.cache_dir else "")
            )
        if show_stats:
            lines.append("engine totals:")
            for line in self.stats.format().splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"BatchReport(jobs={len(self.results)}, "
            f"workers={self.workers}, counts={self.counts()})"
        )


def run_batch(
    jobs: Sequence[AnalysisJob],
    *,
    workers: Optional[int] = None,
    cache=None,
    progress: Optional[ProgressFn] = None,
) -> BatchReport:
    """Run every job, in parallel, consulting the verdict cache.

    ``cache`` accepts a :class:`VerdictCache`, a directory path, True
    (the default ``artifacts/cache/`` directory) or None (disabled).
    Results come back in input order regardless of completion order.
    """
    from repro.obs.tracer import current_tracer

    store: Optional[VerdictCache] = resolve_cache(cache)
    n_workers = resolve_workers(workers)
    tracer = current_tracer()
    batch_span = tracer.span(
        "batch.run", jobs=len(jobs), workers=n_workers
    )
    started = time.perf_counter()
    # Counter baseline, so a shared cache instance reports per-run deltas.
    hits0 = store.hits if store is not None else 0
    misses0 = store.misses if store is not None else 0

    results: List[Optional[JobResult]] = [None] * len(jobs)
    keys: List[Optional[str]] = [None] * len(jobs)
    pending: List[int] = []
    done = 0

    for index, job in enumerate(jobs):
        if store is None:
            pending.append(index)
            continue
        try:
            key = cache_key(job)
        except ReproError:
            # Unkeyable (malformed) jobs still run, so the batch can
            # report them as error results instead of aborting here.
            pending.append(index)
            continue
        keys[index] = key
        stored = store.get(key)
        if stored is None:
            pending.append(index)
            continue
        hit = JobResult.from_dict(stored)
        hit.job_id = job.job_id  # stored entries carry no provenance
        hit.cached = True
        results[index] = hit
        done += 1
        if progress is not None:
            progress(done, len(jobs), hit)

    def finish(index: int, result: JobResult) -> None:
        nonlocal done
        results[index] = result
        if store is not None and keys[index] is not None and result.error is None:
            stored = result.to_dict()
            stored["cached"] = False
            store.put(keys[index], stored, job_id=result.job_id)
        done += 1
        if progress is not None:
            progress(done, len(jobs), result)

    if len(pending) <= 1 or n_workers <= 1:
        # Inline path: jobs run in-process, so the parent tracer sees
        # their spans directly.
        for index in pending:
            finish(index, execute_job(jobs[index]))
    else:
        payloads = [jobs[index].to_dict() for index in pending]
        trace_dir: Optional[str] = None
        if tracer.enabled:
            import tempfile

            trace_dir = tempfile.mkdtemp(prefix="repro-batch-trace-")
            for position, payload in enumerate(payloads):
                payload["_trace_path"] = os.path.join(
                    trace_dir, f"job-{position}.jsonl"
                )
        try:
            with _pool_context().Pool(min(n_workers, len(pending))) as pool:
                for index, data in zip(
                    pending, pool.imap(_execute_payload, payloads)
                ):
                    finish(index, JobResult.from_dict(data))
        finally:
            if trace_dir is not None:
                import shutil

                # Fold every worker's local trace into the parent's,
                # tagged with the recording worker's id and re-rooted
                # under the open batch.run span.
                for name in sorted(os.listdir(trace_dir)):
                    try:
                        tracer.merge_file(os.path.join(trace_dir, name))
                    except (OSError, ValueError):
                        pass  # a crashed worker leaves no usable trace
                shutil.rmtree(trace_dir, ignore_errors=True)

    final = [result for result in results if result is not None]
    wall = time.perf_counter() - started
    # The aggregate keeps the additive per-job loop time in ``elapsed``
    # (a CPU-time sum once jobs ran in parallel) but takes its
    # ``wall_elapsed`` -- the states/s denominator -- from the pool's
    # own wall clock, measured right here.
    stats = EngineStats.aggregate(
        (
            EngineStats.from_dict(result.stats)
            for result in final
            if result.stats is not None and not result.cached
        ),
        wall_elapsed=wall,
    )
    if store is not None:
        stats.verdict_cache_hits = store.hits - hits0
        stats.verdict_cache_misses = store.misses - misses0
    batch_span.set(
        cache_hits=stats.verdict_cache_hits,
        cache_misses=stats.verdict_cache_misses,
    ).incr("states", stats.states)
    batch_span.finish()
    return BatchReport(
        results=final,
        workers=n_workers,
        elapsed=wall,
        stats=stats,
        cache_dir=store.directory if store is not None else None,
    )
