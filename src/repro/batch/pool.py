"""The batch runner: cache-aware fan-out over a worker pool.

:func:`run_batch` takes a list of self-contained
:class:`~repro.batch.jobs.AnalysisJob` specs and

1. consults the persistent :class:`~repro.batch.cache.VerdictCache`
   (when given) and serves hits without running anything;
2. dedupes identical jobs *within* the batch by cache key: the first
   occurrence executes, every duplicate is served from its result
   (marked ``deduped``) -- the in-process seed of the request
   coalescing :mod:`repro.serve` does across clients;
3. fans the remaining misses across a process pool (``workers``
   processes, default ``os.cpu_count()``; ``workers=1`` runs inline
   with no pool overhead);
4. merges every per-job :class:`~repro.engine.stats.EngineStats`
   snapshot -- workers serialize them as dicts -- into one aggregate,
   with verdict-cache hit/miss counters folded in;
5. writes freshly computed results back to the cache.

Crash safety: a worker that *raises* is already contained inside
:func:`~repro.batch.jobs.execute_job` (any exception becomes a
``verdict="error"`` result), and a worker that *dies* -- SIGKILL, OOM
kill, interpreter abort -- breaks the shared
:class:`~concurrent.futures.ProcessPoolExecutor` without identifying
the killer, so the runner salvages: every job lost with the pool is
re-run alone in a fresh single-worker pool.  Innocent casualties
complete on the retry; a job that also kills its private pool is
definitively the killer and is reported as an ``error`` result.  Either
way :func:`run_batch` returns a complete :class:`BatchReport`, never a
traceback.

Determinism: jobs embed all of their own seeds and options, workers
share no mutable state, and results are reported in input order -- so
``workers=1`` and ``workers=N`` produce identical verdict lists (pinned
by ``tests/test_batch.py``).  Only JSON-typed dicts cross the process
boundary, which keeps the pool working under both ``fork`` and
``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.stats import EngineStats
from repro.errors import BatchError, ReproError
from repro.batch.cache import VerdictCache, cache_key, resolve_cache
from repro.batch.jobs import AnalysisJob, JobResult, execute_job

#: Progress callback: ``(done, total, result)`` after every job.
ProgressFn = Callable[[int, int, JobResult], None]

#: The ``error`` text of a job whose worker died (SIGKILL/OOM) in both
#: the shared pool and its private salvage pool.
WORKER_DIED = (
    "worker process died while executing this job (hard crash: "
    "SIGKILL, out-of-memory kill or interpreter abort); the job also "
    "killed its private salvage worker and was abandoned"
)


def resolve_workers(workers: Optional[int]) -> int:
    """Default the worker count to the machine's core count."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise BatchError(f"need at least one worker, got {workers}")
    return workers


def _execute_payload(data: Dict) -> Dict:
    """Pool target: dict in, dict out (must stay module-level so it
    pickles under the ``spawn`` start method).

    When the parent is tracing, the payload carries a ``_trace_path``:
    the worker then records its own spans locally (span ids prefixed
    with the worker id, so a later merge cannot collide) and writes
    them as JSONL for the parent to fold in after the pool drains --
    tracing never adds cross-process coordination to the hot path.
    """
    trace_path = data.pop("_trace_path", None)
    try:
        if trace_path is None:
            return execute_job(AnalysisJob.from_dict(data)).to_dict()

        from repro.obs.tracer import Tracer, activate

        tracer = Tracer(worker=f"w{os.getpid()}")
        with activate(tracer):
            result = execute_job(AnalysisJob.from_dict(data)).to_dict()
        tracer.write_jsonl(trace_path)
        return result
    except Exception as exc:
        # execute_job already captures everything; this guards the thin
        # shell around it (payload deserialization, trace writing) so a
        # worker never raises back through the pool.
        return JobResult(
            job_id=data.get("job_id", "?"),
            kind=data.get("kind", "aadl"),
            verdict="error",
            error=f"worker shell failure: {type(exc).__name__}: {exc}",
        ).to_dict()


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _run_pool(
    jobs: Sequence[AnalysisJob],
    pending: List[int],
    payloads: Dict[int, Dict],
    n_workers: int,
    finish: Callable[[int, JobResult], None],
) -> None:
    """Fan ``pending`` jobs across a process pool, surviving worker
    death.

    A hard worker death (SIGKILL, OOM kill) breaks the whole
    :class:`ProcessPoolExecutor`: every unfinished future raises
    :class:`BrokenExecutor` and nothing says which job was the killer.
    Futures that completed *before* the break keep their results, so
    only the genuinely lost jobs enter the salvage pass, where each
    re-runs alone in a fresh single-worker pool: innocents complete,
    and a job that breaks its private pool too is reported as an
    ``error`` result (:data:`WORKER_DIED`).
    """
    context = _pool_context()
    lost: List[int] = []
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(pending)), mp_context=context
    ) as executor:
        futures = {
            index: executor.submit(_execute_payload, payloads[index])
            for index in pending
        }
        for index in pending:
            try:
                data = futures[index].result()
            except BrokenExecutor:
                lost.append(index)
            except Exception as exc:
                # _execute_payload never raises; this covers transport
                # failures (a payload that cannot pickle, ...).
                finish(
                    index,
                    JobResult(
                        job_id=jobs[index].job_id,
                        kind=jobs[index].kind,
                        verdict="error",
                        error=f"pool transport failure: "
                        f"{type(exc).__name__}: {exc}",
                    ),
                )
            else:
                finish(index, JobResult.from_dict(data))
    for index in lost:
        try:
            with ProcessPoolExecutor(
                max_workers=1, mp_context=context
            ) as salvage:
                data = salvage.submit(
                    _execute_payload, dict(payloads[index])
                ).result()
        except BrokenExecutor:
            finish(
                index,
                JobResult(
                    job_id=jobs[index].job_id,
                    kind=jobs[index].kind,
                    verdict="error",
                    error=WORKER_DIED,
                ),
            )
        else:
            finish(index, JobResult.from_dict(data))


class BatchReport:
    """Everything one batch run produced, in input order."""

    def __init__(
        self,
        *,
        results: List[JobResult],
        workers: int,
        elapsed: float,
        stats: EngineStats,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.results = results
        self.workers = workers
        self.elapsed = elapsed
        #: aggregate of every executed job's EngineStats, with
        #: verdict-cache hit/miss counters folded in
        self.stats = stats
        self.cache_dir = cache_dir

    @property
    def cache_hits(self) -> int:
        return self.stats.verdict_cache_hits

    @property
    def cache_misses(self) -> int:
        return self.stats.verdict_cache_misses

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.verdict] = counts.get(result.verdict, 0) + 1
        return counts

    def exit_code(self) -> int:
        """The CLI exit-code contract over a whole batch: the worst
        individual outcome (error 2 > unschedulable 1 > unknown 3 >
        schedulable 0, with "worst" meaning decisiveness, not the
        numeric value)."""
        verdicts = {result.verdict for result in self.results}
        if "error" in verdicts:
            return 2
        if "unschedulable" in verdicts:
            return 1
        if "unknown" in verdicts:
            return 3
        return 0

    def format(self, *, show_stats: bool = False) -> str:
        width = max([len(r.job_id) for r in self.results] + [8])
        lines = [
            f"batch: {len(self.results)} job(s), {self.workers} worker(s), "
            f"{self.elapsed:.2f}s wall clock"
        ]
        for result in self.results:
            mark = (
                " (cached)"
                if result.cached
                else " (deduped)" if result.deduped else ""
            )
            detail = (
                f"error: {result.error}"
                if result.error
                else f"{result.states} states, {result.elapsed:.3f}s"
            )
            lines.append(
                f"  {result.job_id:<{width}}  "
                f"{result.verdict:<14} {detail}{mark}"
            )
        counts = self.counts()
        lines.append(
            "verdicts: "
            + ", ".join(f"{counts[v]} {v}" for v in sorted(counts))
        )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"verdict cache: {self.cache_hits} hits / "
                f"{self.cache_misses} misses"
                + (f" ({self.cache_dir})" if self.cache_dir else "")
            )
        if show_stats:
            lines.append("engine totals:")
            for line in self.stats.format().splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"BatchReport(jobs={len(self.results)}, "
            f"workers={self.workers}, counts={self.counts()})"
        )


def run_batch(
    jobs: Sequence[AnalysisJob],
    *,
    workers: Optional[int] = None,
    cache=None,
    progress: Optional[ProgressFn] = None,
) -> BatchReport:
    """Run every job, in parallel, consulting the verdict cache.

    ``cache`` accepts a :class:`VerdictCache`, a directory path, True
    (the default ``artifacts/cache/`` directory) or None (disabled).
    Results come back in input order regardless of completion order.
    """
    from repro.obs.tracer import current_tracer

    store: Optional[VerdictCache] = resolve_cache(cache)
    n_workers = resolve_workers(workers)
    tracer = current_tracer()
    batch_span = tracer.span(
        "batch.run", jobs=len(jobs), workers=n_workers
    )
    started = time.perf_counter()
    # Counter baseline, so a shared cache instance reports per-run deltas.
    hits0 = store.hits if store is not None else 0
    misses0 = store.misses if store is not None else 0

    results: List[Optional[JobResult]] = [None] * len(jobs)
    keys: List[Optional[str]] = [None] * len(jobs)
    primary_of: Dict[str, int] = {}
    duplicates: Dict[int, List[int]] = {}
    pending: List[int] = []
    done = 0

    def record(index: int, result: JobResult) -> None:
        nonlocal done
        results[index] = result
        done += 1
        if progress is not None:
            progress(done, len(jobs), result)

    def dedupe_from(index: int, primary: JobResult) -> JobResult:
        dup = JobResult.from_dict(primary.to_dict())
        dup.job_id = jobs[index].job_id
        dup.cached = primary.cached
        dup.deduped = True
        return dup

    def finish(index: int, result: JobResult) -> None:
        if store is not None and keys[index] is not None and result.error is None:
            stored = result.to_dict()
            stored["cached"] = False
            store.put(keys[index], stored, job_id=result.job_id)
        record(index, result)
        for dup_index in duplicates.pop(index, ()):
            record(dup_index, dedupe_from(dup_index, result))

    for index, job in enumerate(jobs):
        try:
            key = cache_key(job)
        except ReproError:
            # Unkeyable (malformed) jobs still run individually, so the
            # batch can report them as error results instead of
            # aborting here.
            key = None
        keys[index] = key
        if key is not None:
            prior = primary_of.get(key)
            if prior is not None:
                # In-batch duplicate: ride the first occurrence instead
                # of executing (and caching) the same work twice.
                served = results[prior]
                if served is not None:
                    record(index, dedupe_from(index, served))
                else:
                    duplicates.setdefault(prior, []).append(index)
                continue
            primary_of[key] = index
        if store is not None and key is not None:
            stored = store.get(key)
            if stored is not None:
                hit = JobResult.from_dict(stored)
                hit.job_id = job.job_id  # entries carry no provenance
                hit.cached = True
                record(index, hit)
                continue
        pending.append(index)

    if len(pending) <= 1 or n_workers <= 1:
        # Inline path: jobs run in-process, so the parent tracer sees
        # their spans directly.
        for index in pending:
            finish(index, execute_job(jobs[index]))
    else:
        payloads = {index: jobs[index].to_dict() for index in pending}
        trace_dir: Optional[str] = None
        if tracer.enabled:
            import tempfile

            trace_dir = tempfile.mkdtemp(prefix="repro-batch-trace-")
            for position, index in enumerate(pending):
                payloads[index]["_trace_path"] = os.path.join(
                    trace_dir, f"job-{position}.jsonl"
                )
        try:
            _run_pool(jobs, pending, payloads, n_workers, finish)
        finally:
            if trace_dir is not None:
                import shutil

                # Fold every worker's local trace into the parent's,
                # tagged with the recording worker's id and re-rooted
                # under the open batch.run span.
                for name in sorted(os.listdir(trace_dir)):
                    try:
                        tracer.merge_file(os.path.join(trace_dir, name))
                    except (OSError, ValueError):
                        pass  # a crashed worker leaves no usable trace
                shutil.rmtree(trace_dir, ignore_errors=True)

    final = [result for result in results if result is not None]
    wall = time.perf_counter() - started
    # The aggregate keeps the additive per-job loop time in ``elapsed``
    # (a CPU-time sum once jobs ran in parallel) but takes its
    # ``wall_elapsed`` -- the states/s denominator -- from the pool's
    # own wall clock, measured right here.
    stats = EngineStats.aggregate(
        (
            EngineStats.from_dict(result.stats)
            for result in final
            if result.stats is not None
            and not result.cached
            and not result.deduped
        ),
        wall_elapsed=wall,
    )
    if store is not None:
        stats.verdict_cache_hits = store.hits - hits0
        stats.verdict_cache_misses = store.misses - misses0
    batch_span.set(
        cache_hits=stats.verdict_cache_hits,
        cache_misses=stats.verdict_cache_misses,
    ).incr("states", stats.states)
    batch_span.finish()
    return BatchReport(
        results=final,
        workers=n_workers,
        elapsed=wall,
        stats=stats,
        cache_dir=store.directory if store is not None else None,
    )
