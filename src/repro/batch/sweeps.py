"""Workload sweeps as batch jobs.

A sweep turns a utilization grid (or any list of generated task sets)
into ready-to-run :class:`~repro.batch.jobs.AnalysisJob` specs, so a
whole schedulability study -- "where does this generator family stop
being schedulable under RMS?" -- is one :func:`repro.batch.run_batch`
call that parallelizes across cores and hits the verdict cache on
re-runs with overlapping grid points.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.batch.jobs import AnalysisJob


def utilization_sweep_jobs(
    n_threads: int,
    utilizations: Sequence[float],
    *,
    generator: str = "uniform",
    scheduling: str = "RMS",
    periods: Optional[Sequence[int]] = None,
    base_seed: int = 0,
    max_states: int = 300_000,
    **params,
) -> List[AnalysisJob]:
    """One ``case`` job per utilization point, deterministically seeded.

    The task sets come from
    :func:`repro.workloads.generators.sweep_task_sets`; each job wraps
    its set as an :class:`~repro.oracle.case.OracleCase` so the batch
    runner also gets the classical-oracle cross-check for free.
    """
    from repro.oracle.case import OracleCase
    from repro.workloads.generators import sweep_task_sets

    jobs: List[AnalysisJob] = []
    for label, tasks in sweep_task_sets(
        n_threads,
        utilizations,
        generator=generator,
        periods=periods,
        base_seed=base_seed,
        **params,
    ):
        case = OracleCase.from_task_set(
            tasks, scheduling=scheduling, case_id=label
        )
        jobs.append(
            AnalysisJob.from_case(case, job_id=label, max_states=max_states)
        )
    return jobs
