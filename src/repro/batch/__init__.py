"""Parallel batch analysis with a persistent verdict cache.

The paper's pipeline analyzes one AADL model at a time; everything
around it -- oracle campaigns, workload sweeps, benchmark suites --
runs *many* analyses whose verdicts are pure functions of (model,
options).  This subsystem makes that the first-class unit of work:

* :mod:`~repro.batch.jobs` -- :class:`AnalysisJob`, a self-contained
  picklable analysis request (an AADL source or an oracle case), and
  :class:`JobResult`, its JSON-typed outcome;
* :mod:`~repro.batch.cache` -- :class:`VerdictCache`, the persistent
  content-addressed verdict store under ``artifacts/cache/`` (key =
  SHA-256 of canonical model text + analysis options);
* :mod:`~repro.batch.pool` -- :func:`run_batch`, the cache-aware
  :mod:`multiprocessing` fan-out that merges per-worker
  :class:`~repro.engine.stats.EngineStats` into one aggregate;
* :mod:`~repro.batch.sweeps` -- workload sweeps as job lists.

CLI surface: ``repro batch run``, ``repro batch cache``, ``repro
analyze <files...> --jobs N --cache`` and ``repro oracle run --jobs N
--cache``.  See ``docs/batch.md`` for the pool architecture, the cache
key definition and its invalidation rules.
"""

from repro.batch.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    VerdictCache,
    cache_key,
    resolve_cache,
)
from repro.batch.jobs import (
    BATCH_FAULTS,
    AnalysisJob,
    JobResult,
    execute_job,
)
from repro.batch.pool import (
    WORKER_DIED,
    BatchReport,
    ProgressFn,
    resolve_workers,
    run_batch,
)
from repro.batch.sweeps import utilization_sweep_jobs

__all__ = [
    "AnalysisJob",
    "BATCH_FAULTS",
    "BatchReport",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "JobResult",
    "ProgressFn",
    "VerdictCache",
    "WORKER_DIED",
    "cache_key",
    "execute_job",
    "resolve_cache",
    "resolve_workers",
    "run_batch",
    "utilization_sweep_jobs",
]
