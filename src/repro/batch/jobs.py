"""Batch jobs: one self-contained, picklable analysis request each.

A job is the unit the :mod:`repro.batch` pool ships to a worker
process, so it must be (a) serializable as a plain dict of JSON types
-- no live AADL/ACSR objects cross the process boundary -- and (b)
deterministic: everything the analysis depends on (model text or task
list, budget, quantum, fault name, seeds) is embedded in the job, never
drawn from ambient state.  Two kinds exist:

* ``aadl`` -- an AADL source text plus an optional root implementation;
  executed with :func:`repro.analysis.analyze_model` (the ``repro
  analyze`` pipeline).
* ``case`` -- a serialized :class:`~repro.oracle.case.OracleCase`;
  executed with :func:`repro.oracle.verdicts.evaluate_case` (pipeline
  + classical oracles + agreement classification), which is how the
  differential campaign rides the pool.
* ``island`` -- an AADL source text restricted to one processor island
  (a named subset of threads and processors); the worker re-slices the
  instance with :func:`repro.aadl.slice_instance` and analyzes the
  slice.  This is how :mod:`repro.compose` fans islands out, and the
  island membership is folded into the cache key so per-island verdicts
  persist independently of the rest of the model.
* ``portfolio`` -- an AADL source text analyzed through the tiered
  verdict portfolio (:func:`repro.portfolio.analyze_portfolio`):
  analytic tiers first, exhaustive exploration on escalation.  The tier
  chain configuration rides in ``options["tiers"]`` so portfolio
  verdicts never share cache entries with plain ``aadl`` runs or with
  runs under a different chain.
* ``hier`` -- an AADL source text with virtual-processor partitions,
  analyzed hierarchically (:func:`repro.hier.analyze_hier`): each
  partition against its BDR interface, each host against its servers.
  The derived interface parameters are folded into the cache key (a
  ``-- hier:`` header in the canonical text), so editing a server's
  budget or replenishment invalidates exactly the affected entries.
* ``modal`` -- a multi-modal AADL source analyzed transition-aware
  (:func:`repro.modal.analyze_modal`): steady per-mode verdicts plus a
  transient check of every reachable mode transition under a named
  mode-change protocol.  The protocol (and any transient caps or
  injected fault) rides in the options dict, so verdicts under
  different protocols never share a cache entry.

``aadl`` and ``portfolio`` jobs additionally accept a ``mode`` option:
the worker then pins the instance to that system operation mode
(``mode_overrides``), which is how per-mode analysis fans out through
the pool with independently cached verdicts per mode.

All kinds expose :meth:`AnalysisJob.canonical_model_text`, the
model-side half of the persistent verdict-cache key (see
:mod:`repro.batch.cache`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import BatchError, ReproError

JOB_KINDS = ("aadl", "case", "island", "portfolio", "hier", "modal")

#: Crash-injection faults for harness self-tests -- the batch analogue
#: of :mod:`repro.oracle.faults` and ``REDUCTION_FAULTS``.  A job whose
#: options carry ``batch_fault`` triggers the named failure inside the
#: worker *before* any analysis runs, which is how the tests (and the
#: serve smoke) exercise the pool's crash paths deterministically:
#:
#: * ``raise`` -- throw a non-:class:`ReproError` (a worker bug);
#: * ``sigkill`` -- hard-kill the worker process mid-job (the pool must
#:   survive and report the job as lost);
#: * ``block:<path>`` -- park the worker until ``<path>`` exists (a
#:   deterministic "slow job" for backpressure/coalescing tests).
#:
#: Real workloads never set the option; it participates in the cache
#: key like any other option, so faulted runs cannot poison real ones.
BATCH_FAULTS = ("raise", "sigkill", "block")


def _apply_batch_fault(spec: str) -> None:
    import os
    import time

    if spec == "raise":
        raise RuntimeError("injected batch fault: unexpected worker exception")
    if spec == "sigkill":
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    if spec.startswith("block:"):
        path = spec[len("block:"):]
        deadline = time.monotonic() + 30.0
        while not os.path.exists(path):
            if time.monotonic() > deadline:
                raise BatchError(f"batch fault block:{path} timed out")
            time.sleep(0.01)
        return
    raise BatchError(
        f"unknown batch fault {spec!r}; choose from {list(BATCH_FAULTS)}"
    )


class AnalysisJob:
    """One analysis request.

    Attributes:
        job_id: caller-facing label (report rows, progress lines).
        kind: ``"aadl"`` or ``"case"``.
        payload: kind-specific model data (JSON types only).
        options: semantic analysis options (JSON types only) -- these
            participate in the cache key, so anything that can change
            the verdict (budget, quantum, fault) must live here and
            nothing else should.
    """

    __slots__ = ("job_id", "kind", "payload", "options")

    def __init__(
        self,
        *,
        job_id: str,
        kind: str,
        payload: Dict[str, Any],
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if kind not in JOB_KINDS:
            raise BatchError(
                f"unknown job kind {kind!r}; choose from {list(JOB_KINDS)}"
            )
        self.job_id = job_id
        self.kind = kind
        self.payload = dict(payload)
        self.options = dict(options or {})

    # -- construction ---------------------------------------------------

    @classmethod
    def from_aadl(
        cls,
        source: str,
        *,
        root: Optional[str] = None,
        job_id: Optional[str] = None,
        max_states: int = 1_000_000,
        quantum_us: Optional[int] = None,
        reduce: Optional[str] = None,
        mode: Optional[str] = None,
    ) -> "AnalysisJob":
        """A schedulability check over an AADL source text.

        ``reduce`` is a canonical reduction-spec token (see
        :func:`repro.engine.reduce.reduction_token`); it rides in the
        options dict only when set, so reduced runs never share a
        verdict-cache entry with unreduced ones (whose keys stay
        unchanged).  ``mode`` pins the instance to one system operation
        mode of the root implementation (per-mode fan-out); also
        present only when set, and cache-key material like every
        option.
        """
        options = {"max_states": max_states, "quantum_us": quantum_us}
        if reduce:
            options["reduce"] = reduce
        if mode:
            options["mode"] = mode
        return cls(
            job_id=job_id or (root or "aadl-model"),
            kind="aadl",
            payload={"source": source, "root": root},
            options=options,
        )

    @classmethod
    def from_case(
        cls,
        case,
        *,
        job_id: Optional[str] = None,
        max_states: int = 300_000,
        fault: Optional[str] = None,
    ) -> "AnalysisJob":
        """A differential-oracle evaluation of an
        :class:`~repro.oracle.case.OracleCase` (or its dict form)."""
        data = case if isinstance(case, dict) else case.to_dict()
        return cls(
            job_id=job_id or data.get("case_id", "case"),
            kind="case",
            payload={"case": data},
            options={"max_states": max_states, "fault": fault},
        )

    @classmethod
    def from_island(
        cls,
        source: str,
        *,
        root: Optional[str] = None,
        label: str,
        threads: list,
        processors: list,
        job_id: Optional[str] = None,
        max_states: int = 1_000_000,
        quantum_ps: Optional[int] = None,
        reduce: Optional[str] = None,
        mode: Optional[str] = None,
    ) -> "AnalysisJob":
        """A schedulability check of one processor island.

        ``threads`` / ``processors`` are qualified instance names; the
        worker re-instantiates ``source`` and slices to them.
        ``quantum_ps`` pins the quantum to the *full* model's natural
        quantum so island semantics match the monolithic analysis
        (an island alone could have a coarser GCD).  ``reduce`` is the
        canonical reduction-spec token, and ``mode`` pins the root to
        one steady mode at re-instantiation -- both cache-key material
        like the other options (present only when set).
        """
        options = {"max_states": max_states, "quantum_ps": quantum_ps}
        if reduce:
            options["reduce"] = reduce
        if mode is not None:
            options["mode"] = mode
        return cls(
            job_id=job_id or label,
            kind="island",
            payload={
                "source": source,
                "root": root,
                "label": label,
                "threads": sorted(threads),
                "processors": sorted(processors),
            },
            options=options,
        )

    @classmethod
    def from_portfolio(
        cls,
        source: str,
        *,
        root: Optional[str] = None,
        job_id: Optional[str] = None,
        max_states: int = 1_000_000,
        quantum_us: Optional[int] = None,
        tiers: Optional[str] = None,
        reduce: Optional[str] = None,
        mode: Optional[str] = None,
    ) -> "AnalysisJob":
        """A tiered-portfolio schedulability check over an AADL source.

        ``tiers`` is the chain's config token (see
        :attr:`repro.portfolio.PortfolioAnalyzer.config_token`); None
        selects the default chain.  It lives in the options dict so the
        verdict-cache key distinguishes tier configurations.  ``reduce``
        (the reduction-spec token, present only when set) applies to the
        exploration tier on escalation.  ``mode`` pins the instance to
        one steady operation mode, letting the analytic tiers speak for
        a multi-modal model one mode at a time.
        """
        options = {
            "max_states": max_states,
            "quantum_us": quantum_us,
            "tiers": tiers,
        }
        if reduce:
            options["reduce"] = reduce
        if mode:
            options["mode"] = mode
        return cls(
            job_id=job_id or (root or "aadl-model"),
            kind="portfolio",
            payload={"source": source, "root": root},
            options=options,
        )

    @classmethod
    def from_hier(
        cls,
        source: str,
        *,
        root: Optional[str] = None,
        job_id: Optional[str] = None,
        quantum_us: Optional[int] = None,
        max_window: Optional[int] = None,
        fault: Optional[str] = None,
    ) -> "AnalysisJob":
        """A hierarchical (BDR-interface) check over a partitioned AADL
        source.

        ``max_window`` caps the flattened-simulation window (quanta);
        ``fault`` injects a :data:`repro.hier.HIER_FAULTS` derivation
        bug (self-tests only).  Both are cache-key material, present
        only when set, so faulted or window-capped runs never share an
        entry with honest ones.
        """
        options: Dict[str, Any] = {"quantum_us": quantum_us}
        if max_window:
            options["max_window"] = max_window
        if fault:
            options["hier_fault"] = fault
        return cls(
            job_id=job_id or (root or "aadl-model"),
            kind="hier",
            payload={"source": source, "root": root},
            options=options,
        )

    @classmethod
    def from_modal(
        cls,
        source: str,
        *,
        root: Optional[str] = None,
        job_id: Optional[str] = None,
        protocol: str = "synchronous",
        max_states: int = 1_000_000,
        quantum_us: Optional[int] = None,
        portfolio: bool = False,
        tiers: Optional[str] = None,
        reduce: Optional[str] = None,
        max_phasings: Optional[int] = None,
        max_window: Optional[int] = None,
        fault: Optional[str] = None,
    ) -> "AnalysisJob":
        """A transition-aware modal analysis of a multi-modal source.

        ``protocol`` names the mode-change protocol
        (:data:`repro.modal.PROTOCOLS`) and is always present in the
        options -- a synchronous verdict must never be served from an
        asynchronous run's cache entry or vice versa.  ``portfolio``
        routes each steady mode through the tiered portfolio;
        ``max_phasings`` / ``max_window`` cap the escalated transient
        simulation and ``fault`` injects a :data:`repro.modal.MODAL_FAULTS`
        defect (self-tests only) -- all cache-key material, present
        only when set.
        """
        from repro.modal.transient import PROTOCOLS

        if protocol not in PROTOCOLS:
            raise BatchError(
                f"unknown mode-change protocol {protocol!r}; choose from "
                f"{list(PROTOCOLS)}"
            )
        options: Dict[str, Any] = {
            "protocol": protocol,
            "max_states": max_states,
            "quantum_us": quantum_us,
        }
        if portfolio:
            options["portfolio"] = True
            options["tiers"] = tiers
        if reduce:
            options["reduce"] = reduce
        if max_phasings:
            options["max_phasings"] = max_phasings
        if max_window:
            options["max_window"] = max_window
        if fault:
            options["modal_fault"] = fault
        return cls(
            job_id=job_id or (root or "aadl-model"),
            kind="modal",
            payload={"source": source, "root": root},
            options=options,
        )

    @classmethod
    def from_file(cls, path: str, **options: Any) -> "AnalysisJob":
        """Build a job from a file path.

        ``*.aadl`` becomes an ``aadl`` job; ``*.json`` is read as a
        serialized oracle case (the :meth:`OracleCase.to_dict` layout,
        also the ``case`` field of a repro bundle) or a ``repro.serve``
        result bundle (whose ``job`` field replays verbatim).
        """
        import json
        import os

        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        name = os.path.basename(path)
        if path.endswith(".json"):
            data = json.loads(text)
            if "job" in data and "kind" not in data:
                # A repro.serve bundle: replay the embedded job as-is.
                return cls.from_dict(data["job"])
            if "case" in data and "tasks" not in data:
                data = data["case"]  # accept a whole repro bundle
            options.pop("portfolio", None)
            options.pop("tiers", None)
            options.pop("modal", None)
            options.pop("protocol", None)
            return cls.from_case(data, job_id=name, **options)
        if options.pop("modal", False):
            if not options.pop("portfolio", False):
                options.pop("tiers", None)
                return cls.from_modal(
                    text,
                    root=options.pop("root", None),
                    job_id=name,
                    **options,
                )
            return cls.from_modal(
                text,
                root=options.pop("root", None),
                job_id=name,
                portfolio=True,
                **options,
            )
        options.pop("protocol", None)
        if options.pop("portfolio", False):
            return cls.from_portfolio(
                text,
                root=options.pop("root", None),
                job_id=name,
                **options,
            )
        options.pop("tiers", None)
        return cls.from_aadl(
            text,
            root=options.pop("root", None),
            job_id=name,
            **options,
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "payload": dict(self.payload),
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalysisJob":
        missing = {"job_id", "kind", "payload"} - set(data)
        if missing:
            raise BatchError(f"batch job is missing fields: {sorted(missing)}")
        return cls(
            job_id=data["job_id"],
            kind=data["kind"],
            payload=data["payload"],
            options=data.get("options", {}),
        )

    # -- cache-key material ---------------------------------------------

    def canonical_model_text(self) -> str:
        """The canonical AADL text of the instantiated model under test.

        Round-tripping through the parser/printer (``aadl`` jobs) or
        regenerating from the task list (``case`` jobs) erases
        formatting, comments and provenance, so two inputs that denote
        the same model share a cache key and any semantic change breaks
        it.  The inferred root is resolved here, making the key
        independent of whether the caller spelled it out.
        """
        if self.kind == "case":
            from repro.oracle.case import OracleCase

            return OracleCase.from_dict(self.payload["case"]).aadl_text()
        from repro.aadl import format_model, infer_root, parse_model

        model = parse_model(self.payload["source"])
        root = self.payload.get("root") or infer_root(model)
        header = f"-- root: {root}\n"
        if self.kind == "island":
            members = ",".join(sorted(self.payload.get("threads", ())))
            header += f"-- island: {members}\n"
        if self.kind == "hier":
            # Fold the derived (alpha, delta) interface of every
            # partition into the key: a server-parameter edit changes
            # the supply contract even though thread timing is intact.
            from repro.aadl import instantiate
            from repro.hier import derive_interfaces

            interfaces = derive_interfaces(instantiate(model, root))
            tokens = ";".join(
                interfaces[name].token for name in sorted(interfaces)
            )
            header += f"-- hier: {tokens}\n"
        if self.kind == "modal":
            # The protocol also lives in the options (and thus the
            # key); the header makes the canonical text self-describing
            # for humans inspecting cache entries.
            header += f"-- modal: protocol={self.options.get('protocol')}\n"
        return header + format_model(model)

    def __repr__(self) -> str:
        return f"AnalysisJob({self.job_id!r}, kind={self.kind})"


class JobResult:
    """Outcome of one executed (or cache-served) job.

    Plain JSON types throughout: this is both the pool's return channel
    and the verdict-cache storage format.
    """

    __slots__ = (
        "job_id",
        "kind",
        "verdict",
        "states",
        "elapsed",
        "limit_hit",
        "stats",
        "classification",
        "oracles",
        "rendered",
        "error",
        "cached",
        "deduped",
    )

    def __init__(
        self,
        *,
        job_id: str,
        kind: str,
        verdict: str,
        states: int = 0,
        elapsed: float = 0.0,
        limit_hit: Optional[str] = None,
        stats: Optional[Dict[str, Any]] = None,
        classification: Optional[Dict[str, Any]] = None,
        oracles: Optional[list] = None,
        rendered: Optional[str] = None,
        error: Optional[str] = None,
        cached: bool = False,
        deduped: bool = False,
    ) -> None:
        self.job_id = job_id
        self.kind = kind
        self.verdict = verdict
        self.states = states
        self.elapsed = elapsed
        self.limit_hit = limit_hit
        self.stats = stats
        self.classification = classification
        self.oracles = oracles
        self.rendered = rendered
        self.error = error
        self.cached = cached
        #: served from an identical job earlier in the same batch (the
        #: in-process analogue of a verdict-cache hit)
        self.deduped = deduped

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "verdict": self.verdict,
            "states": self.states,
            "elapsed": self.elapsed,
            "limit_hit": self.limit_hit,
            "stats": self.stats,
            "classification": self.classification,
            "oracles": self.oracles,
            "rendered": self.rendered,
            "error": self.error,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        return cls(
            job_id=data["job_id"],
            kind=data.get("kind", "aadl"),
            verdict=data.get("verdict", "error"),
            states=data.get("states", 0),
            elapsed=data.get("elapsed", 0.0),
            limit_hit=data.get("limit_hit"),
            stats=data.get("stats"),
            classification=data.get("classification"),
            oracles=data.get("oracles"),
            rendered=data.get("rendered"),
            error=data.get("error"),
            cached=data.get("cached", False),
        )

    def __repr__(self) -> str:
        extra = " cached" if self.cached else ""
        return f"JobResult({self.job_id!r}, {self.verdict}{extra})"


def execute_job(job: AnalysisJob) -> JobResult:
    """Run one job to completion in the current process.

    *Any* exception is captured as a ``verdict="error"`` result rather
    than raised, so neither a malformed model (:class:`ReproError`) nor
    an unexpected worker bug can abort a whole batch -- a crash
    propagating out of a pool worker would otherwise kill every sibling
    job.  Library errors keep their message; unexpected exceptions
    additionally preserve the full traceback string in ``error`` so the
    bug stays diagnosable from the report.  The report maps both to the
    usage-error exit code.
    """
    from repro.obs.tracer import current_tracer

    with current_tracer().span(
        "batch.job", job_id=job.job_id, kind=job.kind
    ) as span:
        try:
            fault = job.options.get("batch_fault")
            if fault:
                _apply_batch_fault(fault)
            if job.kind == "case":
                result = _execute_case(job)
            elif job.kind == "island":
                result = _execute_island(job)
            elif job.kind == "portfolio":
                result = _execute_portfolio(job)
            elif job.kind == "hier":
                result = _execute_hier(job)
            elif job.kind == "modal":
                result = _execute_modal(job)
            else:
                result = _execute_aadl(job)
        except ReproError as exc:
            span.set(verdict="error")
            return JobResult(
                job_id=job.job_id,
                kind=job.kind,
                verdict="error",
                error=str(exc),
            )
        except Exception as exc:
            import traceback

            span.set(verdict="error")
            return JobResult(
                job_id=job.job_id,
                kind=job.kind,
                verdict="error",
                error=(
                    f"unexpected {type(exc).__name__}: {exc}\n"
                    + traceback.format_exc()
                ),
            )
        span.set(verdict=result.verdict)
        return result


def _execute_aadl(job: AnalysisJob) -> JobResult:
    from repro.aadl import infer_root, instantiate, parse_model
    from repro.aadl.properties import TimeValue
    from repro.analysis import analyze_model

    model = parse_model(job.payload["source"])
    root = job.payload.get("root") or infer_root(model)
    quantum_us = job.options.get("quantum_us")
    mode = job.options.get("mode")
    result = analyze_model(
        instantiate(
            model,
            root,
            mode_overrides={root: mode} if mode else None,
        ),
        quantum=TimeValue(quantum_us, "us") if quantum_us else None,
        max_states=job.options.get("max_states", 1_000_000),
        reduction=job.options.get("reduce"),
    )
    stats = result.exploration.stats
    return JobResult(
        job_id=job.job_id,
        kind=job.kind,
        verdict=result.verdict.value,
        states=result.num_states,
        elapsed=result.elapsed,
        limit_hit=result.exploration.limit_hit,
        stats=stats.as_dict() if stats is not None else None,
        rendered=result.format(),
    )


def _execute_portfolio(job: AnalysisJob) -> JobResult:
    from repro.aadl import infer_root, instantiate, parse_model
    from repro.aadl.properties import TimeValue
    from repro.portfolio import PortfolioAnalyzer, analyze_portfolio
    from repro.portfolio.tiers import tiers_from_token

    model = parse_model(job.payload["source"])
    root = job.payload.get("root") or infer_root(model)
    quantum_us = job.options.get("quantum_us")
    mode = job.options.get("mode")
    analyzer = PortfolioAnalyzer(tiers_from_token(job.options.get("tiers")))
    result = analyze_portfolio(
        instantiate(
            model,
            root,
            mode_overrides={root: mode} if mode else None,
        ),
        quantum=TimeValue(quantum_us, "us") if quantum_us else None,
        max_states=job.options.get("max_states", 1_000_000),
        analyzer=analyzer,
        reduction=job.options.get("reduce"),
        steady_mode=bool(mode),
    )
    stats = result.exploration.stats
    return JobResult(
        job_id=job.job_id,
        kind=job.kind,
        verdict=result.verdict.value,
        states=result.num_states,
        elapsed=result.elapsed,
        limit_hit=result.exploration.limit_hit,
        stats=stats.as_dict() if stats is not None else None,
        rendered=result.format(),
    )


def _execute_island(job: AnalysisJob) -> JobResult:
    from repro.aadl import infer_root, instantiate, parse_model, slice_instance
    from repro.aadl.properties import TimeValue
    from repro.analysis import analyze_model
    from repro.errors import ComposeError
    from repro.obs.tracer import current_tracer

    model = parse_model(job.payload["source"])
    root = job.payload.get("root") or infer_root(model)
    mode = job.options.get("mode")
    instance = instantiate(
        model, root, mode_overrides={root: mode} if mode else None
    )
    wanted = set(job.payload["threads"]) | set(job.payload["processors"])
    keep = [
        inst for inst in instance.descendants()
        if inst.qualified_name in wanted
    ]
    found = {inst.qualified_name for inst in keep}
    missing = sorted(wanted - found)
    if missing:
        raise ComposeError(
            f"island {job.payload['label']!r} names components absent from "
            f"the instance: {', '.join(missing)}"
        )
    label = job.payload["label"]
    sliced = slice_instance(instance, keep, label=label)
    quantum_ps = job.options.get("quantum_ps")
    quantum = TimeValue(quantum_ps, "ps") if quantum_ps else None
    partitioned = any(
        thread.bound_processor is not None
        and thread.bound_processor is not thread.host_processor
        for thread in sliced.threads()
    )
    with current_tracer().span("compose.island", island=label) as span:
        if partitioned:
            # The ACSR translation has no server semantics; analyze the
            # partitioned island with the hierarchical (BDR) pipeline,
            # still pinned to the full model's quantum.
            from repro.hier import analyze_hier
            from repro.translate.quantum import TimingQuantizer

            result = analyze_hier(
                sliced,
                quantizer=(
                    TimingQuantizer(quantum) if quantum is not None else None
                ),
                steady_mode=bool(mode),
            )
        else:
            result = analyze_model(
                sliced,
                quantum=quantum,
                max_states=job.options.get("max_states", 1_000_000),
                reduction=job.options.get("reduce"),
            )
        span.set(verdict=result.verdict.value).incr(
            "states", result.num_states
        )
    stats = result.exploration.stats
    return JobResult(
        job_id=job.job_id,
        kind=job.kind,
        verdict=result.verdict.value,
        states=result.num_states,
        elapsed=result.elapsed,
        limit_hit=result.exploration.limit_hit,
        stats=stats.as_dict() if stats is not None else None,
        rendered=result.format(),
    )


def _execute_hier(job: AnalysisJob) -> JobResult:
    from repro.aadl import infer_root, instantiate, parse_model
    from repro.aadl.properties import TimeValue
    from repro.hier import DEFAULT_MAX_WINDOW, analyze_hier
    from repro.translate.quantum import TimingQuantizer

    model = parse_model(job.payload["source"])
    root = job.payload.get("root") or infer_root(model)
    quantum_us = job.options.get("quantum_us")
    result = analyze_hier(
        instantiate(model, root),
        quantizer=(
            TimingQuantizer(TimeValue(quantum_us, "us"))
            if quantum_us
            else None
        ),
        max_window=job.options.get("max_window", DEFAULT_MAX_WINDOW),
        fault=job.options.get("hier_fault"),
    )
    stats = result.exploration.stats
    return JobResult(
        job_id=job.job_id,
        kind=job.kind,
        verdict=result.verdict.value,
        states=result.num_states,
        elapsed=result.elapsed,
        limit_hit=result.exploration.limit_hit,
        stats=stats.as_dict() if stats is not None else None,
        rendered=result.format(),
    )


def _execute_modal(job: AnalysisJob) -> JobResult:
    from repro.aadl import infer_root, parse_model
    from repro.aadl.properties import TimeValue
    from repro.modal import analyze_modal
    from repro.modal.transient import (
        DEFAULT_MAX_PHASINGS,
        DEFAULT_TRANSIENT_WINDOW,
    )

    model = parse_model(job.payload["source"])
    root = job.payload.get("root") or infer_root(model)
    quantum_us = job.options.get("quantum_us")
    result = analyze_modal(
        model,
        root,
        protocol=job.options.get("protocol", "synchronous"),
        quantum=TimeValue(quantum_us, "us") if quantum_us else None,
        max_states=job.options.get("max_states", 1_000_000),
        portfolio=bool(job.options.get("portfolio")),
        tiers=job.options.get("tiers"),
        reduction=job.options.get("reduce"),
        max_phasings=job.options.get("max_phasings", DEFAULT_MAX_PHASINGS),
        max_window=job.options.get("max_window", DEFAULT_TRANSIENT_WINDOW),
        fault=job.options.get("modal_fault"),
    )
    stats = result.stats
    return JobResult(
        job_id=job.job_id,
        kind=job.kind,
        verdict=result.verdict.value,
        states=result.num_states,
        elapsed=result.elapsed,
        stats=stats.as_dict() if stats is not None else None,
        rendered=result.format(),
    )


def _execute_case(job: AnalysisJob) -> JobResult:
    from repro.oracle.case import OracleCase
    from repro.oracle.faults import get_fault
    from repro.oracle.verdicts import evaluate_case

    case = OracleCase.from_dict(job.payload["case"])
    fault = job.options.get("fault")
    pipeline, oracles, classification = evaluate_case(
        case,
        max_states=job.options.get("max_states", 300_000),
        fault=get_fault(fault) if fault else None,
    )
    stats = pipeline.exploration.stats
    return JobResult(
        job_id=job.job_id,
        kind=job.kind,
        verdict=pipeline.verdict.value,
        states=pipeline.num_states,
        elapsed=pipeline.elapsed,
        limit_hit=pipeline.exploration.limit_hit,
        stats=stats.as_dict() if stats is not None else None,
        classification=classification.to_dict(),
        oracles=[oracle.to_dict() for oracle in oracles],
    )
