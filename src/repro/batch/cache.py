"""The persistent, content-addressed verdict cache.

Model-checking verdicts are pure functions of (model, analysis
options), so repeated campaigns -- the nightly 500-seed oracle run, a
re-executed benchmark suite, a workload sweep with one tweaked point --
keep re-proving identical cases.  The cache stores each proven verdict
on disk under a content hash, and :func:`repro.batch.run_batch` serves
hits without spawning a worker.

Key definition
--------------

``cache_key(job)`` is the SHA-256 of a canonical JSON document::

    {"schema": CACHE_SCHEMA_VERSION,
     "kind":   "aadl" | "case",
     "model":  <canonical AADL text of the instantiated model>,
     "options": {<sorted, semantic analysis options>}}

The model half comes from
:meth:`~repro.batch.jobs.AnalysisJob.canonical_model_text`: AADL
sources are round-tripped through the parser/printer (formatting and
comments cannot split the key) and oracle cases regenerate their AADL
from the task list (provenance -- generator name, seed, case id --
cannot split it either).  The options half holds exactly the knobs
that can change a verdict: state budget, quantum, injected fault.

Invalidation rules
------------------

* Any semantic change to the analysis pipeline (translation, semantics,
  verdict logic) MUST bump :data:`CACHE_SCHEMA_VERSION`; the version is
  hashed into every key, so old entries become unreachable rather than
  wrong.
* Entries whose stored schema version differs are treated as misses
  and may be overwritten.
* ``artifacts/cache/`` is always safe to delete (``repro batch cache
  --clear``); the cache holds no primary data.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Iterator, Optional

from repro.errors import BatchError

#: Bump on ANY change that can alter a verdict for the same model text
#: and options (translation rules, ACSR semantics, verdict mapping...).
CACHE_SCHEMA_VERSION = 1

#: Default on-disk location for cached verdicts.
DEFAULT_CACHE_DIR = os.path.join("artifacts", "cache")


def cache_key(job) -> str:
    """Content hash of one :class:`~repro.batch.jobs.AnalysisJob`."""
    material = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": job.kind,
        "model": job.canonical_model_text(),
        "options": {key: job.options[key] for key in sorted(job.options)},
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class VerdictCache:
    """Directory of ``<key[:2]>/<key>.json`` verdict entries.

    Lookups count into :attr:`hits` / :attr:`misses`, which the batch
    layer folds into the aggregate
    :class:`~repro.engine.stats.EngineStats` (the ``verdict cache:``
    line of ``--stats`` output).  Writes are atomic (temp file +
    rename), so concurrent campaigns sharing a cache directory can
    race without corrupting entries.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result payload for ``key``, or None (counted)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        if entry.get("schema_version") != CACHE_SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("result")

    def put(self, key: str, result: Dict[str, Any], **meta: Any) -> str:
        """Store ``result`` (a JSON-typed dict) under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "result": result,
            **meta,
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def entries(self) -> Iterator[str]:
        """Paths of every stored entry."""
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        return sum(os.path.getsize(path) for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            os.unlink(path)
            removed += 1
        return removed

    def __repr__(self) -> str:
        return (
            f"VerdictCache({self.directory!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def resolve_cache(spec) -> Optional[VerdictCache]:
    """Normalize a cache spec: a :class:`VerdictCache`, a directory
    path, True (default directory), or None/False (disabled)."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return VerdictCache()
    if isinstance(spec, VerdictCache):
        return spec
    if isinstance(spec, str):
        return VerdictCache(spec)
    raise BatchError(f"not a cache spec: {spec!r}")
