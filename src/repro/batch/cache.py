"""The persistent, content-addressed verdict cache.

Model-checking verdicts are pure functions of (model, analysis
options), so repeated campaigns -- the nightly 500-seed oracle run, a
re-executed benchmark suite, a workload sweep with one tweaked point --
keep re-proving identical cases.  The cache stores each proven verdict
on disk under a content hash, and :func:`repro.batch.run_batch` serves
hits without spawning a worker.

Key definition
--------------

``cache_key(job)`` is the SHA-256 of a canonical JSON document::

    {"schema": CACHE_SCHEMA_VERSION,
     "kind":   "aadl" | "case",
     "model":  <canonical AADL text of the instantiated model>,
     "options": {<sorted, semantic analysis options>}}

The model half comes from
:meth:`~repro.batch.jobs.AnalysisJob.canonical_model_text`: AADL
sources are round-tripped through the parser/printer (formatting and
comments cannot split the key) and oracle cases regenerate their AADL
from the task list (provenance -- generator name, seed, case id --
cannot split it either).  The options half holds exactly the knobs
that can change a verdict: state budget, quantum, injected fault.

Invalidation rules
------------------

* Any semantic change to the analysis pipeline (translation, semantics,
  verdict logic) MUST bump :data:`CACHE_SCHEMA_VERSION`; the version is
  hashed into every key, so old entries become unreachable rather than
  wrong.
* Entries whose stored schema version differs are treated as misses
  and may be overwritten.
* ``artifacts/cache/`` is always safe to delete (``repro batch cache
  --clear``); the cache holds no primary data.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import BatchError

logger = logging.getLogger(__name__)

#: Bump on ANY change that can alter a verdict for the same model text
#: and options (translation rules, ACSR semantics, verdict mapping...).
CACHE_SCHEMA_VERSION = 1

#: Default on-disk location for cached verdicts.
DEFAULT_CACHE_DIR = os.path.join("artifacts", "cache")


def cache_key(job) -> str:
    """Content hash of one :class:`~repro.batch.jobs.AnalysisJob`."""
    material = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": job.kind,
        "model": job.canonical_model_text(),
        "options": {key: job.options[key] for key in sorted(job.options)},
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class VerdictCache:
    """Directory of ``<key[:2]>/<key>.json`` verdict entries.

    Lookups count into :attr:`hits` / :attr:`misses`, which the batch
    layer folds into the aggregate
    :class:`~repro.engine.stats.EngineStats` (the ``verdict cache:``
    line of ``--stats`` output).

    The store is safe to share:

    * **across processes** -- writes are atomic (temp file + rename)
      and reads treat *any* unreadable or ill-formed entry as a counted
      miss, so concurrent campaigns racing on one directory can at
      worst re-prove a verdict, never crash or read half an entry;
    * **across threads** -- counters and the eviction sweep take a
      lock, which is what lets :mod:`repro.serve` hang one shared
      instance off its event loop and worker threads;
    * **against a broken filesystem** -- a read-only or vanished cache
      directory degrades the store to a no-op (:meth:`put` logs and
      returns None; the computed verdict is still returned to the
      caller), because a cache must accelerate runs, not abort them.

    Eviction: with ``max_entries`` and/or ``max_bytes`` set, every
    write triggers an LRU sweep (:meth:`evict`).  Recency is the entry
    file's mtime, refreshed on every hit, so cooperating processes
    agree on the order with no coordination beyond the filesystem.
    """

    def __init__(
        self,
        directory: str = DEFAULT_CACHE_DIR,
        *,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = directory
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_errors = 0
        self._lock = threading.Lock()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def _miss(self) -> None:
        with self._lock:
            self.misses += 1

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result payload for ``key``, or None (counted).

        Every failure mode of an entry -- absent, unreadable
        (permission denied, entry is a directory, I/O error), corrupt
        JSON, wrong schema version, wrong shape -- is a miss, never an
        exception: a damaged cache entry must cost a re-proof, not the
        run.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            # OSError covers FileNotFoundError, PermissionError,
            # IsADirectoryError...; ValueError covers JSONDecodeError
            # and stray UnicodeDecodeError-adjacent corruption.
            self._miss()
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema_version") != CACHE_SCHEMA_VERSION
            or not isinstance(entry.get("result"), dict)
        ):
            self._miss()
            return None
        with self._lock:
            self.hits += 1
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return entry["result"]

    def put(
        self, key: str, result: Dict[str, Any], **meta: Any
    ) -> Optional[str]:
        """Store ``result`` (a JSON-typed dict) under ``key``.

        Returns the entry path, or None when the cache directory is
        unwritable (read-only mount, quota, parent replaced by a
        file...): the failure is logged and counted in
        :attr:`write_errors`, and the caller's verdict is unaffected.
        """
        path = self._path(key)
        entry = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "result": result,
            **meta,
        }
        blob = json.dumps(entry, indent=2, sort_keys=True)
        tmp: Optional[str] = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
                handle.write("\n")
            os.replace(tmp, path)
        except OSError as exc:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            with self._lock:
                self.write_errors += 1
            logger.warning("verdict-cache write failed for %s: %s", path, exc)
            return None
        if self.max_entries is not None or self.max_bytes is not None:
            self.evict()
        return path

    def evict(self) -> int:
        """Trim the store to the configured caps, least-recently-used
        entries first; returns how many entries were removed.  A no-op
        when neither cap is set."""
        if self.max_entries is None and self.max_bytes is None:
            return 0
        with self._lock:
            stamped: List[Tuple[float, int, str]] = []
            for path in self.entries():
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # concurrently evicted or unreadable
                stamped.append((stat.st_mtime, stat.st_size, path))
            stamped.sort(reverse=True)  # newest (most recently used) first
            kept_entries = 0
            kept_bytes = 0
            removed = 0
            for mtime, size, path in stamped:
                kept_entries += 1
                kept_bytes += size
                over = (
                    self.max_entries is not None
                    and kept_entries > self.max_entries
                ) or (
                    self.max_bytes is not None and kept_bytes > self.max_bytes
                )
                if over:
                    try:
                        os.unlink(path)
                    except OSError:
                        continue
                    kept_entries -= 1
                    kept_bytes -= size
                    removed += 1
            self.evictions += removed
            return removed

    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Counters plus on-disk footprint, for metrics endpoints."""
        return {
            "directory": self.directory,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate(), 4),
            "evictions": self.evictions,
            "write_errors": self.write_errors,
            "entries": len(self),
            "bytes": self.size_bytes(),
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }

    def entries(self) -> Iterator[str]:
        """Paths of every stored entry."""
        try:
            shards = sorted(os.listdir(self.directory))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.directory, shard)
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue  # shard vanished or is not a directory
            for name in names:
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass  # entry evicted between listing and stat
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                os.unlink(path)
            except FileNotFoundError:
                continue
            removed += 1
        return removed

    def __repr__(self) -> str:
        return (
            f"VerdictCache({self.directory!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def resolve_cache(spec) -> Optional[VerdictCache]:
    """Normalize a cache spec: a :class:`VerdictCache`, a directory
    path, True (default directory), or None/False (disabled)."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return VerdictCache()
    if isinstance(spec, VerdictCache):
        return spec
    if isinstance(spec, str):
        return VerdictCache(spec)
    raise BatchError(f"not a cache spec: {spec!r}")
