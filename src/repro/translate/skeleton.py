"""Thread skeleton: AwaitDispatch / Compute / Finish (paper Figures 4-5).

For the completely-bound single-mode case the thread semantic automaton
collapses to three generated process definitions per thread ``t``:

``AD$t`` (AwaitDispatch)
    waits (idling) for the ``dispatch$t`` event from the dispatcher, then
    enters Compute with ``(e, s) = (0, 0)``.

``C$t(e, s)`` (Compute, Figure 5)
    ``e`` counts accumulated execution quanta, ``s`` elapsed quanta since
    dispatch.  Branches:

    * *non-final compute step* ``[e < cmax-1 and s < D]`` -- uses the cpu
      (at the policy priority, possibly parametric in ``(e, s)``) plus the
      access-connection resources R;
    * *final compute step* ``[cmin-1 <= e < cmax and s < D]`` -- like the
      above but additionally claims the bus resources of bus-mapped
      outgoing connections ("output on a data connection is produced as
      the thread completes its dispatch; thus the last computation step
      uses both cpu and bus", S4.2), then moves to Finish;
    * *preempted steps* ``[s < D]`` -- Figure 5's Preempted state: before
      the first compute quantum (``e == 0``) the thread holds nothing; once
      it has started executing (``e > 0``) it holds R across preemption --
      its whole remaining execution is a critical section on its shared
      data, which is what makes priority inversion (and the
      priority-ceiling remedy, S5) expressible;
    * optional *anytime event* self-loops ``(q$c!, 0)`` for outgoing event
      connections translated with the ANYTIME pattern (S4.4).

    When ``s`` reaches the deadline ``D`` the process has no step left:
    the skeleton itself realizes Figure 4's computeDeadline timeout into
    the Violation deadlock.

``F$t`` (Finish)
    emits the at-completion events -- one ``(q$c!, 0)`` per outgoing
    event/event-data connection (the default data-event treatment of
    S4.4) and any latency-observer events -- then signals ``(done$t!, 0)``
    to the dispatcher and returns to AwaitDispatch.  Event priorities are
    0 on purpose: completion is *enabled*, not urgent, but because the
    Finish state offers no timed step, global time cannot pass until the
    handshake happens -- completion is therefore never delayed, yet a
    pending completion never preempts another thread's computation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.acsr.definitions import ProcessEnv
from repro.acsr.expressions import var
from repro.acsr.resources import EMPTY_ACTION as EMPTY, make_action
from repro.acsr.terms import (
    ActionPrefix,
    Term,
    choice,
    guard,
    idle,
    proc,
    recv,
    send,
)
from repro.translate.names import NameTable, Names
from repro.translate.priorities import CpuPriority
from repro.translate.quantum import QuantizedTiming


def build_skeleton(
    env: ProcessEnv,
    table: NameTable,
    thread_qual: str,
    timing: QuantizedTiming,
    *,
    cpu_resource: str,
    cpu_priority: CpuPriority,
    final_step_resources: Sequence[str] = (),
    held_resources: Sequence[str] = (),
    completion_events: Sequence[str] = (),
    anytime_events: Sequence[str] = (),
) -> str:
    """Generate AD/C/F definitions for one thread; returns the AD name.

    Args:
        final_step_resources: bus resources claimed only by the final
            compute step (bus-mapped outgoing connections).
        held_resources: the set R of Figure 5, held on every compute and
            preempted step (access connections; empty by default as in
            the paper's presentation).
        completion_events: enqueue-event names sent, in order, at
            completion (before ``done``).
        anytime_events: enqueue-event names offered as Compute self-loops.
    """
    ad_name = table.record(
        Names.await_dispatch(thread_qual), "await", thread_qual
    )
    c_name = table.record(Names.compute(thread_qual), "compute", thread_qual)
    f_name = table.record(Names.finish(thread_qual), "finish", thread_qual)
    dispatch_evt = table.record(
        Names.dispatch(thread_qual), "dispatch", thread_qual
    )
    done_evt = table.record(Names.done(thread_qual), "done", thread_qual)

    e, s = var("e"), var("s")
    pi = cpu_priority.expr(e, s)
    cmin, cmax, deadline = timing.cmin, timing.cmax, timing.deadline

    held = list(held_resources)
    compute_action = make_action(
        [(cpu_resource, pi)] + [(r, 1) for r in held]
    )
    final_action = make_action(
        [(cpu_resource, pi)]
        + [(r, 1) for r in held]
        + [(r, 1) for r in final_step_resources if r not in held]
    )
    preempted_action = make_action([(r, 1) for r in held])

    branches: List[Term] = []
    if cmax > 1:
        branches.append(
            guard(
                (e < cmax - 1) & (s < deadline),
                ActionPrefix(compute_action, proc(c_name, e + 1, s + 1)),
            )
        )
    branches.append(
        guard(
            (e >= cmin - 1) & (e < cmax) & (s < deadline),
            ActionPrefix(final_action, proc(f_name)),
        )
    )
    if held:
        # Waiting before acquisition holds nothing; after the first
        # compute quantum the thread retains R across preemption.
        branches.append(
            guard(
                e.eq(0) & (s < deadline),
                ActionPrefix(EMPTY, proc(c_name, e, s + 1)),
            )
        )
        branches.append(
            guard(
                (e > 0) & (s < deadline),
                ActionPrefix(preempted_action, proc(c_name, e, s + 1)),
            )
        )
    else:
        branches.append(
            guard(
                s < deadline,
                ActionPrefix(preempted_action, proc(c_name, e, s + 1)),
            )
        )
    for event in anytime_events:
        branches.append(
            guard(s < deadline, send(event, 0) >> proc(c_name, e, s))
        )
    env.define(c_name, ("e", "s"), choice(*branches))

    finish: Term = send(done_evt, 0) >> proc(ad_name)
    for event in reversed(list(completion_events)):
        finish = send(event, 0).then(finish)
    env.define(f_name, (), finish)

    env.define(
        ad_name,
        (),
        choice(
            recv(dispatch_evt, 1).then(proc(c_name, 0, 0)),
            idle().then(proc(ad_name)),
        ),
    )
    return ad_name
