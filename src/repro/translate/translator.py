"""Algorithm 1: driving the AADL -> ACSR translation.

For every processor ``p`` in the model and every thread ``t`` bound to
``p``: generate the skeleton ``S_t``, generate the dispatcher ``D_t`` for
``t``'s incoming connections, populate ``S_t`` with output events ``e!``
and bus resources for its outgoing connections, and generate a queue
process for each incoming event connection -- then compose everything in
parallel under a restriction of all generated event names.

Extensions beyond the paper's presentation (each documented in
DESIGN.md):

* **Device event sources.**  A connection whose ultimate source is a
  device gets a stub process that may raise the event at any time --
  modeling the environment nondeterministically, which is what makes
  sporadic/aperiodic threads driven from outside the software analyzable.
* **Access connections.**  ``requires data access`` features become
  resources held on every compute and preempted step (the set R of
  Figure 5).
* **Latency observers** (paper S5): optional observer processes that
  deadlock when a source-completion -> destination-completion flow takes
  longer than its bound.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TranslationError
from repro.acsr.definitions import ClosedSystem, ProcessEnv
from repro.acsr.expressions import var
from repro.acsr.terms import Term, choice, guard, idle, parallel, proc, recv, restrict, send
from repro.aadl.components import ComponentCategory
from repro.aadl.features import AccessCategory, AccessFeature, AccessKind
from repro.aadl.instance import (
    ComponentInstance,
    ConnectionInstance,
    SystemInstance,
)
from repro.aadl.properties import (
    DISPATCH_PROTOCOL,
    OVERFLOW_HANDLING_PROTOCOL,
    QUEUE_SIZE,
    SCHEDULING_PROTOCOL,
    URGENCY,
    DispatchProtocol,
    OverflowHandlingProtocol,
    SchedulingProtocol,
    TimeValue,
)
from repro.aadl.validation import check_translation_assumptions
from repro.translate.dispatchers import build_dispatcher
from repro.translate.names import NameTable, Names, sanitize
from repro.translate.priorities import CpuPriority, priority_assignment
from repro.translate.quantum import QuantizedTiming, TimingQuantizer
from repro.translate.queues import build_queue
from repro.translate.skeleton import build_skeleton


class EventSendPattern(enum.Enum):
    """When a thread raises events on an outgoing connection (S4.4)."""

    AT_COMPLETION = "at_completion"
    ANYTIME = "anytime"


class LatencyFlow:
    """A source-completion -> destination-completion latency requirement."""

    __slots__ = ("flow_id", "source_qual", "destination_qual", "bound")

    def __init__(
        self,
        flow_id: str,
        source_qual: str,
        destination_qual: str,
        bound: TimeValue,
    ) -> None:
        self.flow_id = flow_id
        self.source_qual = source_qual
        self.destination_qual = destination_qual
        self.bound = bound

    def __repr__(self) -> str:
        return (
            f"LatencyFlow({self.flow_id!r}, {self.source_qual} -> "
            f"{self.destination_qual}, bound={self.bound})"
        )


class TranslationOptions:
    """Knobs of the translation.

    Args:
        quantum: scheduling quantum; default is the GCD of all durations
            (exact quantization).
        default_event_pattern: how outgoing event connections raise
            events; ``AT_COMPLETION`` is the paper's default.
        pattern_overrides: per-connection (qualified name) pattern.
        latency_flows: observer specifications (see
            :mod:`repro.analysis.latency`).
        validate: run the S4.1 legality checks first.
        use_priority_ceiling: boost the cpu priority of threads holding
            shared data resources to the resource ceiling (highest-locker
            protocol), bounding priority inversion.
    """

    def __init__(
        self,
        *,
        quantum: Optional[TimeValue] = None,
        default_event_pattern: EventSendPattern = (
            EventSendPattern.AT_COMPLETION
        ),
        pattern_overrides: Optional[Mapping[str, EventSendPattern]] = None,
        latency_flows: Sequence[LatencyFlow] = (),
        validate: bool = True,
        use_priority_ceiling: bool = False,
    ) -> None:
        self.quantum = quantum
        self.default_event_pattern = default_event_pattern
        self.pattern_overrides = dict(pattern_overrides or {})
        self.latency_flows = list(latency_flows)
        self.validate = validate
        #: Highest-locker emulation for shared data (S5's remark that the
        #: priority-inheritance family has ACSR encodings): a thread
        #: holding data resources computes at the ceiling of those
        #: resources.  Requires a fixed-priority scheduling protocol on
        #: every processor with sharing threads.
        self.use_priority_ceiling = use_priority_ceiling


class ThreadTranslation:
    """Bookkeeping for one translated thread."""

    __slots__ = (
        "qual",
        "protocol",
        "timing",
        "processor_qual",
        "priority",
        "skeleton_name",
        "dispatcher_name",
    )

    def __init__(
        self,
        qual: str,
        protocol: DispatchProtocol,
        timing: QuantizedTiming,
        processor_qual: str,
        priority: CpuPriority,
        skeleton_name: str,
        dispatcher_name: str,
    ) -> None:
        self.qual = qual
        self.protocol = protocol
        self.timing = timing
        self.processor_qual = processor_qual
        self.priority = priority
        self.skeleton_name = skeleton_name
        self.dispatcher_name = dispatcher_name

    def __repr__(self) -> str:
        return f"ThreadTranslation({self.qual!r}, {self.protocol.value})"


class QueueTranslation:
    """Bookkeeping for one translated connection queue."""

    __slots__ = ("conn_qual", "queue_name", "size", "overflow", "urgency")

    def __init__(
        self,
        conn_qual: str,
        queue_name: str,
        size: int,
        overflow: OverflowHandlingProtocol,
        urgency: int,
    ) -> None:
        self.conn_qual = conn_qual
        self.queue_name = queue_name
        self.size = size
        self.overflow = overflow
        self.urgency = urgency

    def __repr__(self) -> str:
        return f"QueueTranslation({self.conn_qual!r}, size={self.size})"


class TranslationResult:
    """The translated system plus everything needed to raise traces."""

    def __init__(
        self,
        system: ClosedSystem,
        names: NameTable,
        quantizer: TimingQuantizer,
        threads: Dict[str, ThreadTranslation],
        queues: Dict[str, QueueTranslation],
        restricted_events: frozenset,
        instance: SystemInstance,
        options: TranslationOptions,
    ) -> None:
        self.system = system
        self.names = names
        self.quantizer = quantizer
        self.threads = threads
        self.queues = queues
        self.restricted_events = restricted_events
        self.instance = instance
        self.options = options

    @property
    def env(self) -> ProcessEnv:
        return self.system.env

    @property
    def root(self) -> Term:
        return self.system.root

    @property
    def num_thread_processes(self) -> int:
        return len(self.threads)

    @property
    def num_dispatchers(self) -> int:
        return len(self.threads)

    @property
    def num_queue_processes(self) -> int:
        return len(self.queues)

    def __repr__(self) -> str:
        return (
            f"TranslationResult(threads={self.num_thread_processes}, "
            f"dispatchers={self.num_dispatchers}, "
            f"queues={self.num_queue_processes})"
        )


def group_threads_by_processor(
    instance: SystemInstance,
) -> Dict[ComponentInstance, List[ComponentInstance]]:
    """Map every bound processor to its threads (Algorithm 1's outer loop).

    Raises one :class:`~repro.errors.TranslationError` listing *every*
    unbound thread, so a modeler fixing bindings sees the whole job at
    once instead of one thread per run.  Shared with
    :mod:`repro.compose`, whose coupling graph partitions the same
    grouping into islands.
    """
    by_processor: Dict[ComponentInstance, List[ComponentInstance]] = {}
    unbound: List[str] = []
    partitioned: List[str] = []
    for thread in instance.threads():
        if thread.bound_processor is None:
            unbound.append(thread.qualified_name)
            continue
        if thread.bound_processor is not thread.host_processor:
            partitioned.append(thread.qualified_name)
            continue
        by_processor.setdefault(thread.bound_processor, []).append(thread)
    if unbound:
        noun = "thread is" if len(unbound) == 1 else "threads are"
        raise TranslationError(
            f"{len(unbound)} {noun} not bound to a processor: "
            + ", ".join(sorted(unbound))
        )
    if partitioned:
        # Flattening a virtual processor into a full one would grant the
        # partition supply its server never delivers -- an unsound
        # SCHEDULABLE is one bad binding away.  Refuse loudly instead.
        noun = "thread is" if len(partitioned) == 1 else "threads are"
        raise TranslationError(
            f"{len(partitioned)} {noun} bound to a virtual processor: "
            + ", ".join(sorted(partitioned))
            + "; the ACSR translation has no server semantics -- use the "
            "hierarchical analysis (analyze --hier)"
        )
    return by_processor


def group_threads_by_host(
    instance: SystemInstance,
) -> Dict[ComponentInstance, List[ComponentInstance]]:
    """Map every *physical* processor to the threads that ultimately
    execute on it, resolving virtual-processor bindings through
    ``host_processor``.  Unlike :func:`group_threads_by_processor` this
    accepts partitioned models -- it is the grouping the compositional
    coupling graph wants, where a partition shares its host's island.
    Raises on threads with no resolvable host."""
    by_host: Dict[ComponentInstance, List[ComponentInstance]] = {}
    unbound: List[str] = []
    for thread in instance.threads():
        host = thread.host_processor
        if host is None:
            unbound.append(thread.qualified_name)
            continue
        by_host.setdefault(host, []).append(thread)
    if unbound:
        noun = "thread is" if len(unbound) == 1 else "threads are"
        raise TranslationError(
            f"{len(unbound)} {noun} not bound to a processor: "
            + ", ".join(sorted(unbound))
        )
    return by_host


def translate(
    instance: SystemInstance,
    options: Optional[TranslationOptions] = None,
) -> TranslationResult:
    """Translate a bound AADL system instance into a closed ACSR system."""
    from repro.obs.tracer import current_tracer

    with current_tracer().span(
        "translate", root=instance.qualified_name
    ) as span:
        result = _translate(instance, options)
        span.set(
            threads=result.num_thread_processes,
            dispatchers=result.num_dispatchers,
            queues=result.num_queue_processes,
            quantum=str(result.quantizer.quantum),
        )
    return result


def _translate(
    instance: SystemInstance,
    options: Optional[TranslationOptions] = None,
) -> TranslationResult:
    options = options or TranslationOptions()
    if options.validate:
        check_translation_assumptions(instance)

    quantizer = (
        TimingQuantizer(options.quantum)
        if options.quantum is not None
        else TimingQuantizer.natural(instance)
    )
    env = ProcessEnv()
    table = NameTable()
    initial_refs: List[Term] = []
    restricted: set = set()
    threads_out: Dict[str, ThreadTranslation] = {}
    queues_out: Dict[str, QueueTranslation] = {}

    # Group threads by bound processor (Algorithm 1's outer loops);
    # raises one error naming every unbound thread.
    by_processor = group_threads_by_processor(instance)

    timings: Dict[str, QuantizedTiming] = {}
    priorities: Dict[str, CpuPriority] = {}
    for processor, bound in sorted(
        by_processor.items(), key=lambda kv: kv[0].qualified_name
    ):
        protocol = processor.property(SCHEDULING_PROTOCOL)
        if not isinstance(protocol, SchedulingProtocol):
            raise TranslationError(
                f"processor {processor.qualified_name}: missing or invalid "
                f"Scheduling_Protocol"
            )
        with_timing = [
            (thread, quantizer.thread_timing(thread)) for thread in bound
        ]
        for thread, timing in with_timing:
            timings[thread.qualified_name] = timing
        priorities.update(priority_assignment(protocol, with_timing))

    # Queued connections (thread or device source -> event-dispatched thread).
    queue_conns = [
        conn for conn in instance.connections if _needs_queue(conn)
    ]
    # Flow observers: map thread qual -> list of events its Finish state
    # must additionally emit.
    extra_finish_events: Dict[str, List[str]] = {}
    for flow in options.latency_flows:
        start_evt = table.record(
            Names.obs_start(flow.flow_id), "obs_start", flow.flow_id
        )
        end_evt = table.record(
            Names.obs_end(flow.flow_id), "obs_end", flow.flow_id
        )
        extra_finish_events.setdefault(flow.source_qual, []).append(start_evt)
        extra_finish_events.setdefault(flow.destination_qual, []).append(
            end_evt
        )

    # Pre-pass: held (access) resources per thread, and -- when requested
    # -- the highest-locker priority boost.
    held_map: Dict[str, List[str]] = {}
    for processor, bound in sorted(
        by_processor.items(), key=lambda kv: kv[0].qualified_name
    ):
        for thread in sorted(bound, key=lambda t: t.qualified_name):
            held_map[thread.qualified_name] = _access_resources(
                table, instance, thread
            )
    if options.use_priority_ceiling:
        _apply_priority_ceiling(priorities, held_map)

    # Per-thread skeletons and dispatchers (Algorithm 1's inner loop).
    for processor, bound in sorted(
        by_processor.items(), key=lambda kv: kv[0].qualified_name
    ):
        cpu_resource = table.record(
            Names.cpu(processor.qualified_name),
            "cpu",
            processor.qualified_name,
        )
        for thread in sorted(bound, key=lambda t: t.qualified_name):
            qual = thread.qualified_name
            timing = timings[qual]
            protocol = thread.property(DISPATCH_PROTOCOL)
            assert isinstance(protocol, DispatchProtocol)

            outgoing = instance.connections_from(thread)
            final_resources = _bus_resources(table, outgoing)
            completion_events: List[str] = []
            anytime_events: List[str] = []
            for conn in outgoing:
                if conn not in queue_conns:
                    continue
                enqueue = Names.enqueue(conn.qualified_name)
                pattern = options.pattern_overrides.get(
                    conn.qualified_name, options.default_event_pattern
                )
                if pattern is EventSendPattern.ANYTIME:
                    anytime_events.append(enqueue)
                else:
                    completion_events.append(enqueue)
            completion_events.extend(extra_finish_events.get(qual, ()))

            skeleton_name = build_skeleton(
                env,
                table,
                qual,
                timing,
                cpu_resource=cpu_resource,
                cpu_priority=priorities[qual],
                final_step_resources=final_resources,
                held_resources=held_map[qual],
                completion_events=completion_events,
                anytime_events=anytime_events,
            )
            dequeues = [
                (
                    Names.dequeue(conn.qualified_name),
                    _urgency(conn),
                )
                for conn in instance.connections_to(thread)
                if conn in queue_conns
            ]
            dispatcher_name, dispatcher_init = build_dispatcher(
                env, table, qual, protocol, timing, dequeues=dequeues
            )
            threads_out[qual] = ThreadTranslation(
                qual,
                protocol,
                timing,
                processor.qualified_name,
                priorities[qual],
                skeleton_name,
                dispatcher_name,
            )
            initial_refs.append(proc(skeleton_name))
            initial_refs.append(dispatcher_init)
            restricted.add(Names.dispatch(qual))
            restricted.add(Names.done(qual))

    # Queue processes and device event sources.
    for conn in queue_conns:
        conn_qual = conn.qualified_name
        size = _queue_size(conn)
        overflow = _overflow(conn)
        urgency = _urgency(conn)
        queue_name = build_queue(
            env,
            table,
            conn_qual,
            size=size,
            overflow=overflow,
            urgency=urgency,
        )
        queues_out[conn_qual] = QueueTranslation(
            conn_qual, queue_name, size, overflow, urgency
        )
        initial_refs.append(proc(queue_name, 0))
        restricted.add(Names.enqueue(conn_qual))
        restricted.add(Names.dequeue(conn_qual))
        if conn.source.component.category is ComponentCategory.DEVICE:
            initial_refs.append(
                _device_source(env, table, conn)
            )

    # Latency observers.
    for flow in options.latency_flows:
        initial_refs.append(_observer(env, table, flow, quantizer))
        restricted.add(Names.obs_start(flow.flow_id))
        restricted.add(Names.obs_end(flow.flow_id))

    root = restrict(parallel(*initial_refs), restricted)
    system = env.close(root)
    return TranslationResult(
        system,
        table,
        quantizer,
        threads_out,
        queues_out,
        frozenset(restricted),
        instance,
        options,
    )


# ---------------------------------------------------------------------------
# Connection helpers
# ---------------------------------------------------------------------------


def _needs_queue(conn: ConnectionInstance) -> bool:
    """Queues are generated for event / event-data connections whose
    destination thread is event-dispatched (periodic threads ignore
    external events, paper S2)."""
    if not conn.kind.is_queued:
        return False
    dest = conn.destination.component
    if dest.category is not ComponentCategory.THREAD:
        return False
    protocol = dest.property(DISPATCH_PROTOCOL)
    return (
        isinstance(protocol, DispatchProtocol)
        and protocol is not DispatchProtocol.PERIODIC
    )


def _queue_size(conn: ConnectionInstance) -> int:
    value = conn.destination_port_property(QUEUE_SIZE)
    if value is None:
        return 1
    if isinstance(value, int) and not isinstance(value, bool) and value >= 1:
        return value
    raise TranslationError(
        f"connection {conn.qualified_name}: invalid Queue_Size {value!r}"
    )


def _overflow(conn: ConnectionInstance) -> OverflowHandlingProtocol:
    value = conn.destination_port_property(OVERFLOW_HANDLING_PROTOCOL)
    if value is None:
        return OverflowHandlingProtocol.DROP_NEWEST
    if isinstance(value, OverflowHandlingProtocol):
        return value
    raise TranslationError(
        f"connection {conn.qualified_name}: invalid "
        f"Overflow_Handling_Protocol {value!r}"
    )


def _urgency(conn: ConnectionInstance) -> int:
    value = conn.connection_property(URGENCY)
    if value is None:
        return 1
    if isinstance(value, int) and not isinstance(value, bool) and value >= 1:
        return value
    raise TranslationError(
        f"connection {conn.qualified_name}: invalid Urgency {value!r}"
    )


def _bus_resources(
    table: NameTable, outgoing: Sequence[ConnectionInstance]
) -> List[str]:
    resources: List[str] = []
    for conn in outgoing:
        for bus in conn.buses:
            name = table.record(
                Names.bus(bus.qualified_name), "bus", bus.qualified_name
            )
            if name not in resources:
                resources.append(name)
    return resources


def _access_resources(
    table: NameTable,
    instance: SystemInstance,
    thread: ComponentInstance,
) -> List[str]:
    """Resources for ``requires data access`` features (the R of Fig 5).

    Resolved access connections name the actual shared data component;
    unconnected features fall back to classifier-based sharing (features
    with the same data classifier share a resource) so partially-wired
    models remain analyzable.
    """
    resources: List[str] = []
    resolved_features = set()
    for acc in instance.access_connections:
        if acc.feature.component is not thread:
            continue
        decl = acc.feature.feature
        if (
            isinstance(decl, AccessFeature)
            and decl.kind is AccessKind.REQUIRES
            and decl.category is AccessCategory.DATA
        ):
            resolved_features.add(acc.feature)
            target = acc.target.qualified_name
            name = table.record(Names.data(target), "data", target)
            if name not in resources:
                resources.append(name)
    for feature in thread.features.values():
        decl = feature.feature
        if not isinstance(decl, AccessFeature) or feature in resolved_features:
            continue
        if decl.kind is not AccessKind.REQUIRES:
            continue
        if decl.category is not AccessCategory.DATA:
            continue
        target = decl.classifier or f"{thread.qualified_name}.{decl.name}"
        name = table.record(Names.data(target), "data", target)
        if name not in resources:
            resources.append(name)
    return resources


def _apply_priority_ceiling(
    priorities: Dict[str, CpuPriority],
    held_map: Dict[str, List[str]],
) -> None:
    """Immediate-ceiling protocol: once a thread has started executing
    (its critical section on R), its cpu priority rises to the maximum
    static priority of any thread sharing one of its resources."""
    from repro.translate.priorities import CeilingPriority

    holders: Dict[str, List[str]] = {}
    for qual, resources in held_map.items():
        for resource in resources:
            holders.setdefault(resource, []).append(qual)
    for quals in holders.values():
        for qual in quals:
            if not priorities[qual].is_static:
                raise TranslationError(
                    f"{qual}: priority ceiling requires a fixed-priority "
                    f"scheduling protocol"
                )
    ceilings = {
        resource: max(priorities[q].value for q in quals)  # type: ignore[attr-defined]
        for resource, quals in holders.items()
    }
    for qual, resources in held_map.items():
        if not resources:
            continue
        own = priorities[qual].value  # type: ignore[attr-defined]
        ceiling = max([own] + [ceilings[r] for r in resources])
        if ceiling > own:
            priorities[qual] = CeilingPriority(own, ceiling)


def _device_source(
    env: ProcessEnv, table: NameTable, conn: ConnectionInstance
) -> Term:
    """Environment stub: a device that may raise the event at any time."""
    device_qual = conn.source.component.qualified_name
    name = f"DEV${sanitize(device_qual)}_{sanitize(conn.qualified_name)}"
    table.record(name, "device_source", device_qual)
    enqueue = Names.enqueue(conn.qualified_name)
    env.define(
        name,
        (),
        choice(
            send(enqueue, 0).then(proc(name)),
            idle().then(proc(name)),
        ),
    )
    return proc(name)


def _observer(
    env: ProcessEnv,
    table: NameTable,
    flow: LatencyFlow,
    quantizer: TimingQuantizer,
) -> Term:
    """Latency observer (paper S5): deadlocks when the flow misses its
    bound.  Overlapping starts/ends are absorbed (single-outstanding-flow
    limitation, as the paper notes for pipelined inputs)."""
    obs_name = table.record(
        Names.observer(flow.flow_id), "observer", flow.flow_id
    )
    wait_name = table.record(
        Names.observer_wait(flow.flow_id), "observer_wait", flow.flow_id
    )
    start_evt = Names.obs_start(flow.flow_id)
    end_evt = Names.obs_end(flow.flow_id)
    bound = quantizer.quanta_floor(flow.bound)
    if bound < 1:
        raise TranslationError(
            f"flow {flow.flow_id}: bound {flow.bound} rounds to zero quanta"
        )
    k = var("k")
    env.define(
        obs_name,
        (),
        choice(
            recv(start_evt, 0).then(proc(wait_name, 0)),
            recv(end_evt, 0).then(proc(obs_name)),
            idle().then(proc(obs_name)),
        ),
    )
    env.define(
        wait_name,
        ("k",),
        choice(
            recv(end_evt, 0).then(proc(obs_name)),
            recv(start_evt, 0).then(proc(wait_name, k)),
            guard(k < bound, idle().then(proc(wait_name, k + 1))),
        ),
    )
    return proc(obs_name)
