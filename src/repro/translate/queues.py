"""Connection queue processes (paper S4.4, "Queue management").

Each semantic event / event-data connection ``c`` whose destination
thread is event-dispatched gets a counter process ``Q$c(n)`` counting up
to the ``Queue_Size`` of the connection's last port (default 1):

* ``(q$c?, 0)`` increments the counter (the source thread enqueues);
* ``(dq$c!, u)`` decrements it (the destination's dispatcher dequeues;
  ``u`` is the connection's Urgency, default 1);
* an idle self-loop lets time pass freely;
* at capacity, ``Overflow_Handling_Protocol`` decides: *DropNewest* /
  *DropOldest* consume and discard the event (a self-loop -- with the
  counter abstraction the two drop flavours coincide, because event
  attributes are not modeled), while *Error* moves to the ``QE$c`` error
  state, which has no transitions and therefore deadlocks the model ("it
  appears as the interrupt of the queue process leading to an error
  state").
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.acsr.definitions import ProcessEnv
from repro.acsr.expressions import var
from repro.acsr.terms import NIL, choice, guard, idle, proc, recv, send
from repro.aadl.properties import OverflowHandlingProtocol
from repro.translate.names import NameTable, Names


def build_queue(
    env: ProcessEnv,
    table: NameTable,
    conn_id: str,
    *,
    size: int = 1,
    overflow: OverflowHandlingProtocol = OverflowHandlingProtocol.DROP_NEWEST,
    urgency: int = 1,
) -> str:
    """Generate the queue process for one connection; returns its name."""
    if size < 1:
        raise TranslationError(
            f"connection {conn_id}: Queue_Size must be >= 1, got {size}"
        )
    if urgency < 1:
        raise TranslationError(
            f"connection {conn_id}: Urgency must be >= 1, got {urgency}"
        )
    q_name = table.record(Names.queue(conn_id), "queue", conn_id)
    enqueue = table.record(Names.enqueue(conn_id), "enqueue", conn_id)
    dequeue = table.record(Names.dequeue(conn_id), "dequeue", conn_id)

    n = var("n")
    if overflow.drops:
        overflow_branch = guard(
            n.eq(size), recv(enqueue, 0).then(proc(q_name, n))
        )
    else:
        error_name = table.record(
            Names.queue_error(conn_id), "queue_error", conn_id
        )
        env.define(error_name, (), NIL)
        overflow_branch = guard(
            n.eq(size), recv(enqueue, 0).then(proc(error_name))
        )

    env.define(
        q_name,
        ("n",),
        choice(
            guard(n < size, recv(enqueue, 0).then(proc(q_name, n + 1))),
            overflow_branch,
            guard(n > 0, send(dequeue, urgency) >> proc(q_name, n - 1)),
            idle().then(proc(q_name, n)),
        ),
    )
    return q_name
