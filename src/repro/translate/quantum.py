"""Time quantization (paper S4.1).

ACSR time is discrete: "time is partitioned into fixed-size scheduling
quanta and all scheduling decisions are made at quantum boundaries."  The
quantizer converts every AADL time property into an integer number of
quanta with *conservative* rounding:

* execution-time upper bounds round **up** (more demand),
* execution-time lower bounds round **down** (clamped to >= 1 quantum --
  a computation takes at least one quantum),
* deadlines and periods round **down** (less supply / tighter separation).

The analysis therefore overapproximates: it may report a spurious
deadline violation on a model that is schedulable in continuous time, but
never the reverse.  Precision improves as the quantum shrinks -- at the
cost of state-space growth, the trade-off benchmarked in
``benchmarks/bench_state_space_scaling.py``.

When every relevant duration is an exact multiple of the quantum the
quantization is exact.  The default quantum is the GCD of all durations,
which makes the default analysis exact.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import QuantizationError
from repro.aadl.components import ComponentCategory
from repro.aadl.instance import ComponentInstance, SystemInstance
from repro.aadl.properties import (
    COMPUTE_DEADLINE,
    COMPUTE_EXECUTION_TIME,
    DEADLINE,
    DISPATCH_OFFSET,
    EXECUTION_TIME,
    PERIOD,
    TimeValue,
)


class QuantizedTiming:
    """Integer timing parameters of one thread, in quanta."""

    __slots__ = ("cmin", "cmax", "deadline", "period", "exact", "offset")

    def __init__(
        self,
        cmin: int,
        cmax: int,
        deadline: int,
        period: Optional[int],
        exact: bool,
        offset: int = 0,
    ) -> None:
        self.cmin = cmin
        self.cmax = cmax
        self.deadline = deadline
        self.period = period
        self.exact = exact
        self.offset = offset

    def __repr__(self) -> str:
        return (
            f"QuantizedTiming(cmin={self.cmin}, cmax={self.cmax}, "
            f"deadline={self.deadline}, period={self.period}, "
            f"offset={self.offset}, exact={self.exact})"
        )


class TimingQuantizer:
    """Converts the time properties of threads into quanta."""

    def __init__(self, quantum: TimeValue) -> None:
        if quantum.picoseconds <= 0:
            raise QuantizationError("quantum must be positive")
        self.quantum = quantum

    @classmethod
    def natural(cls, system: SystemInstance) -> "TimingQuantizer":
        """Quantizer with the GCD of every duration in the model (exact)."""
        durations = _all_durations(system)
        if not durations:
            raise QuantizationError("model contains no time properties")
        gcd = durations[0]
        for duration in durations[1:]:
            gcd = math.gcd(gcd, duration)
        return cls(_ps_to_timevalue(gcd))

    # -- rounding primitives --------------------------------------------

    def quanta_ceil(self, value: TimeValue) -> int:
        q = self.quantum.picoseconds
        return -(-value.picoseconds // q)

    def quanta_floor(self, value: TimeValue) -> int:
        return value.picoseconds // self.quantum.picoseconds

    def is_exact(self, value: TimeValue) -> bool:
        return value.picoseconds % self.quantum.picoseconds == 0

    # -- thread-level API --------------------------------------------------

    def thread_timing(self, thread: ComponentInstance) -> QuantizedTiming:
        """Quantize a thread's Compute_Execution_Time, deadline and period."""
        qual = thread.qualified_name
        exec_range = thread.property_time_range(COMPUTE_EXECUTION_TIME)
        if exec_range is None:
            raise QuantizationError(f"{qual}: missing Compute_Execution_Time")
        deadline_tv = thread.property_time(
            COMPUTE_DEADLINE
        ) or thread.property_time(DEADLINE)
        if deadline_tv is None:
            raise QuantizationError(f"{qual}: missing Compute_Deadline")
        period_tv = thread.property_time(PERIOD)

        cmax = self.quanta_ceil(exec_range.high)
        cmin = max(1, self.quanta_floor(exec_range.low))
        if cmax < 1:
            raise QuantizationError(
                f"{qual}: execution time {exec_range.high} rounds to zero "
                f"quanta"
            )
        cmin = min(cmin, cmax)
        deadline = self.quanta_floor(deadline_tv)
        if deadline < cmax:
            # Either a genuinely infeasible thread or a too-coarse quantum;
            # both deserve a hard error rather than a guaranteed deadlock.
            raise QuantizationError(
                f"{qual}: deadline {deadline_tv} < worst-case execution "
                f"{exec_range.high} at quantum {self.quantum} "
                f"({deadline} < {cmax} quanta)"
            )
        period = None
        exact = (
            self.is_exact(exec_range.low)
            and self.is_exact(exec_range.high)
            and self.is_exact(deadline_tv)
        )
        offset_tv = thread.property_time(DISPATCH_OFFSET)
        offset = 0
        if offset_tv is not None:
            offset = self.quanta_floor(offset_tv)
            exact = exact and self.is_exact(offset_tv)
        if period_tv is not None:
            period = self.quanta_floor(period_tv)
            exact = exact and self.is_exact(period_tv)
            if period < 1:
                raise QuantizationError(
                    f"{qual}: period {period_tv} rounds to zero quanta"
                )
            if deadline > period:
                raise QuantizationError(
                    f"{qual}: deadline ({deadline} quanta) exceeds period "
                    f"({period} quanta); the translation requires "
                    f"constrained deadlines (D <= P)"
                )
            if offset >= period:
                raise QuantizationError(
                    f"{qual}: Dispatch_Offset ({offset} quanta) must be "
                    f"smaller than the period ({period} quanta)"
                )
        return QuantizedTiming(cmin, cmax, deadline, period, exact, offset)


def _all_durations(system: SystemInstance) -> List[int]:
    durations: List[int] = []
    for thread in system.threads():
        exec_range = thread.property_time_range(COMPUTE_EXECUTION_TIME)
        if exec_range is not None:
            durations.append(exec_range.low.picoseconds)
            durations.append(exec_range.high.picoseconds)
        for prop in (COMPUTE_DEADLINE, DEADLINE, PERIOD, DISPATCH_OFFSET):
            value = thread.property_time(prop)
            if value is not None:
                durations.append(value.picoseconds)
    # Virtual-processor server parameters (budget/replenishment) take
    # part in the GCD so partition interfaces quantize exactly too.
    for vproc in system.virtual_processors():
        for prop in (PERIOD, EXECUTION_TIME):
            value = vproc.property_time(prop)
            if value is not None:
                durations.append(value.picoseconds)
    return [d for d in durations if d > 0]


def _ps_to_timevalue(picoseconds: int) -> TimeValue:
    """Largest unit that represents the duration exactly."""
    for unit, factor in (
        ("hr", 3600 * 10**12),
        ("min", 60 * 10**12),
        ("sec", 10**12),
        ("ms", 10**9),
        ("us", 10**6),
        ("ns", 10**3),
    ):
        if picoseconds % factor == 0:
            return TimeValue(picoseconds // factor, unit)
    return TimeValue(picoseconds, "ps")
