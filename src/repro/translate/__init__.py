"""AADL -> ACSR translation (paper S4, Algorithm 1).

For every processor ``p`` and every thread ``t`` bound to ``p``:

* generate the thread *skeleton* -- AwaitDispatch / Compute / Finish
  states mirroring Figures 4-5, with dynamic parameters ``(e, s)`` for
  accumulated execution and elapsed time since dispatch;
* generate the *dispatcher* for ``t``'s dispatch protocol (Figure 6);
* refine the skeleton with output events for each outgoing event /
  event-data connection and with bus resources for connections mapped to
  buses;
* generate a *queue process* for each incoming event / event-data
  connection (S4.4).

The scheduling policy of each processor is encoded as a priority
assignment on its ``cpu`` resource (S5): static priorities for RMS / DMS /
HPF, parametric expressions over ``(e, s)`` for EDF and LLF.

Entry point: :func:`~repro.translate.translator.translate`.
"""

from repro.translate.names import NameTable, Names
from repro.translate.quantum import QuantizedTiming, TimingQuantizer
from repro.translate.priorities import priority_assignment
from repro.translate.translator import (
    EventSendPattern,
    TranslationOptions,
    TranslationResult,
    group_threads_by_processor,
    translate,
)

__all__ = [
    "EventSendPattern",
    "NameTable",
    "Names",
    "QuantizedTiming",
    "TimingQuantizer",
    "TranslationOptions",
    "TranslationResult",
    "group_threads_by_processor",
    "priority_assignment",
    "translate",
]
