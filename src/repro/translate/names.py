"""Systematic naming of generated ACSR entities.

The paper: "By carefully choosing the names in the translated model we
make it possible to present failing scenarios in terms of the original
AADL model."  Every generated identifier embeds the qualified name of the
AADL element it stems from, and a :class:`NameTable` records the inverse
mapping explicitly so trace raising never parses strings heuristically.

Kinds recorded in the table:

======================  =====================================================
ACSR entity             meaning
======================  =====================================================
``cpu$<proc>``          processor resource
``bus$<bus>``           bus resource
``data$<data>``         shared-data resource (access connections)
``dispatch$<thr>``      dispatcher -> skeleton dispatch event
``done$<thr>``          skeleton -> dispatcher completion event
``q$<conn>``            source thread -> queue enqueue event  (paper: e_q)
``dq$<conn>``           queue -> dispatcher dequeue event     (paper: e_deq)
``AD$<thr>``            AwaitDispatch skeleton state
``C$<thr>``             Compute skeleton state, params (e, s)
``F$<thr>``             Finish state (completion events, then done)
``DP$/DA$/DS$<thr>``    periodic / aperiodic / sporadic dispatcher states
``DW$/DI$<thr>``        dispatcher wait-for-done / inter-dispatch idle states
``Q$<conn>``            queue counter process, param (n)
``QE$<conn>``           queue overflow error state
``OBS$<flow>``          latency observer states
======================  =====================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

_SANITIZE = str.maketrans({".": "_", "-": "_", ">": "_", "+": "_"})


def sanitize(qualified: str) -> str:
    """Turn an AADL qualified name into an ACSR identifier fragment."""
    return qualified.translate(_SANITIZE)


class Names:
    """Name constructors for one translation run."""

    # -- resources ----------------------------------------------------

    @staticmethod
    def cpu(processor_qual: str) -> str:
        return f"cpu${sanitize(processor_qual)}"

    @staticmethod
    def bus(bus_qual: str) -> str:
        return f"bus${sanitize(bus_qual)}"

    @staticmethod
    def data(data_qual: str) -> str:
        return f"data${sanitize(data_qual)}"

    # -- events ----------------------------------------------------------

    @staticmethod
    def dispatch(thread_qual: str) -> str:
        return f"dispatch${sanitize(thread_qual)}"

    @staticmethod
    def done(thread_qual: str) -> str:
        return f"done${sanitize(thread_qual)}"

    @staticmethod
    def enqueue(conn_id: str) -> str:
        return f"q${sanitize(conn_id)}"

    @staticmethod
    def dequeue(conn_id: str) -> str:
        return f"dq${sanitize(conn_id)}"

    @staticmethod
    def obs_start(flow_id: str) -> str:
        return f"obs_start${sanitize(flow_id)}"

    @staticmethod
    def obs_end(flow_id: str) -> str:
        return f"obs_end${sanitize(flow_id)}"

    # -- processes -----------------------------------------------------------

    @staticmethod
    def await_dispatch(thread_qual: str) -> str:
        return f"AD${sanitize(thread_qual)}"

    @staticmethod
    def compute(thread_qual: str) -> str:
        return f"C${sanitize(thread_qual)}"

    @staticmethod
    def finish(thread_qual: str) -> str:
        return f"F${sanitize(thread_qual)}"

    @staticmethod
    def dispatcher(thread_qual: str, protocol_tag: str) -> str:
        return f"D{protocol_tag}${sanitize(thread_qual)}"

    @staticmethod
    def dispatcher_wait(thread_qual: str) -> str:
        return f"DW${sanitize(thread_qual)}"

    @staticmethod
    def dispatcher_idle(thread_qual: str) -> str:
        return f"DI${sanitize(thread_qual)}"

    @staticmethod
    def queue(conn_id: str) -> str:
        return f"Q${sanitize(conn_id)}"

    @staticmethod
    def queue_error(conn_id: str) -> str:
        return f"QE${sanitize(conn_id)}"

    @staticmethod
    def observer(flow_id: str) -> str:
        return f"OBS${sanitize(flow_id)}"

    @staticmethod
    def observer_wait(flow_id: str) -> str:
        return f"OBSW${sanitize(flow_id)}"


class NameTable:
    """Bidirectional record: generated ACSR name -> (kind, AADL element).

    Kinds: ``cpu``, ``bus``, ``data``, ``dispatch``, ``done``, ``enqueue``,
    ``dequeue``, ``await``, ``compute``, ``finish``, ``dispatcher``,
    ``dispatcher_wait``, ``dispatcher_idle``, ``queue``, ``queue_error``,
    ``obs_start``, ``obs_end``, ``observer``, ``observer_wait``.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[str, str]] = {}

    def record(self, acsr_name: str, kind: str, aadl_element: str) -> str:
        existing = self._entries.get(acsr_name)
        if existing is not None and existing != (kind, aadl_element):
            raise ValueError(
                f"name collision: {acsr_name!r} maps to both {existing} "
                f"and {(kind, aadl_element)}"
            )
        self._entries[acsr_name] = (kind, aadl_element)
        return acsr_name

    def lookup(self, acsr_name: str) -> Optional[Tuple[str, str]]:
        return self._entries.get(acsr_name)

    def kind_of(self, acsr_name: str) -> Optional[str]:
        entry = self._entries.get(acsr_name)
        return entry[0] if entry else None

    def element_of(self, acsr_name: str) -> Optional[str]:
        entry = self._entries.get(acsr_name)
        return entry[1] if entry else None

    def names_of_kind(self, kind: str) -> Dict[str, str]:
        """Map acsr-name -> aadl-element for all entries of one kind."""
        return {
            name: element
            for name, (k, element) in self._entries.items()
            if k == kind
        }

    def entries_for(self, aadl_element: str) -> List[Tuple[str, str]]:
        """All ``(kind, acsr_name)`` pairs recorded for one AADL element.

        This is the per-unit name harvest used by the symmetry detector
        (:mod:`repro.engine.reduce`): the full generated-name footprint
        of a thread, processor, connection or flow.
        """
        return [
            (kind, name)
            for name, (kind, element) in self._entries.items()
            if element == aadl_element
        ]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, acsr_name: str) -> bool:
        return acsr_name in self._entries
