"""Scheduling policies as priority assignments (paper S5).

Fixed-priority policies (RMS, DMS, HPF) assign one static integer per
thread, used in every access to the ``cpu`` resource.  Dynamic policies
use parametric expressions over the Compute process's dynamic parameters
``(e, s)``:

* **EDF** -- the paper's encoding ``pi_i = dmax - (d_i - t)``; we add 1 so
  the priority is always strictly positive (a zero cpu priority would not
  preempt the idle step, breaking work conservation).
* **LLF** -- priority rises as laxity ``(d_i - s) - (cmax_i - e)`` falls:
  ``pi_i = dmax + 1 - (d_i - s) + (cmax_i - e)``.

Ties between static priorities are broken deterministically by qualified
name (documented deviation: equal priorities would make preemption
nondeterministic and inflate the state space without changing verdicts
for the policies above).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import TranslationError
from repro.acsr.expressions import Expr, const
from repro.aadl.instance import ComponentInstance
from repro.aadl.properties import PRIORITY, SchedulingProtocol
from repro.translate.quantum import QuantizedTiming


class CpuPriority:
    """Priority of a thread's cpu accesses: static or parametric."""

    def expr(self, e: Expr, s: Expr) -> Union[int, Expr]:
        """Priority value given the Compute parameters ``(e, s)``."""
        raise NotImplementedError

    @property
    def is_static(self) -> bool:
        return False


class StaticPriority(CpuPriority):
    """A fixed positive priority."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if value < 1:
            raise TranslationError(
                f"static cpu priority must be >= 1, got {value}"
            )
        self.value = value

    def expr(self, e: Expr, s: Expr) -> int:
        return self.value

    @property
    def is_static(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"StaticPriority({self.value})"


class EdfPriority(CpuPriority):
    """``dmax - (d - s) + 1``: grows as the absolute deadline approaches."""

    __slots__ = ("deadline", "dmax")

    def __init__(self, deadline: int, dmax: int) -> None:
        self.deadline = deadline
        self.dmax = dmax

    def expr(self, e: Expr, s: Expr) -> Expr:
        return const(self.dmax - self.deadline + 1) + s

    def __repr__(self) -> str:
        return f"EdfPriority(deadline={self.deadline}, dmax={self.dmax})"


class LlfPriority(CpuPriority):
    """``dmax + 1 - laxity`` with ``laxity = (d - s) - (cmax - e)``."""

    __slots__ = ("deadline", "cmax", "dmax")

    def __init__(self, deadline: int, cmax: int, dmax: int) -> None:
        self.deadline = deadline
        self.cmax = cmax
        self.dmax = dmax

    def expr(self, e: Expr, s: Expr) -> Expr:
        base = self.dmax + 1 - self.deadline + self.cmax
        return const(base) + s - e

    def __repr__(self) -> str:
        return (
            f"LlfPriority(deadline={self.deadline}, cmax={self.cmax}, "
            f"dmax={self.dmax})"
        )


class CeilingPriority(CpuPriority):
    """Immediate-ceiling emulation: base priority while contending for
    the first quantum, resource ceiling once execution (and therefore the
    critical section) has started: ``own + (ceiling - own) * min(e, 1)``."""

    __slots__ = ("own", "ceiling")

    def __init__(self, own: int, ceiling: int) -> None:
        if ceiling < own:
            raise TranslationError(
                f"ceiling {ceiling} below base priority {own}"
            )
        self.own = own
        self.ceiling = ceiling

    def expr(self, e: Expr, s: Expr) -> Union[int, Expr]:
        if self.ceiling == self.own:
            return self.own
        from repro.acsr.expressions import BinOp, const

        boosted = BinOp("min", e, const(1)) * (self.ceiling - self.own)
        return const(self.own) + boosted

    def __repr__(self) -> str:
        return f"CeilingPriority(own={self.own}, ceiling={self.ceiling})"


def priority_assignment(
    protocol: SchedulingProtocol,
    threads: Sequence[Tuple[ComponentInstance, QuantizedTiming]],
) -> Dict[str, CpuPriority]:
    """Priorities for the threads bound to one processor."""
    if not threads:
        return {}
    if protocol is SchedulingProtocol.RATE_MONOTONIC:
        return _monotonic(threads, key="period")
    if protocol is SchedulingProtocol.DEADLINE_MONOTONIC:
        return _monotonic(threads, key="deadline")
    if protocol is SchedulingProtocol.HIGHEST_PRIORITY_FIRST:
        return _explicit(threads)
    dmax = max(timing.deadline for _, timing in threads)
    if protocol is SchedulingProtocol.EARLIEST_DEADLINE_FIRST:
        return {
            thread.qualified_name: EdfPriority(timing.deadline, dmax)
            for thread, timing in threads
        }
    if protocol is SchedulingProtocol.LEAST_LAXITY_FIRST:
        return {
            thread.qualified_name: LlfPriority(
                timing.deadline, timing.cmax, dmax
            )
            for thread, timing in threads
        }
    raise TranslationError(f"unsupported scheduling protocol {protocol}")


def _monotonic(
    threads: Sequence[Tuple[ComponentInstance, QuantizedTiming]],
    *,
    key: str,
) -> Dict[str, CpuPriority]:
    def sort_key(item: Tuple[ComponentInstance, QuantizedTiming]):
        thread, timing = item
        value = getattr(timing, key)
        # Threads without a period (aperiodic/background under RMS) rank
        # below every periodic thread.
        rank = value if value is not None else float("inf")
        return (rank, thread.qualified_name)

    ordered: List[Tuple[ComponentInstance, QuantizedTiming]] = sorted(
        threads, key=sort_key
    )
    n = len(ordered)
    return {
        thread.qualified_name: StaticPriority(n - index)
        for index, (thread, _) in enumerate(ordered)
    }


def _explicit(
    threads: Sequence[Tuple[ComponentInstance, QuantizedTiming]],
) -> Dict[str, CpuPriority]:
    raw: Dict[str, int] = {}
    for thread, _ in threads:
        value = thread.property_int(PRIORITY)
        if value is None:
            raise TranslationError(
                f"{thread.qualified_name}: HPF scheduling requires the "
                f"Priority property"
            )
        raw[thread.qualified_name] = value
    shift = 1 - min(raw.values())
    return {
        qual: StaticPriority(value + shift) for qual, value in raw.items()
    }
