"""Thread dispatchers (paper Figure 6).

Each thread gets one dispatcher process that (a) sends the ``dispatch``
event according to the dispatch protocol and (b) tracks the compute
deadline, *blocking* -- and thereby deadlocking the model -- when ``done``
does not arrive in time (S4.3: "signals deadline violations by inducing a
deadlock into the model execution").

* **Periodic** (Fig 6a): dispatch immediately (the initial state has no
  idle alternative, so the internal dispatch step preempts time), await
  ``done`` within the deadline ``D``, idle out the remainder of the
  period ``P``, repeat.
* **Aperiodic / background** (Fig 6b): idle until a dequeue event arrives
  from some incoming connection's queue process (choice weighted by the
  connections' Urgency), dispatch, await ``done`` within ``D``.
* **Sporadic** (Fig 6c): like aperiodic, but after completion the next
  dequeue is only accepted once the minimum separation ``P`` has elapsed
  since the previous dispatch.

Dynamic parameter ``k`` counts quanta since the last dispatch; guards
bound it by ``D`` (wait states) and ``P`` (idle states), keeping the
processes finite-state.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import TranslationError
from repro.acsr.definitions import ProcessEnv
from repro.acsr.expressions import var
from repro.acsr.terms import Term, choice, guard, idle, proc, recv, send
from repro.aadl.properties import DispatchProtocol
from repro.translate.names import NameTable, Names
from repro.translate.quantum import QuantizedTiming

# (dequeue event name, urgency) per incoming queued connection.
DequeueSpec = Tuple[str, int]

_PROTOCOL_TAGS = {
    DispatchProtocol.PERIODIC: "P",
    DispatchProtocol.APERIODIC: "A",
    DispatchProtocol.SPORADIC: "S",
    DispatchProtocol.BACKGROUND: "A",
}


def build_dispatcher(
    env: ProcessEnv,
    table: NameTable,
    thread_qual: str,
    protocol: DispatchProtocol,
    timing: QuantizedTiming,
    *,
    dequeues: Sequence[DequeueSpec] = (),
) -> Tuple[str, Term]:
    """Generate the dispatcher definitions for one thread.

    Returns ``(dispatcher name, initial term)`` -- they differ for
    periodic threads with a Dispatch_Offset, whose initial state is the
    offset countdown ``DO$t(0)``."""
    if protocol is DispatchProtocol.PERIODIC:
        return _periodic(env, table, thread_qual, timing)
    if protocol in (DispatchProtocol.APERIODIC, DispatchProtocol.BACKGROUND):
        return _aperiodic(env, table, thread_qual, protocol, timing, dequeues)
    if protocol is DispatchProtocol.SPORADIC:
        return _sporadic(env, table, thread_qual, timing, dequeues)
    raise TranslationError(f"unsupported dispatch protocol {protocol}")


def _names(
    table: NameTable, thread_qual: str, protocol: DispatchProtocol
) -> Tuple[str, str, str, str, str]:
    tag = _PROTOCOL_TAGS[protocol]
    d_name = table.record(
        Names.dispatcher(thread_qual, tag), "dispatcher", thread_qual
    )
    w_name = table.record(
        Names.dispatcher_wait(thread_qual), "dispatcher_wait", thread_qual
    )
    i_name = table.record(
        Names.dispatcher_idle(thread_qual), "dispatcher_idle", thread_qual
    )
    dispatch_evt = Names.dispatch(thread_qual)
    done_evt = Names.done(thread_qual)
    return d_name, w_name, i_name, dispatch_evt, done_evt


def _periodic(
    env: ProcessEnv,
    table: NameTable,
    thread_qual: str,
    timing: QuantizedTiming,
) -> str:
    if timing.period is None:
        raise TranslationError(
            f"periodic thread {thread_qual} has no quantized period"
        )
    d_name, w_name, i_name, dispatch_evt, done_evt = _names(
        table, thread_qual, DispatchProtocol.PERIODIC
    )
    period, deadline = timing.period, timing.deadline
    k = var("k")

    # Fig 6a initial state: dispatch! with no idle alternative.
    env.define(d_name, (), send(dispatch_evt, 1) >> proc(w_name, 0))

    # Dispatch_Offset extension: idle out the phase before the first
    # dispatch (subsequent periods are counted from each dispatch, so
    # only the initial state changes).
    if timing.offset > 0:
        o_name = table.record(
            f"DO${d_name.split('$', 1)[1]}", "dispatcher_offset", thread_qual
        )
        env.define(
            o_name,
            ("k",),
            choice(
                guard(k < timing.offset, idle().then(proc(o_name, k + 1))),
                guard(
                    k.eq(timing.offset),
                    send(dispatch_evt, 1) >> proc(w_name, 0),
                ),
            ),
        )

    # Await done before the deadline; no branch at k == D => deadlock.
    env.define(
        w_name,
        ("k",),
        choice(
            recv(done_evt, 0).then(proc(i_name, k)),
            guard(k < deadline, idle().then(proc(w_name, k + 1))),
        ),
    )

    # Idle out the period, then re-dispatch.  The [k == P] branch covers
    # completion exactly at the deadline when D == P.
    env.define(
        i_name,
        ("k",),
        choice(
            guard(k + 1 < period, idle().then(proc(i_name, k + 1))),
            guard((k + 1).eq(period), idle().then(proc(d_name))),
            guard(k.eq(period), send(dispatch_evt, 1) >> proc(w_name, 0)),
        ),
    )
    if timing.offset > 0:
        o_name = f"DO${d_name.split('$', 1)[1]}"
        return d_name, proc(o_name, 0)
    return d_name, proc(d_name)


def _dequeue_choices(
    dequeues: Sequence[DequeueSpec],
    dispatch_evt: str,
    wait_ref: Term,
) -> List[Term]:
    if not dequeues:
        raise TranslationError(
            "event-dispatched thread has no incoming queued connection"
        )
    return [
        recv(dq_event, urgency).then(send(dispatch_evt, 1).then(wait_ref))
        for dq_event, urgency in dequeues
    ]


def _aperiodic(
    env: ProcessEnv,
    table: NameTable,
    thread_qual: str,
    protocol: DispatchProtocol,
    timing: QuantizedTiming,
    dequeues: Sequence[DequeueSpec],
) -> str:
    d_name, w_name, _, dispatch_evt, done_evt = _names(
        table, thread_qual, protocol
    )
    deadline = timing.deadline
    k = var("k")

    # Fig 6b: the dispatcher may idle awaiting an event.
    env.define(
        d_name,
        (),
        choice(
            *_dequeue_choices(dequeues, dispatch_evt, proc(w_name, 0)),
            idle().then(proc(d_name)),
        ),
    )
    env.define(
        w_name,
        ("k",),
        choice(
            recv(done_evt, 0).then(proc(d_name)),
            guard(k < deadline, idle().then(proc(w_name, k + 1))),
        ),
    )
    return d_name, proc(d_name)


def _sporadic(
    env: ProcessEnv,
    table: NameTable,
    thread_qual: str,
    timing: QuantizedTiming,
    dequeues: Sequence[DequeueSpec],
) -> str:
    if timing.period is None:
        raise TranslationError(
            f"sporadic thread {thread_qual} has no quantized minimum "
            f"separation (Period)"
        )
    d_name, w_name, i_name, dispatch_evt, done_evt = _names(
        table, thread_qual, DispatchProtocol.SPORADIC
    )
    period, deadline = timing.period, timing.deadline
    k = var("k")

    accept = _dequeue_choices(dequeues, dispatch_evt, proc(w_name, 0))

    env.define(
        d_name,
        (),
        choice(*accept, idle().then(proc(d_name))),
    )
    env.define(
        w_name,
        ("k",),
        choice(
            recv(done_evt, 0).then(proc(i_name, k)),
            guard(k < deadline, idle().then(proc(w_name, k + 1))),
        ),
    )
    # Fig 6c: the next dispatch waits out the minimum separation.  At
    # k == P (completion exactly at the deadline when D == P) the idle
    # state already behaves like the initial state.
    env.define(
        i_name,
        ("k",),
        choice(
            guard(k + 1 < period, idle().then(proc(i_name, k + 1))),
            guard(k + 1 >= period, idle().then(proc(d_name))),
            *[guard(k >= period, branch) for branch in accept],
        ),
    )
    return d_name, proc(d_name)
