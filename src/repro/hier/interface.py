"""Bounded-delay resource (BDR) interfaces for hierarchical scheduling.

An ARINC-653 style partition does not own its processor: a server with
budget ``Q`` and replenishment period ``P`` doles out supply.  Mok, Feng
& Chen's bounded-delay resource model abstracts any such server by two
numbers: an availability factor ``alpha`` (the long-run fraction of the
processor the partition gets) and a partition delay ``delta`` (the
longest interval during which the partition may receive *no* supply at
all).  A periodic server ``(P, Q)`` honours the BDR interface

    alpha = Q / P        delta = 2 * (P - Q)

because the worst supply gap -- budget at the very start of one period
followed by budget at the very end of the next -- spans ``2 (P - Q)``
time units.  The corresponding supply bound function

    sbf(t) = 0                     if t <= delta
             alpha * (t - delta)   otherwise

lower-bounds the supply of *every* phasing of the server, which is what
makes interface-based verdicts sound: demand met under ``sbf`` is met
under the real server, whatever its phase.

``alpha`` is an exact :class:`~fractions.Fraction` of the integer quanta
``Q`` and ``P``, so interface comparisons (and the ``sbf``/``dbf``
inequality) never suffer float rounding.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.errors import HierError

#: Deliberately-unsound interface derivations for oracle self-tests --
#: the hier analogue of ``REDUCTION_FAULTS`` and ``BATCH_FAULTS``.
#:
#: * ``inflate-alpha`` -- overstate the availability factor by 25%
#:   (capped at full supply).  The interface then promises supply the
#:   server never delivers, so some seed of the ``oracle hier``
#:   campaign must see interface-pass / simulation-fail (DISAGREED).
HIER_FAULTS = ("inflate-alpha",)


class BdrInterface:
    """One partition's bounded-delay resource abstraction ``(alpha, delta)``.

    ``period`` and ``budget`` are the originating server parameters in
    integer quanta; ``alpha``/``delta`` are derived from them unless a
    fault deliberately skews the derivation.
    """

    __slots__ = ("name", "period", "budget", "alpha", "delta")

    def __init__(
        self,
        name: str,
        period: int,
        budget: int,
        *,
        alpha: Optional[Fraction] = None,
        delta: Optional[int] = None,
    ) -> None:
        if period < 1:
            raise HierError(
                f"partition {name}: server period must be >= 1 quantum, "
                f"got {period}"
            )
        if not (1 <= budget <= period):
            raise HierError(
                f"partition {name}: server budget {budget} out of range "
                f"[1, {period}]"
            )
        self.name = name
        self.period = period
        self.budget = budget
        self.alpha = Fraction(budget, period) if alpha is None else alpha
        self.delta = 2 * (period - budget) if delta is None else delta
        if not (0 < self.alpha <= 1):
            raise HierError(
                f"partition {name}: availability factor {self.alpha} out "
                f"of range (0, 1]"
            )
        if self.delta < 0:
            raise HierError(
                f"partition {name}: partition delay {self.delta} < 0"
            )

    @classmethod
    def from_server(
        cls,
        name: str,
        period: int,
        budget: int,
        *,
        fault: Optional[str] = None,
    ) -> "BdrInterface":
        """The BDR interface of a periodic server ``(period, budget)``.

        ``fault`` injects a registered :data:`HIER_FAULTS` entry into
        the derivation (self-test hook for the hier oracle campaign).
        """
        if fault is None:
            return cls(name, period, budget)
        if fault == "inflate-alpha":
            honest = Fraction(budget, period)
            inflated = min(Fraction(1), honest * Fraction(5, 4))
            return cls(
                name,
                period,
                budget,
                alpha=inflated,
                delta=2 * (period - budget),
            )
        raise HierError(
            f"unknown hier fault {fault!r}; choose from {list(HIER_FAULTS)}"
        )

    def sbf(self, t: int) -> Fraction:
        """Least supply guaranteed in any interval of length ``t``."""
        if t <= self.delta:
            return Fraction(0)
        return self.alpha * (t - self.delta)

    @property
    def token(self) -> str:
        """Stable text form, for cache keys and trail lines."""
        return (
            f"{self.name}:a{self.alpha.numerator}/{self.alpha.denominator}"
            f":d{self.delta}"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BdrInterface)
            and self.name == other.name
            and self.period == other.period
            and self.budget == other.budget
            and self.alpha == other.alpha
            and self.delta == other.delta
        )

    def __repr__(self) -> str:
        return (
            f"BdrInterface({self.name!r}, P={self.period}, Q={self.budget}, "
            f"alpha={self.alpha}, delta={self.delta})"
        )
