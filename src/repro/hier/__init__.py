"""Hierarchical scheduling: BDR resource interfaces for partitions.

ARINC-653 style systems bind threads to *virtual processors* -- budgeted
partitions of a physical processor.  This package abstracts each
partition's server by a bounded-delay resource interface ``(alpha,
delta)``, checks the partition's demand against the interface's supply
bound function analytically, and falls back to an exact supply-aware
flattened simulation when the (sufficient) interface check cannot
settle a partition.  See ``docs/hier.md``.
"""

from repro.hier.analysis import analyze_hier, derive_interfaces
from repro.hier.check import (
    PartitionCheck,
    check_partition,
    check_partition_edf,
    check_partition_fp,
)
from repro.hier.flatten import (
    DEFAULT_MAX_WINDOW,
    FlattenedRun,
    flattened_window,
    simulate_partition,
)
from repro.hier.interface import HIER_FAULTS, BdrInterface

__all__ = [
    "BdrInterface",
    "HIER_FAULTS",
    "PartitionCheck",
    "FlattenedRun",
    "DEFAULT_MAX_WINDOW",
    "analyze_hier",
    "derive_interfaces",
    "check_partition",
    "check_partition_edf",
    "check_partition_fp",
    "flattened_window",
    "simulate_partition",
]
