"""Flattened reference semantics: simulate a partition under its server.

The BDR interface deliberately under-promises supply; this module is
the other side of the oracle relation -- a concrete, supply-aware
discrete simulation of the partition's task set under the periodic
server ``(P, Q)`` itself.  The server grants its budget in one slot at
the **end** of each replenishment period, which is the worst fixed
phasing for a synchronous release (the first ``P - Q`` quanta after a
critical instant deliver nothing, and consecutive grants are separated
by up to ``2 (P - Q)`` -- exactly the gap the BDR delay bounds).

Because the BDR supply bound is below *every* phasing of the server, a
task set accepted against the interface must also survive this
simulation; the converse direction (simulation passes where the
interface check fails) is ordinary interface conservatism.  The hier
oracle campaign (:mod:`repro.oracle.hier`) gates on exactly that
asymmetry.

The run is exact for its semantics: the simulated window covers
``O_max + 2 * lcm(H, P)`` -- the joint repetition period of the task
releases and the supply pattern, with the Leung--Merrill lead-in --
after which a miss-free schedule repeats forever.  A window above the
caller's cap returns None (UNKNOWN) instead of silently truncating.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import SchedError
from repro.sched.simulation import _Job, _pick
from repro.sched.taskmodel import TaskSet

#: Windows above this many quanta report UNKNOWN rather than running a
#: (possibly astronomically long) exact simulation; same default budget
#: as the portfolio's simulation tier.
DEFAULT_MAX_WINDOW = 1 << 20


class FlattenedRun:
    """Outcome of one supply-aware partition simulation."""

    __slots__ = ("horizon", "misses", "schedulable", "supply_slots")

    def __init__(
        self,
        horizon: int,
        misses: List[Tuple[str, int]],
        schedulable: Optional[bool],
        supply_slots: int,
    ) -> None:
        self.horizon = horizon
        self.misses = misses
        #: True/False when the window was simulated; None when it
        #: exceeded the cap and the run never started (UNKNOWN)
        self.schedulable = schedulable
        self.supply_slots = supply_slots

    def __repr__(self) -> str:
        return (
            f"FlattenedRun(horizon={self.horizon}, "
            f"schedulable={self.schedulable})"
        )


def flattened_window(tasks: TaskSet, server_period: int) -> int:
    """The exact window: lead-in plus twice the joint repetition period."""
    max_offset = max(task.offset for task in tasks)
    cycle = _lcm(tasks.hyperperiod, server_period)
    return max_offset + 2 * cycle


def simulate_partition(
    tasks: TaskSet,
    server_period: int,
    server_budget: int,
    *,
    policy: str = "rate",
    max_window: int = DEFAULT_MAX_WINDOW,
) -> FlattenedRun:
    """Simulate ``tasks`` under the end-of-period server ``(P, Q)``.

    Policies are those of :func:`repro.sched.simulation.simulate`.
    Supply exists in quantum ``t`` iff ``t mod P >= P - Q``.
    """
    if len(tasks) == 0:
        return FlattenedRun(0, [], True, 0)
    if not (1 <= server_budget <= server_period):
        raise SchedError(
            f"server budget {server_budget} out of range "
            f"[1, {server_period}]"
        )
    horizon = flattened_window(tasks, server_period)
    if horizon > max_window:
        return FlattenedRun(horizon, [], None, 0)

    static_rank = {}
    if policy in ("rate", "deadline", "explicit"):
        if policy == "rate":
            ordered = tasks.by_rate_monotonic()
        elif policy == "deadline":
            ordered = tasks.by_deadline_monotonic()
        else:
            ordered = tasks.by_explicit_priority()
        static_rank = {task.name: idx for idx, task in enumerate(ordered)}
    elif policy not in ("edf", "llf"):
        raise SchedError(f"unknown policy {policy!r}")

    ready: List[_Job] = []
    misses: List[Tuple[str, int]] = []
    supply_slots = 0
    blackout = server_period - server_budget
    for now in range(horizon):
        for task in tasks:
            if now >= task.offset and (now - task.offset) % task.period == 0:
                ready.append(_Job(task, now))
        still_ready: List[_Job] = []
        for job in ready:
            if job.remaining > 0 and now >= job.deadline:
                misses.append((job.task.name, job.deadline))
                continue  # abandon, as the plain simulator does
            still_ready.append(job)
        ready = still_ready
        if now % server_period < blackout:
            continue  # server holds no budget: the partition starves
        supply_slots += 1
        running = _pick(ready, policy, static_rank, now)
        if running is None:
            continue
        running.remaining -= 1
        if running.remaining == 0:
            ready.remove(running)
    for job in ready:
        if job.remaining > 0 and job.deadline <= horizon:
            misses.append((job.task.name, job.deadline))
    return FlattenedRun(horizon, misses, not misses, supply_slots)


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b)
