"""Demand-vs-supply schedulability checks against a BDR interface.

The partition-level analogue of the classical tests: instead of the
full processor (supply ``t`` in any window of length ``t``), a partition
receives at least :meth:`~repro.hier.interface.BdrInterface.sbf` of
supply, and the task set is accepted when its demand never exceeds that
guarantee.

* **EDF** (Shin & Lee's compositional condition): the partition is
  schedulable if ``U <= alpha`` and ``dbf(t) <= sbf(t)`` at every
  absolute deadline ``t`` up to ``max(delta, D_max) + lcm(H, P)``.
  Beyond that horizon both sides advance by at least ``(alpha - U) * L
  >= 0`` per hyperperiod-of-both, so no later point can fail first;
  checking only deadline points is exact because ``dbf`` steps at
  deadlines while ``sbf`` is non-decreasing.
* **Fixed priority** (time-demand against ``sbf``): task ``i`` is
  accepted when some point ``t`` in ``{k T_j <= D_i} + {D_i}`` has
  ``C_i + sum_{j in hp(i)} ceil(t / T_j) C_j <= sbf(t)`` -- the
  synchronous critical instant, evaluated at the right endpoints of the
  intervals on which the demand is constant.

Both checks are *sufficient* (offsets and server phasings only remove
demand or add supply relative to what they assume), which is exactly
the soundness class the portfolio's hier tier claims: a pass is a
proof, a fail merely escalates.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Optional, Set

from repro.hier.interface import BdrInterface
from repro.sched.demand import demand_bound_function
from repro.sched.taskmodel import PeriodicTask, TaskSet


class PartitionCheck:
    """Outcome of one partition-vs-interface check."""

    __slots__ = ("ok", "detail")

    def __init__(self, ok: bool, detail: str) -> None:
        self.ok = ok
        self.detail = detail

    def __repr__(self) -> str:
        return f"PartitionCheck(ok={self.ok}, {self.detail!r})"


def fractional_utilization(tasks: TaskSet) -> Fraction:
    """Exact task-set utilization (the float property rounds)."""
    return sum(
        (Fraction(task.wcet, task.period) for task in tasks), Fraction(0)
    )


def check_partition_edf(
    tasks: TaskSet, interface: BdrInterface
) -> PartitionCheck:
    """``dbf(t) <= sbf(t)`` at every deadline up to the repetition point."""
    util = fractional_utilization(tasks)
    if util > interface.alpha:
        return PartitionCheck(
            False,
            f"U={util} exceeds availability factor alpha={interface.alpha}",
        )
    max_deadline = max(task.deadline for task in tasks)
    cycle = _lcm(tasks.hyperperiod, interface.period)
    horizon = max(interface.delta, max_deadline) + cycle
    for t in _deadline_points(tasks, horizon):
        demand = demand_bound_function(tasks, t)
        if demand > interface.sbf(t):
            return PartitionCheck(
                False,
                f"dbf({t})={demand} > sbf({t})={interface.sbf(t)}",
            )
    return PartitionCheck(
        True,
        f"dbf<=sbf on (0, {horizon}], U={util} <= alpha={interface.alpha}",
    )


def check_partition_fp(
    tasks: TaskSet, interface: BdrInterface, ordering: str
) -> PartitionCheck:
    """Per-task time-demand against ``sbf`` at the critical instant."""
    if ordering == "rate":
        ordered = tasks.by_rate_monotonic()
    elif ordering == "deadline":
        ordered = tasks.by_deadline_monotonic()
    else:
        ordered = tasks.by_explicit_priority()
    for index, task in enumerate(ordered):
        higher = ordered[:index]
        if not _fp_task_fits(task, higher, interface):
            return PartitionCheck(
                False,
                f"{task.name}: time demand exceeds sbf at every point "
                f"up to D={task.deadline}",
            )
    return PartitionCheck(
        True,
        f"time demand met for all {len(ordered)} task(s) "
        f"under sbf({interface.token})",
    )


def check_partition(
    tasks: TaskSet,
    interface: BdrInterface,
    *,
    ordering: Optional[str],
    edf: bool = False,
) -> Optional[PartitionCheck]:
    """Dispatch to the matching analytic check, or None when the
    partition's policy has no analytic partition test (LLF) and the
    caller must fall back to the flattened simulation."""
    if len(tasks) == 0:
        return PartitionCheck(True, "no periodic demand")
    if ordering is not None:
        return check_partition_fp(tasks, interface, ordering)
    if edf:
        return check_partition_edf(tasks, interface)
    return None


def _fp_task_fits(
    task: PeriodicTask,
    higher: List[PeriodicTask],
    interface: BdrInterface,
) -> bool:
    points: Set[int] = {task.deadline}
    for other in higher:
        release = other.period
        while release <= task.deadline:
            points.add(release)
            release += other.period
    for t in sorted(points):
        demand = task.wcet + sum(
            -(-t // other.period) * other.wcet for other in higher
        )
        if demand <= interface.sbf(t):
            return True
    return False


def _deadline_points(tasks: TaskSet, horizon: int) -> List[int]:
    points: Set[int] = set()
    for task in tasks:
        deadline = task.deadline
        while deadline <= horizon:
            points.add(deadline)
            deadline += task.period
    return sorted(points)


def _lcm(a: int, b: int) -> int:
    return a * b // math.gcd(a, b)
