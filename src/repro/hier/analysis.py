"""Hierarchical schedulability analysis of partitioned AADL systems.

``analyze_hier`` is the entry point behind ``repro analyze --hier``: it
decides an ARINC-653 style model -- threads bound to virtual processors
whose server parameters (``Period``, ``Execution_Time``) carve up each
physical processor -- without ever flattening partitions onto a full
processor (which would silently over-supply them; the translator
refuses such models for exactly that reason).

The three stages mirror the :data:`repro.obs.schema.HIER_STAGES` spans:

1. ``hier.derive`` -- build the per-partition BDR interfaces and the
   host/partition analytic units (shared with the portfolio's context
   extraction, so both paths reason about the same quantized model);
2. ``hier.check`` -- demand-vs-supply against each partition's
   interface (:mod:`repro.hier.check`), and an exact host-level check
   that every processor can honour its servers' contracts alongside
   its directly-bound threads;
3. ``hier.flatten`` -- for partitions the (sufficient) interface check
   cannot settle, the supply-aware flattened simulation
   (:mod:`repro.hier.flatten`) decides exactly for the end-of-period
   server semantics; a window past the cap demotes to UNKNOWN rather
   than truncating.

The verdict is the conjunction over partitions and hosts, packaged as
an ordinary :class:`~repro.analysis.schedulability.AnalysisResult` so
the CLI, batch pool and report consume it unchanged.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.aadl.instance import SystemInstance
from repro.aadl.properties import EXECUTION_TIME, PERIOD, SchedulingProtocol
from repro.analysis.schedulability import AnalysisResult, Verdict
from repro.engine.result import ExplorationResult
from repro.engine.stats import EngineStats
from repro.errors import HierError
from repro.hier.check import check_partition
from repro.hier.flatten import DEFAULT_MAX_WINDOW, simulate_partition
from repro.hier.interface import BdrInterface
from repro.sched.simulation import simulate
from repro.translate.quantum import TimingQuantizer


def derive_interfaces(
    instance: SystemInstance,
    quantizer: Optional[TimingQuantizer] = None,
    *,
    fault: Optional[str] = None,
) -> Dict[str, BdrInterface]:
    """BDR interfaces of every thread-bearing virtual processor, keyed
    by qualified name.  ``fault`` injects a registered
    :data:`~repro.hier.interface.HIER_FAULTS` derivation bug (oracle
    self-tests only)."""
    quantizer = quantizer or TimingQuantizer.natural(instance)
    interfaces: Dict[str, BdrInterface] = {}
    threads = instance.threads()
    for vproc in instance.virtual_processors():
        if not any(t.bound_processor is vproc for t in threads):
            continue
        name = vproc.qualified_name
        period_tv = vproc.property_time(PERIOD)
        budget_tv = vproc.property_time(EXECUTION_TIME)
        if period_tv is None or budget_tv is None:
            raise HierError(
                f"virtual processor {name}: missing server Period or "
                f"Execution_Time"
            )
        interfaces[name] = BdrInterface.from_server(
            name,
            quantizer.quanta_ceil(period_tv),
            quantizer.quanta_floor(budget_tv),
            fault=fault,
        )
    return interfaces


def analyze_hier(
    instance: SystemInstance,
    *,
    quantizer: Optional[TimingQuantizer] = None,
    max_window: int = DEFAULT_MAX_WINDOW,
    fault: Optional[str] = None,
    steady_mode: bool = False,
) -> AnalysisResult:
    """Decide a partitioned system through its BDR interfaces.

    ``steady_mode`` waives the multi-modal applicability bar for an
    instance the caller pinned to one mode (the verdict then covers
    that steady mode only)."""
    from repro.obs.tracer import current_tracer

    tracer = current_tracer()
    start = time.perf_counter()
    # Deferred: portfolio.context imports repro.hier.interface.
    from repro.portfolio.context import build_context

    with tracer.span("hier.derive", root=instance.qualified_name) as span:
        context = build_context(
            instance, quantizer=quantizer, steady_mode=steady_mode
        )
        if not context.applicable:
            raise HierError(
                f"hierarchical analysis inapplicable: "
                f"{context.inapplicable}"
            )
        partition_units = [
            u for u in context.units if u.interface is not None
        ]
        host_units = [u for u in context.units if u.interface is None]
        if not partition_units:
            raise HierError(
                "model has no thread-bearing virtual processors; use the "
                "plain analysis"
            )
        if fault:
            faulty = derive_interfaces(
                instance, context.quantizer, fault=fault
            )
            for unit in partition_units:
                unit.interface = faulty[unit.processor]
        span.set(
            partitions=len(partition_units),
            hosts=len(host_units),
            interfaces=",".join(
                u.interface.token for u in partition_units
            ),
        )

    trail: List[str] = []
    verdicts: List[Verdict] = []
    partitions_checked = 0
    interface_hits = 0
    sim_escalations = 0

    for unit in partition_units:
        partitions_checked += 1
        with tracer.span("hier.check", partition=unit.processor) as span:
            check = check_partition(
                unit.tasks,
                unit.interface,
                ordering=unit.ordering,
                edf=(
                    unit.protocol
                    is SchedulingProtocol.EARLIEST_DEADLINE_FIRST
                ),
            )
            span.set(
                interface=unit.interface.token,
                ok=None if check is None else check.ok,
            )
        if check is not None and check.ok:
            interface_hits += 1
            verdicts.append(Verdict.SCHEDULABLE)
            trail.append(
                f"hier: {unit.processor} schedulable by interface "
                f"({check.detail})"
            )
            continue
        # Interface conservatism (or no analytic test for the policy):
        # the flattened supply-aware run decides exactly for the
        # end-of-period server semantics.
        sim_escalations += 1
        with tracer.span("hier.flatten", partition=unit.processor) as span:
            run = simulate_partition(
                unit.tasks,
                unit.interface.period,
                unit.interface.budget,
                policy=unit.sim_policy or "rate",
                max_window=max_window,
            )
            span.set(horizon=run.horizon, schedulable=run.schedulable)
        if run.schedulable is None:
            verdicts.append(Verdict.UNKNOWN)
            trail.append(
                f"hier: {unit.processor} window {run.horizon} exceeds "
                f"cap {max_window}; verdict unknown"
            )
        elif run.schedulable:
            verdicts.append(Verdict.SCHEDULABLE)
            trail.append(
                f"hier: {unit.processor} schedulable by flattened "
                f"simulation (horizon {run.horizon})"
            )
        else:
            name, miss_t = run.misses[0]
            verdicts.append(Verdict.UNSCHEDULABLE)
            trail.append(
                f"hier: {unit.processor} unschedulable -- {name} misses "
                f"at t={miss_t} under server "
                f"({unit.interface.period},{unit.interface.budget})"
            )

    for unit in host_units:
        with tracer.span("hier.check", host=unit.processor) as span:
            if unit.tasks.utilization > 1.0 + 1e-12:
                verdicts.append(Verdict.UNSCHEDULABLE)
                trail.append(
                    f"hier: host {unit.processor} over-utilized "
                    f"(U={unit.tasks.utilization:.4f} > 1)"
                )
                span.set(ok=False)
                continue
            sim = simulate(unit.tasks, policy=unit.sim_policy or "rate")
            span.set(ok=sim.schedulable)
        if sim.schedulable:
            verdicts.append(Verdict.SCHEDULABLE)
            trail.append(
                f"hier: host {unit.processor} honours its servers "
                f"(clean run over {sim.horizon})"
            )
        else:
            name, miss_t = sim.misses[0]
            verdicts.append(Verdict.UNSCHEDULABLE)
            trail.append(
                f"hier: host {unit.processor} unschedulable -- {name} "
                f"misses at t={miss_t}"
            )

    verdict = Verdict.combine(verdicts)
    elapsed = time.perf_counter() - start
    stats = EngineStats(
        strategy="hier",
        states=0,
        transitions=0,
        expanded=0,
        elapsed=elapsed,
        frontier_peak=0,
        parent_map_bytes=0,
        cache_hits=0,
        cache_misses=0,
        cache_evictions=0,
        limit_hit=None,
        tier_hits={"hier": 1} if verdict is not Verdict.UNKNOWN else {},
        hier_partitions_checked=partitions_checked,
        hier_interface_hits=interface_hits,
        hier_sim_escalations=sim_escalations,
    )
    exploration = ExplorationResult(
        None,  # type: ignore[arg-type]
        num_states=0,
        num_transitions=0,
        deadlock_states=[],
        target_states=[],
        completed=verdict is not Verdict.UNKNOWN,
        elapsed=elapsed,
        parent={},
        transitions=None,
        stats=stats,
    )
    return AnalysisResult(
        verdict,
        None,
        exploration,
        None,
        decided_by="hier",
        tier_trail=trail,
        quantizer=context.quantizer,
    )
