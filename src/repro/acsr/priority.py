"""The ACSR preemption relation and the prioritized transition relation.

The preemption relation ``<.`` (paper S3) compares two candidate steps of
the *same* state; the prioritized transition relation removes every step
that some coenabled step preempts.

Rules (with the convention that an action accesses every resource outside
its set at priority 0):

* **Action vs action** -- ``A1 <. A2`` iff every resource of ``A1`` also
  appears in ``A2`` with greater-or-equal priority and at least one
  resource of ``A2`` has strictly greater priority than in ``A1``.
  Consequently any action with a positive-priority resource preempts the
  idling step ``{}``.
* **Action vs internal event** -- ``A <. (tau, n)`` iff ``n > 0``: a
  pending internal synchronization with positive priority is urgent and
  forbids time progress.
* **Event vs event** -- steps with the *same* label (same name and
  direction; all ``tau`` labels count as one label regardless of ``via``)
  compare by priority: ``(a, p) <. (a, q)`` iff ``q > p``.

No other pairs are related; the relation is irreflexive and transitive on
each comparable family.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.acsr.events import EventLabel
from repro.acsr.resources import Action

Transition = Tuple[object, object]


def preempts(low: object, high: object) -> bool:
    """True when ``high`` preempts ``low`` (written ``low <. high``)."""
    low_is_action = isinstance(low, Action)
    high_is_action = isinstance(high, Action)

    if low_is_action and high_is_action:
        return _action_preempts(low, high)

    if low_is_action and isinstance(high, EventLabel):
        return high.is_tau and high.int_priority() > 0

    if isinstance(low, EventLabel) and isinstance(high, EventLabel):
        if low.is_tau and high.is_tau:
            return high.int_priority() > low.int_priority()
        if (
            not low.is_tau
            and not high.is_tau
            and low.name == high.name
            and low.direction == high.direction
        ):
            return high.int_priority() > low.int_priority()
        return False

    return False


def _action_preempts(low: Action, high: Action) -> bool:
    if not low.resources <= high.resources:
        return False
    strict = False
    for resource, high_pri in high.pairs:
        low_pri = low.priority_of(resource)
        if high_pri < low_pri:
            return False
        if high_pri > low_pri:
            strict = True
    # All shared resources checked via high's pairs because rho(low) is a
    # subset of rho(high); strictness may come from any resource of high.
    return strict


def prioritized(
    steps: Sequence[Transition],
) -> Tuple[Transition, ...]:
    """Remove every step whose label is preempted by a coenabled step."""
    labels = [label for label, _ in steps]
    keep: List[Transition] = []
    for i, (label, succ) in enumerate(steps):
        dominated = False
        for j, other in enumerate(labels):
            if i != j and preempts(label, other):
                dominated = True
                break
        if not dominated:
            keep.append((label, succ))
    return tuple(keep)


def prioritized_transitions(term, env) -> Tuple[Transition, ...]:
    """Prioritized steps of a closed term (convenience wrapper)."""
    from repro.acsr.semantics import transitions

    return prioritized(transitions(term, env))
