"""Unprioritized operational semantics of ACSR.

``transitions(term, env)`` computes the outgoing steps of a *closed* term:
a tuple of ``(label, successor)`` pairs where ``label`` is either a ground
:class:`~repro.acsr.resources.Action` (timed step, one quantum) or a ground
:class:`~repro.acsr.events.EventLabel` (instantaneous step).

Rules implemented (paper S3; Lee, Bremond-Gregoire & Gerber 1994):

* prefixes contribute their single step;
* choice is the union of the summands' steps;
* parallel composition interleaves event steps, synchronizes matching
  send/receive pairs into ``tau@name`` steps with summed priority, and --
  rule (Par3) -- lets *all* components perform timed steps simultaneously
  provided their resource sets are pairwise disjoint (time progress is
  global: a component with no timed step blocks time for the whole
  composition);
* restriction deletes unsynchronized steps on restricted names;
* resource closure extends timed steps with priority-0 claims;
* temporal scopes route exception/timeout/interrupt exits;
* process references unfold through the definition environment (with
  detection of unguarded recursion).

The function is pure; memoization lives in
:class:`repro.acsr.definitions.ClosedSystem`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.errors import AcsrDefinitionError, AcsrSemanticsError
from repro.acsr.events import EventLabel
from repro.acsr.resources import Action
from repro.acsr.terms import (
    ActionPrefix,
    Choice,
    Close,
    EventPrefix,
    Guard,
    Hide,
    Nil,
    Parallel,
    ProcRef,
    Restrict,
    Scope,
    Term,
    parallel,
    scope,
)

Transition = Tuple[object, Term]  # (Action | EventLabel, successor)


def transitions(term: Term, env) -> Tuple[Transition, ...]:
    """All unprioritized transitions of a closed term."""
    return _trans(term, env, frozenset())


def _trans(
    term: Term, env, active: FrozenSet[ProcRef]
) -> Tuple[Transition, ...]:
    # Subterm memoization: during exploration the same component terms
    # recur under thousands of parent states, and recomputing their
    # steps dominated the profile (see DESIGN.md / EXPERIMENTS.md).  A
    # *completed* computation is independent of the cycle-guard set
    # ``active`` (the guard only detects unguarded recursion, which
    # raises instead of returning), so caching finished results by term
    # is sound.  Terms are interned, making the dict lookup an identity
    # hash.  The cache is the environment's explicit
    # :class:`~repro.engine.cache.TransitionCache` (``env.trans_cache``),
    # created in ``ProcessEnv.__init__`` -- observable and clearable,
    # not a monkey-patched attribute.
    cache = env.trans_cache
    cached = cache.get(term)
    if cached is not None:
        return cached
    result = _trans_uncached(term, env, active)
    cache.put(term, result)
    return result


def _trans_uncached(
    term: Term, env, active: FrozenSet[ProcRef]
) -> Tuple[Transition, ...]:
    if isinstance(term, Nil):
        return ()
    if isinstance(term, ActionPrefix):
        if not term.action.is_ground:
            raise AcsrSemanticsError(
                f"open action in closed-term semantics: {term.action!r}"
            )
        return ((term.action, term.continuation),)
    if isinstance(term, EventPrefix):
        if not term.label.is_ground:
            raise AcsrSemanticsError(
                f"open event priority in closed-term semantics: {term.label!r}"
            )
        return ((term.label, term.continuation),)
    if isinstance(term, Choice):
        return _trans_choice(term, env, active)
    if isinstance(term, Parallel):
        return _trans_parallel(term, env, active)
    if isinstance(term, Restrict):
        return _trans_restrict(term, env, active)
    if isinstance(term, Close):
        return _trans_close(term, env, active)
    if isinstance(term, Hide):
        return _trans_hide(term, env, active)
    if isinstance(term, Scope):
        return _trans_scope(term, env, active)
    if isinstance(term, ProcRef):
        if term in active:
            raise AcsrDefinitionError(
                f"unguarded recursion through {term.name}"
                + (f"{term.args}" if term.args else "")
            )
        body = env.unfold(term)
        return _trans(body, env, active | {term})
    if isinstance(term, Guard):
        raise AcsrSemanticsError(
            "guard survived instantiation; semantics requires closed terms"
        )
    raise AcsrSemanticsError(f"unknown term kind {type(term).__name__}")


def _dedup(pairs: List[Transition]) -> Tuple[Transition, ...]:
    seen: Dict[Tuple[object, Term], None] = {}
    for pair in pairs:
        seen.setdefault(pair, None)
    return tuple(seen)


def _trans_choice(
    term: Choice, env, active: FrozenSet[ProcRef]
) -> Tuple[Transition, ...]:
    result: List[Transition] = []
    for child in term.children:
        result.extend(_trans(child, env, active))
    return _dedup(result)


def _with_child(
    children: Tuple[Term, ...], index: int, successor: Term
) -> Term:
    """Parallel composition with one child replaced.

    Fast path for the dominant case (profiling: successor construction
    was the second-largest cost): the untouched children are already in
    canonical order, so a non-Parallel successor only needs a binary-
    search insertion instead of the generic flatten-and-sort.
    """
    if isinstance(successor, Parallel):
        return parallel(
            *(children[:index] + (successor,) + children[index + 1 :])
        )
    rest = list(children[:index]) + list(children[index + 1 :])
    sid = successor._id
    lo, hi = 0, len(rest)
    while lo < hi:
        mid = (lo + hi) // 2
        if rest[mid]._id < sid:
            lo = mid + 1
        else:
            hi = mid
    rest.insert(lo, successor)
    if len(rest) == 1:
        return rest[0]
    return Parallel(tuple(rest))


def _trans_parallel(
    term: Parallel, env, active: FrozenSet[ProcRef]
) -> Tuple[Transition, ...]:
    children = term.children
    n = len(children)
    per_child = [_trans(child, env, active) for child in children]

    result: List[Transition] = []

    # Event interleaving: one component moves, the rest stand still.
    event_steps: List[List[Tuple[EventLabel, Term]]] = []
    timed_steps: List[List[Tuple[Action, Term]]] = []
    for trans in per_child:
        events = [
            (label, succ)
            for label, succ in trans
            if isinstance(label, EventLabel)
        ]
        timed = [
            (label, succ) for label, succ in trans if isinstance(label, Action)
        ]
        event_steps.append(events)
        timed_steps.append(timed)

    for i in range(n):
        for label, succ in event_steps[i]:
            result.append((label, _with_child(children, i, succ)))

    # CCS-style synchronization between any two distinct components.
    # Events are indexed by (name, direction) so only complementary
    # pairs are examined (the pairwise label scan was a profile hotspot
    # on event-heavy states).
    by_name: List[dict] = []
    for trans in event_steps:
        index: dict = {}
        for label, succ in trans:
            if not label.is_tau:
                index.setdefault((label.name, label.direction), []).append(
                    (label, succ)
                )
        by_name.append(index)
    from repro.acsr.events import IN, OUT

    for i in range(n):
        if not by_name[i]:
            continue
        for j in range(i + 1, n):
            if not by_name[j]:
                continue
            for (name, direction), senders in by_name[i].items():
                partners = by_name[j].get(
                    (name, IN if direction == OUT else OUT)
                )
                if not partners:
                    continue
                for label_i, succ_i in senders:
                    for label_j, succ_j in partners:
                        tau = label_i.synchronize(label_j)
                        rest = list(children)
                        rest[i] = succ_i
                        rest[j] = succ_j
                        result.append((tau, parallel(*rest)))

    # (Par3): simultaneous timed steps with pairwise disjoint resources.
    # Every component must take a timed step; a component with none blocks
    # global time progress.
    if all(timed_steps):
        combos: List[Tuple[Action, List[Term]]] = [(None, [])]  # type: ignore[list-item]
        for options in timed_steps:
            new_combos: List[Tuple[Action, List[Term]]] = []
            for acc_action, acc_succs in combos:
                for label, succ in options:
                    if acc_action is None:
                        merged = label
                    elif acc_action.disjoint(label):
                        merged = acc_action.union(label)
                    else:
                        continue
                    new_combos.append((merged, acc_succs + [succ]))
            combos = new_combos
            if not combos:
                break
        for merged, succs in combos:
            result.append((merged, parallel(*succs)))

    return _dedup(result)


def _trans_restrict(
    term: Restrict, env, active: FrozenSet[ProcRef]
) -> Tuple[Transition, ...]:
    result: List[Transition] = []
    for label, succ in _trans(term.body, env, active):
        if (
            isinstance(label, EventLabel)
            and not label.is_tau
            and label.name in term.names
        ):
            continue
        result.append((label, Restrict(succ, term.names)))
    return _dedup(result)


def _trans_close(
    term: Close, env, active: FrozenSet[ProcRef]
) -> Tuple[Transition, ...]:
    result: List[Transition] = []
    for label, succ in _trans(term.body, env, active):
        wrapped = Close(succ, term.resources)
        if isinstance(label, Action):
            result.append((label.closed_over(term.resources), wrapped))
        else:
            result.append((label, wrapped))
    return _dedup(result)


def _trans_hide(
    term: Hide, env, active: FrozenSet[ProcRef]
) -> Tuple[Transition, ...]:
    result: List[Transition] = []
    for label, succ in _trans(term.body, env, active):
        wrapped = Hide(succ, term.resources)
        if isinstance(label, Action):
            kept = Action(
                tuple(
                    (res, pri)
                    for res, pri in label.pairs
                    if res not in term.resources
                )
            )
            result.append((kept, wrapped))
        else:
            result.append((label, wrapped))
    return _dedup(result)


def _trans_scope(
    term: Scope, env, active: FrozenSet[ProcRef]
) -> Tuple[Transition, ...]:
    result: List[Transition] = []
    for label, succ in _trans(term.body, env, active):
        if isinstance(label, Action):
            new_bound = None if term.bound is None else term.bound - 1
            result.append(
                (
                    label,
                    scope(
                        succ,
                        bound=new_bound,
                        exception=term.exception,
                        success=term.success,
                        timeout=term.timeout,
                        interrupt=term.interrupt,
                    ),
                )
            )
        else:
            if (
                term.exception is not None
                and label.is_output
                and label.name == term.exception
            ):
                # Voluntary exit: the exception event is observable and
                # control transfers to the success handler.
                result.append((label, term.success))
            else:
                result.append(
                    (
                        label,
                        scope(
                            succ,
                            bound=term.bound,
                            exception=term.exception,
                            success=term.success,
                            timeout=term.timeout,
                            interrupt=term.interrupt,
                        ),
                    )
                )
    # Involuntary exit: any initial step of the interrupt handler.
    result.extend(_trans(term.interrupt, env, active))
    return _dedup(result)
