"""Integer and boolean expressions over process parameters.

ACSR process definitions may be *parameterized* (paper S3, "Parameterized
processes"): dynamic parameters such as the accumulated execution time ``e``
and the elapsed time ``t`` of Figure 5 are ordinary integers threaded
through recursion.  Inside a definition body, priorities, reference
arguments and guards may mention the parameters symbolically; everything is
evaluated to a constant when the definition is unfolded, which keeps the
operational semantics first-order and the state space finite.

The expression language is deliberately tiny: integer constants, parameter
references, ``+ - * // % min max``, comparisons, and boolean combinators.
Expressions are immutable and support operator overloading so translation
code reads naturally::

    e, t = var("e"), var("t")
    guard_expr = (e < cmax - 1) & (t < deadline)
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Mapping, Tuple, Union

from repro.errors import AcsrEvaluationError

_INT_OPS: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: _checked_div(a, b),
    "%": lambda a, b: _checked_mod(a, b),
    "min": min,
    "max": max,
}

_CMP_OPS: Dict[str, Callable[[int, int], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
}

_BOOL_OPS: Dict[str, Callable[[bool, bool], bool]] = {
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
}


def _checked_div(a: int, b: int) -> int:
    if b == 0:
        raise AcsrEvaluationError("division by zero in priority expression")
    return a // b


def _checked_mod(a: int, b: int) -> int:
    if b == 0:
        raise AcsrEvaluationError("modulo by zero in priority expression")
    return a % b


class Expr:
    """Base class for integer-valued expressions."""

    __slots__ = ()

    def evaluate(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError

    def free_params(self) -> FrozenSet[str]:
        raise NotImplementedError

    def key(self) -> tuple:
        """Hashable structural identity.

        Expression objects themselves compare by identity (see the NOTE
        below); term interning uses ``key()`` instead, so two
        structurally equal expressions built independently -- e.g. by
        the translator for two replicated threads -- produce the *same*
        hash-consed :class:`~repro.acsr.terms.Guard` / event label.
        Symmetry detection (:mod:`repro.engine.reduce`) relies on this:
        renamed-equal definitions must be pointer-equal.
        """
        raise NotImplementedError

    # -- operator sugar ------------------------------------------------

    def __add__(self, other: "ExprLike") -> "Expr":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "Expr":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "Expr":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Expr":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "Expr":
        return BinOp("*", as_expr(other), self)

    def __floordiv__(self, other: "ExprLike") -> "Expr":
        return BinOp("//", self, as_expr(other))

    def __mod__(self, other: "ExprLike") -> "Expr":
        return BinOp("%", self, as_expr(other))

    def __lt__(self, other: "ExprLike") -> "BoolExpr":
        return Cmp("<", self, as_expr(other))

    def __le__(self, other: "ExprLike") -> "BoolExpr":
        return Cmp("<=", self, as_expr(other))

    def __gt__(self, other: "ExprLike") -> "BoolExpr":
        return Cmp(">", self, as_expr(other))

    def __ge__(self, other: "ExprLike") -> "BoolExpr":
        return Cmp(">=", self, as_expr(other))

    # NOTE: __eq__/__ne__ keep normal identity semantics so expressions can
    # live in sets and dicts; use .eq()/.ne() to build comparison nodes.

    def eq(self, other: "ExprLike") -> "BoolExpr":
        """Build the comparison node ``self == other``."""
        return Cmp("==", self, as_expr(other))

    def ne(self, other: "ExprLike") -> "BoolExpr":
        """Build the comparison node ``self != other``."""
        return Cmp("!=", self, as_expr(other))


ExprLike = Union[Expr, int, str]


class Const(Expr):
    """Integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise AcsrEvaluationError(f"Const requires an int, got {value!r}")
        self.value = value

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def free_params(self) -> FrozenSet[str]:
        return frozenset()

    def key(self) -> tuple:
        return ("const", self.value)

    def __repr__(self) -> str:
        return f"Const({self.value})"

    def __str__(self) -> str:
        return str(self.value)


class Param(Expr):
    """Reference to a process parameter by name."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise AcsrEvaluationError(f"invalid parameter name {name!r}")
        self.name = name

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise AcsrEvaluationError(
                f"unbound parameter {self.name!r}; bound: "
                + ", ".join(sorted(env)) if env else
                f"unbound parameter {self.name!r}; no parameters in scope"
            ) from None

    def free_params(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def key(self) -> tuple:
        return ("param", self.name)

    def __repr__(self) -> str:
        return f"Param({self.name!r})"

    def __str__(self) -> str:
        return self.name


class BinOp(Expr):
    """Binary integer operator."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _INT_OPS:
            raise AcsrEvaluationError(f"unknown integer operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, int]) -> int:
        return _INT_OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def free_params(self) -> FrozenSet[str]:
        return self.left.free_params() | self.right.free_params()

    def key(self) -> tuple:
        return ("binop", self.op, self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {self.op} {self.right})"


class BoolExpr:
    """Base class for boolean guard expressions."""

    __slots__ = ()

    def evaluate(self, env: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def free_params(self) -> FrozenSet[str]:
        raise NotImplementedError

    def key(self) -> tuple:
        """Hashable structural identity (see :meth:`Expr.key`)."""
        raise NotImplementedError

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return BoolOp("and", self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return BoolOp("or", self, other)

    def __invert__(self) -> "BoolExpr":
        return Not(self)


class Cmp(BoolExpr):
    """Comparison of two integer expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _CMP_OPS:
            raise AcsrEvaluationError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return _CMP_OPS[self.op](
            self.left.evaluate(env), self.right.evaluate(env)
        )

    def free_params(self) -> FrozenSet[str]:
        return self.left.free_params() | self.right.free_params()

    def key(self) -> tuple:
        return ("cmp", self.op, self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"Cmp({self.op!r}, {self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class BoolOp(BoolExpr):
    """Conjunction or disjunction of guards."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: BoolExpr, right: BoolExpr) -> None:
        if op not in _BOOL_OPS:
            raise AcsrEvaluationError(f"unknown boolean operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return _BOOL_OPS[self.op](
            self.left.evaluate(env), self.right.evaluate(env)
        )

    def free_params(self) -> FrozenSet[str]:
        return self.left.free_params() | self.right.free_params()

    def key(self) -> tuple:
        return ("boolop", self.op, self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"BoolOp({self.op!r}, {self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class Not(BoolExpr):
    """Guard negation."""

    __slots__ = ("inner",)

    def __init__(self, inner: BoolExpr) -> None:
        self.inner = inner

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return not self.inner.evaluate(env)

    def free_params(self) -> FrozenSet[str]:
        return self.inner.free_params()

    def key(self) -> tuple:
        return ("not", self.inner.key())

    def __repr__(self) -> str:
        return f"Not({self.inner!r})"

    def __str__(self) -> str:
        return f"(not {self.inner})"


class TrueExpr(BoolExpr):
    """The always-true guard."""

    __slots__ = ()

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return True

    def free_params(self) -> FrozenSet[str]:
        return frozenset()

    def key(self) -> tuple:
        return ("true",)

    def __repr__(self) -> str:
        return "TrueExpr()"

    def __str__(self) -> str:
        return "true"


TRUE = TrueExpr()


def const(value: int) -> Const:
    """Integer literal expression."""
    return Const(value)


def var(name: str) -> Param:
    """Parameter reference expression."""
    return Param(name)


def as_expr(value: ExprLike) -> Expr:
    """Coerce ``int`` to :class:`Const` and ``str`` to :class:`Param`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise AcsrEvaluationError("booleans are not integer expressions")
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Param(value)
    raise AcsrEvaluationError(f"cannot coerce {value!r} to an expression")


def minimum(left: ExprLike, right: ExprLike) -> Expr:
    """``min`` of two expressions."""
    return BinOp("min", as_expr(left), as_expr(right))


def maximum(left: ExprLike, right: ExprLike) -> Expr:
    """``max`` of two expressions."""
    return BinOp("max", as_expr(left), as_expr(right))
