"""Parameterized process definitions and closed systems.

A :class:`ProcessEnv` holds named, parameterized process definitions
(``Name(p1,...,pk) = body``) and memoizes their unfolding.  A
:class:`ClosedSystem` pairs an environment with a closed root term and is
the unit of analysis consumed by :mod:`repro.versa`: it exposes the
(memoized) unprioritized and prioritized transition relations.

Finite-stateness: as in the paper (S3, "Parameterized processes"), the
translation only produces definitions whose parameters are bounded by
guards, so the set of reachable ``ProcRef`` instantiations -- and hence
the state space -- is finite.  The environment does not verify boundedness
statically; the explorer enforces a state budget instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import AcsrDefinitionError
from repro.engine.cache import TransitionCache
from repro.acsr.expressions import Expr
from repro.acsr.terms import ProcRef, Term


class ProcessDef:
    """A named process definition ``name(params) = body``.

    ``body`` is an open term whose free parameters must be a subset of
    ``params``.
    """

    __slots__ = ("name", "params", "body")

    def __init__(self, name: str, params: Sequence[str], body: Term) -> None:
        if not isinstance(name, str) or not name:
            raise AcsrDefinitionError(f"invalid process name {name!r}")
        params = tuple(params)
        if len(set(params)) != len(params):
            raise AcsrDefinitionError(
                f"duplicate parameter names in definition of {name}"
            )
        if not isinstance(body, Term):
            raise AcsrDefinitionError(
                f"body of {name} must be a Term, got {body!r}"
            )
        unbound = body.free_params() - set(params)
        if unbound:
            raise AcsrDefinitionError(
                f"definition of {name} mentions unbound parameters: "
                + ", ".join(sorted(unbound))
            )
        self.name = name
        self.params = params
        self.body = body

    @property
    def arity(self) -> int:
        return len(self.params)

    def unfold(self, args: Tuple[int, ...]) -> Term:
        """Instantiate the body with concrete arguments."""
        if len(args) != len(self.params):
            raise AcsrDefinitionError(
                f"{self.name} expects {len(self.params)} argument(s), "
                f"got {len(args)}"
            )
        env = dict(zip(self.params, args))
        return self.body.instantiate(env)

    def __repr__(self) -> str:
        return f"ProcessDef({self.name!r}, params={self.params!r})"


class ProcessEnv:
    """A mutable collection of process definitions with memoized unfolding.

    The environment also owns the semantics-level transition memo
    (``trans_cache``): subterm transition sets depend only on the term
    and the definitions, so the cache lives here and is shared by every
    :class:`ClosedSystem` built over this environment.
    """

    __slots__ = ("_defs", "_unfold_cache", "trans_cache")

    def __init__(self) -> None:
        self._defs: Dict[str, ProcessDef] = {}
        self._unfold_cache: Dict[ProcRef, Term] = {}
        #: explicit subterm-transition memo (was a monkey-patched
        #: ``_trans_memo`` dict); consulted by ``repro.acsr.semantics``.
        self.trans_cache = TransitionCache(name="semantics")

    def define(
        self,
        name: str,
        params: Sequence[str],
        body: Term,
        *,
        allow_redefine: bool = False,
    ) -> ProcessDef:
        """Add a definition; redefinition is an error unless opted into."""
        if name in self._defs and not allow_redefine:
            raise AcsrDefinitionError(f"process {name!r} is already defined")
        definition = ProcessDef(name, params, body)
        self._defs[name] = definition
        if allow_redefine:
            # Conservatively drop memoized unfoldings of the old body and
            # every memoized transition set (they may mention the old
            # definition through unfolded subterms).
            self._unfold_cache = {
                ref: term
                for ref, term in self._unfold_cache.items()
                if ref.name != name
            }
            self.trans_cache.clear()
        return definition

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def __getitem__(self, name: str) -> ProcessDef:
        try:
            return self._defs[name]
        except KeyError:
            raise AcsrDefinitionError(f"unknown process {name!r}") from None

    def __iter__(self) -> Iterator[ProcessDef]:
        return iter(self._defs.values())

    def __len__(self) -> int:
        return len(self._defs)

    def names(self) -> List[str]:
        return list(self._defs)

    def unfold(self, ref: ProcRef) -> Term:
        """Instantiated body for a closed process reference (memoized)."""
        cached = self._unfold_cache.get(ref)
        if cached is not None:
            return cached
        for arg in ref.args:
            if isinstance(arg, Expr):
                raise AcsrDefinitionError(
                    f"cannot unfold open reference {ref!r}"
                )
        term = self[ref.name].unfold(ref.args)  # type: ignore[arg-type]
        self._unfold_cache[ref] = term
        return term

    def validate(self) -> None:
        """Check that every reference in every body resolves with the right
        arity (cheap static sanity pass)."""
        for definition in self:
            for ref_name, arity in _collect_refs(definition.body):
                if ref_name not in self._defs:
                    raise AcsrDefinitionError(
                        f"{definition.name} references unknown process "
                        f"{ref_name!r}"
                    )
                expected = self._defs[ref_name].arity
                if arity != expected:
                    raise AcsrDefinitionError(
                        f"{definition.name} calls {ref_name} with {arity} "
                        f"argument(s); definition has {expected}"
                    )

    def close(
        self,
        root: Term,
        *,
        validate: bool = True,
        cache_maxsize: Optional[int] = None,
    ) -> "ClosedSystem":
        """Pair the environment with a closed root term for analysis.

        ``cache_maxsize`` bounds the system's step caches (LRU); the
        default ``None`` keeps them unbounded.
        """
        return ClosedSystem(
            self, root, validate=validate, cache_maxsize=cache_maxsize
        )

    def cache_stats(self) -> Dict[str, object]:
        """Counters of the environment-level caches."""
        return {
            "unfold_cache": len(self._unfold_cache),
            "trans_cache": self.trans_cache.stats(),
        }

    def clear_cache(self) -> None:
        """Drop the unfold and transition memos (long-lived sessions)."""
        self._unfold_cache.clear()
        self.trans_cache.clear()


def _collect_refs(term: Term) -> List[Tuple[str, int]]:
    from repro.acsr.terms import (
        ActionPrefix,
        Choice,
        Close,
        EventPrefix,
        Guard,
        Hide,
        Parallel,
        Restrict,
        Scope,
    )

    refs: List[Tuple[str, int]] = []
    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, ProcRef):
            refs.append((node.name, len(node.args)))
        elif isinstance(node, (ActionPrefix, EventPrefix)):
            stack.append(node.continuation)
        elif isinstance(node, (Choice, Parallel)):
            stack.extend(node.children)
        elif isinstance(node, (Restrict, Close, Hide)):
            stack.append(node.body)
        elif isinstance(node, Guard):
            stack.append(node.body)
        elif isinstance(node, Scope):
            stack.extend((node.body, node.success, node.timeout, node.interrupt))
    return refs


class ClosedSystem:
    """A closed ACSR term together with its definition environment.

    This is the object handed to the VERSA-style explorer.  Transition
    computation is memoized per term, which matters: during exploration the
    same subterm configurations recur constantly, and the memo table turns
    the semantics into an amortized table lookup (profiling-first guidance
    from the HPC notes: this *is* the measured hot path).
    """

    __slots__ = ("env", "root", "_step_cache", "_prio_cache")

    def __init__(
        self,
        env: ProcessEnv,
        root: Term,
        *,
        validate: bool = True,
        cache_maxsize: Optional[int] = None,
    ) -> None:
        if not isinstance(root, Term):
            raise AcsrDefinitionError(f"system root must be a Term, got {root!r}")
        if validate:
            if not root.is_closed():
                raise AcsrDefinitionError(
                    "system root must be a closed term; free parameters: "
                    + ", ".join(sorted(root.free_params()))
                )
            env.validate()
        self.env = env
        self.root = root
        self._step_cache = TransitionCache(cache_maxsize, name="steps")
        self._prio_cache = TransitionCache(cache_maxsize, name="prioritized")

    def steps(self, term: Optional[Term] = None) -> Tuple:
        """Unprioritized transitions ``(label, successor)`` of ``term``."""
        from repro.acsr.semantics import transitions

        if term is None:
            term = self.root
        cached = self._step_cache.get(term)
        if cached is None:
            cached = transitions(term, self.env)
            self._step_cache.put(term, cached)
        return cached

    def prioritized_steps(self, term: Optional[Term] = None) -> Tuple:
        """Prioritized transitions of ``term`` (preempted steps removed)."""
        from repro.acsr.priority import prioritized

        if term is None:
            term = self.root
        cached = self._prio_cache.get(term)
        if cached is None:
            cached = prioritized(self.steps(term))
            self._prio_cache.put(term, cached)
        return cached

    def caches(self) -> Tuple[TransitionCache, ...]:
        """Every transition cache feeding this system's successor
        computation (step, prioritization, and the environment's
        semantics memo)."""
        return (self._step_cache, self._prio_cache, self.env.trans_cache)

    def cache_stats(self) -> Dict[str, object]:
        """Sizes and hit/miss/eviction counters of the memo tables.

        The historical size keys (``step_cache``, ``prio_cache``,
        ``unfold_cache``) are preserved; ``detail`` carries the full
        per-cache counters.
        """
        return {
            "step_cache": len(self._step_cache),
            "prio_cache": len(self._prio_cache),
            "trans_cache": len(self.env.trans_cache),
            "unfold_cache": len(self.env._unfold_cache),
            "detail": {
                cache.name: cache.stats() for cache in self.caches()
            },
        }

    def clear_cache(self) -> None:
        """Drop every memo table so long-lived sessions can bound memory.

        Clears the step and prioritization caches of this system plus
        the shared environment caches (semantics memo and unfoldings).
        Subsequent explorations rebuild them on demand.
        """
        self._step_cache.clear()
        self._prio_cache.clear()
        self.env.clear_cache()
