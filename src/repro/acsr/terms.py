"""ACSR process terms.

The term language (paper S3):

* ``NIL`` -- the deadlocked process (no steps at all);
* ``A : P`` -- timed-action prefix (:class:`ActionPrefix`); the empty action
  ``{}`` is the idling step;
* ``(e?,p).P / (e!,p).P / (tau,p).P`` -- event prefix (:class:`EventPrefix`);
* ``P + Q`` -- nondeterministic choice (:class:`Choice`, n-ary, canonical);
* ``P || Q`` -- parallel composition (:class:`Parallel`, n-ary, canonical);
* ``P \\ F`` -- event restriction (:class:`Restrict`): events named in ``F``
  may only occur as internal synchronization steps;
* ``[P]_I`` -- resource closure (:class:`Close`): ``P`` reserves all
  resources of ``I`` it does not use at priority 0;
* ``P dd(b, t, Q, R, S)`` -- temporal scope (:class:`Scope`): ``P`` runs
  inside the scope; output of the exception event ``b`` exits to ``Q``;
  after ``t`` time units control passes to the timeout handler ``R``; at
  any moment an initial step of the interrupt handler ``S`` may seize
  control;
* ``Name(a1,...,ak)`` -- reference to a parameterized process definition
  (:class:`ProcRef`);
* ``[cond] -> P`` -- guard (:class:`Guard`), resolved when the enclosing
  definition is unfolded.

Terms are *hash-consed*: structurally equal terms are the same object, so
state-space exploration can use identity maps and ``Choice``/``Parallel``
children can be canonically sorted.  Python operators: ``P + Q`` builds a
choice and ``P | Q`` a parallel composition.

Open vs closed terms: bodies of process definitions may contain expression
priorities, expression arguments and guards ("open"); the operational
semantics only ever sees closed terms, produced by
:meth:`Term.instantiate`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import AcsrSemanticsError
from repro.acsr.expressions import BoolExpr, Expr, as_expr
from repro.acsr.events import IN, OUT, TAU, EventLabel
from repro.acsr.resources import Action, EMPTY_ACTION, make_action

#: Scope bound meaning "never times out".
INFINITY: Optional[int] = None

_TERM_INTERN: Dict[tuple, "Term"] = {}
_NEXT_ID = itertools.count()


def _intern(key: tuple, build) -> "Term":
    cached = _TERM_INTERN.get(key)
    if cached is not None:
        return cached
    term = build()
    term._id = next(_NEXT_ID)
    _TERM_INTERN[key] = term
    return term


class Term:
    """Base class of all ACSR process terms (interned, immutable)."""

    __slots__ = ("_id",)

    # Identity semantics: interning guarantees structural equality implies
    # object identity, so the default object __eq__/__hash__ are correct
    # and fast.

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        """Evaluate all expressions against ``env``, producing a closed term."""
        raise NotImplementedError

    def free_params(self) -> frozenset:
        """Names of process parameters occurring free in the term."""
        raise NotImplementedError

    def is_closed(self) -> bool:
        """True when the term contains no free parameters or guards."""
        return not self.free_params() and not self._has_guard()

    def _has_guard(self) -> bool:
        return False

    # -- operator sugar --------------------------------------------------

    def __add__(self, other: "Term") -> "Term":
        return choice(self, other)

    def __or__(self, other: "Term") -> "Term":
        return parallel(self, other)

    def __str__(self) -> str:
        from repro.acsr.printer import format_term

        return format_term(self)


class Nil(Term):
    """The deadlocked process: no transitions of any kind."""

    __slots__ = ()

    def __new__(cls) -> "Nil":
        return _intern(("nil",), lambda: object.__new__(cls))

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        return self

    def free_params(self) -> frozenset:
        return frozenset()

    def __repr__(self) -> str:
        return "NIL"


NIL = Nil()


class ActionPrefix(Term):
    """``A : P`` -- perform timed action ``A`` for one quantum, then ``P``."""

    __slots__ = ("action", "continuation")

    def __new__(cls, action_: Action, continuation: Term) -> "ActionPrefix":
        if not isinstance(action_, Action):
            raise AcsrSemanticsError(
                f"ActionPrefix requires an Action, got {action_!r}"
            )
        if not isinstance(continuation, Term):
            raise AcsrSemanticsError(
                f"ActionPrefix continuation must be a Term, got {continuation!r}"
            )
        key = ("act", action_, continuation)

        def build() -> "ActionPrefix":
            self = object.__new__(cls)
            self.action = action_
            self.continuation = continuation
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        return ActionPrefix(
            self.action.instantiate(env), self.continuation.instantiate(env)
        )

    def free_params(self) -> frozenset:
        return self.action.free_params() | self.continuation.free_params()

    def _has_guard(self) -> bool:
        return self.continuation._has_guard()

    def __repr__(self) -> str:
        return f"ActionPrefix({self.action!r}, {self.continuation!r})"


class EventPrefix(Term):
    """``(e,p).P`` -- perform an instantaneous event step, then ``P``."""

    __slots__ = ("label", "continuation")

    def __new__(cls, label: EventLabel, continuation: Term) -> "EventPrefix":
        if not isinstance(label, EventLabel):
            raise AcsrSemanticsError(
                f"EventPrefix requires an EventLabel, got {label!r}"
            )
        if not isinstance(continuation, Term):
            raise AcsrSemanticsError(
                f"EventPrefix continuation must be a Term, got {continuation!r}"
            )
        key = ("evt", label, continuation)

        def build() -> "EventPrefix":
            self = object.__new__(cls)
            self.label = label
            self.continuation = continuation
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        return EventPrefix(
            self.label.instantiate(env), self.continuation.instantiate(env)
        )

    def free_params(self) -> frozenset:
        return self.label.free_params() | self.continuation.free_params()

    def _has_guard(self) -> bool:
        return self.continuation._has_guard()

    def __repr__(self) -> str:
        return f"EventPrefix({self.label!r}, {self.continuation!r})"


def _flatten(cls: type, children: Iterable[Term]) -> List[Term]:
    flat: List[Term] = []
    for child in children:
        if not isinstance(child, Term):
            raise AcsrSemanticsError(f"expected a Term, got {child!r}")
        if isinstance(child, cls):
            flat.extend(child.children)
        else:
            flat.append(child)
    return flat


class Choice(Term):
    """N-ary nondeterministic choice ``P1 + ... + Pn`` (canonicalized).

    Construction flattens nested choices, removes duplicates and ``NIL``
    summands (``NIL`` is the unit of ``+``), and sorts children by intern
    id.  A choice never has fewer than two children -- the smart
    constructor :func:`choice` collapses degenerate cases.
    """

    __slots__ = ("children",)

    def __new__(cls, children: Tuple[Term, ...]) -> "Choice":
        key = ("choice",) + tuple(children)

        def build() -> "Choice":
            self = object.__new__(cls)
            self.children = children
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        return choice(*(child.instantiate(env) for child in self.children))

    def free_params(self) -> frozenset:
        result: frozenset = frozenset()
        for child in self.children:
            result |= child.free_params()
        return result

    def _has_guard(self) -> bool:
        return any(child._has_guard() for child in self.children)

    def __repr__(self) -> str:
        return f"Choice({self.children!r})"


class Parallel(Term):
    """N-ary parallel composition ``P1 || ... || Pn`` (canonicalized).

    Children are flattened and sorted; ``NIL`` components are *kept*
    because a ``NIL`` component refuses time progress and therefore
    changes the behaviour of the composition (this is precisely how
    deadline violations deadlock the model, paper S5).
    """

    __slots__ = ("children",)

    def __new__(cls, children: Tuple[Term, ...]) -> "Parallel":
        key = ("par",) + tuple(children)

        def build() -> "Parallel":
            self = object.__new__(cls)
            self.children = children
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        return parallel(*(child.instantiate(env) for child in self.children))

    def free_params(self) -> frozenset:
        result: frozenset = frozenset()
        for child in self.children:
            result |= child.free_params()
        return result

    def _has_guard(self) -> bool:
        return any(child._has_guard() for child in self.children)

    def __repr__(self) -> str:
        return f"Parallel({self.children!r})"


class Restrict(Term):
    """``P \\ F`` -- events named in ``F`` must synchronize inside ``P``."""

    __slots__ = ("body", "names")

    def __new__(cls, body: Term, names: frozenset) -> "Restrict":
        if not isinstance(body, Term):
            raise AcsrSemanticsError(f"Restrict body must be a Term, got {body!r}")
        names = frozenset(names)
        for name in names:
            if not isinstance(name, str) or not name or name == TAU:
                raise AcsrSemanticsError(f"invalid restricted event name {name!r}")
        key = ("restrict", body, names)

        def build() -> "Restrict":
            self = object.__new__(cls)
            self.body = body
            self.names = names
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        return Restrict(self.body.instantiate(env), self.names)

    def free_params(self) -> frozenset:
        return self.body.free_params()

    def _has_guard(self) -> bool:
        return self.body._has_guard()

    def __repr__(self) -> str:
        return f"Restrict({self.body!r}, {sorted(self.names)!r})"


class Close(Term):
    """``[P]_I`` -- resource closure: ``P`` owns all resources in ``I``.

    Every timed action of the closed process is extended with priority-0
    claims on the unused resources of ``I``, preventing any sibling from
    using them concurrently.
    """

    __slots__ = ("body", "resources")

    def __new__(cls, body: Term, resources: frozenset) -> "Close":
        if not isinstance(body, Term):
            raise AcsrSemanticsError(f"Close body must be a Term, got {body!r}")
        resources = frozenset(resources)
        for name in resources:
            if not isinstance(name, str) or not name:
                raise AcsrSemanticsError(f"invalid resource name {name!r}")
        key = ("close", body, resources)

        def build() -> "Close":
            self = object.__new__(cls)
            self.body = body
            self.resources = resources
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        return Close(self.body.instantiate(env), self.resources)

    def free_params(self) -> frozenset:
        return self.body.free_params()

    def _has_guard(self) -> bool:
        return self.body._has_guard()

    def __repr__(self) -> str:
        return f"Close({self.body!r}, {sorted(self.resources)!r})"


class Hide(Term):
    """``P \\\\ I`` -- resource hiding: resources in ``I`` disappear from
    ``P``'s timed actions (they become internal and can no longer
    conflict with -- or be observed by -- the environment)."""

    __slots__ = ("body", "resources")

    def __new__(cls, body: Term, resources: frozenset) -> "Hide":
        if not isinstance(body, Term):
            raise AcsrSemanticsError(f"Hide body must be a Term, got {body!r}")
        resources = frozenset(resources)
        for name in resources:
            if not isinstance(name, str) or not name:
                raise AcsrSemanticsError(f"invalid resource name {name!r}")
        key = ("hide", body, resources)

        def build() -> "Hide":
            self = object.__new__(cls)
            self.body = body
            self.resources = resources
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        return Hide(self.body.instantiate(env), self.resources)

    def free_params(self) -> frozenset:
        return self.body.free_params()

    def _has_guard(self) -> bool:
        return self.body._has_guard()

    def __repr__(self) -> str:
        return f"Hide({self.body!r}, {sorted(self.resources)!r})"


class Scope(Term):
    """Temporal scope (paper S3, Figure 3).

    ``Scope(body, bound, exception, success, timeout, interrupt)``:

    * while ``bound > 0`` the body executes; each timed step decrements
      the bound (event steps are instantaneous and do not);
    * if the body outputs the ``exception`` event, control transfers to
      ``success`` -- the "voluntary release" exit;
    * when the bound reaches 0 control is at ``timeout`` (the smart
      constructor :func:`scope` normalizes a zero bound away);
    * at any moment an initial step of ``interrupt`` may seize control --
      the "involuntary release" exit.

    ``bound`` is a positive ``int`` or :data:`INFINITY` (``None``).
    """

    __slots__ = ("body", "bound", "exception", "success", "timeout", "interrupt")

    def __new__(
        cls,
        body: Term,
        bound: Optional[int],
        exception: Optional[str],
        success: Term,
        timeout: Term,
        interrupt: Term,
    ) -> "Scope":
        if not isinstance(body, Term):
            raise AcsrSemanticsError(f"Scope body must be a Term, got {body!r}")
        if bound is not None and (not isinstance(bound, int) or bound <= 0):
            raise AcsrSemanticsError(
                f"Scope bound must be a positive int or INFINITY, got {bound!r}"
            )
        if exception is not None and (
            not isinstance(exception, str) or not exception
        ):
            raise AcsrSemanticsError(
                f"Scope exception must be an event name, got {exception!r}"
            )
        for handler in (success, timeout, interrupt):
            if not isinstance(handler, Term):
                raise AcsrSemanticsError(
                    f"Scope handlers must be Terms, got {handler!r}"
                )
        key = ("scope", body, bound, exception, success, timeout, interrupt)

        def build() -> "Scope":
            self = object.__new__(cls)
            self.body = body
            self.bound = bound
            self.exception = exception
            self.success = success
            self.timeout = timeout
            self.interrupt = interrupt
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        return scope(
            self.body.instantiate(env),
            bound=self.bound,
            exception=self.exception,
            success=self.success.instantiate(env),
            timeout=self.timeout.instantiate(env),
            interrupt=self.interrupt.instantiate(env),
        )

    def free_params(self) -> frozenset:
        return (
            self.body.free_params()
            | self.success.free_params()
            | self.timeout.free_params()
            | self.interrupt.free_params()
        )

    def _has_guard(self) -> bool:
        return any(
            part._has_guard()
            for part in (self.body, self.success, self.timeout, self.interrupt)
        )

    def __repr__(self) -> str:
        return (
            f"Scope({self.body!r}, bound={self.bound!r}, "
            f"exception={self.exception!r})"
        )


class Guard(Term):
    """``[cond] -> P``: present only in open terms; resolved at unfolding."""

    __slots__ = ("condition", "body")

    def __new__(cls, condition: BoolExpr, body: Term) -> "Guard":
        if not isinstance(condition, BoolExpr):
            raise AcsrSemanticsError(
                f"Guard condition must be a BoolExpr, got {condition!r}"
            )
        if not isinstance(body, Term):
            raise AcsrSemanticsError(f"Guard body must be a Term, got {body!r}")
        # Intern by the condition's *structural* key: independently built
        # but structurally equal guards (e.g. for replicated threads)
        # must hash-cons to the same term, or renamed-equal definitions
        # would not be pointer-equal (see repro.engine.reduce).
        key = ("guard", condition.key(), body)

        def build() -> "Guard":
            self = object.__new__(cls)
            self.condition = condition
            self.body = body
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        if self.condition.evaluate(env):
            return self.body.instantiate(env)
        return NIL

    def free_params(self) -> frozenset:
        return self.condition.free_params() | self.body.free_params()

    def _has_guard(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"Guard({self.condition!r}, {self.body!r})"


class ProcRef(Term):
    """Reference to a named, possibly parameterized, process definition.

    In closed terms the arguments are concrete integers, and the reference
    itself serves as a compact state representation: the semantics unfolds
    it lazily through a :class:`repro.acsr.definitions.ProcessEnv`.
    """

    __slots__ = ("name", "args")

    def __new__(
        cls, name: str, args: Tuple[Union[int, Expr], ...] = ()
    ) -> "ProcRef":
        if not isinstance(name, str) or not name:
            raise AcsrSemanticsError(f"invalid process name {name!r}")
        normalized: List[Union[int, Expr]] = []
        for arg in args:
            if isinstance(arg, bool):
                raise AcsrSemanticsError("process arguments must be ints")
            if isinstance(arg, (int, Expr)):
                normalized.append(arg)
            elif isinstance(arg, str):
                normalized.append(as_expr(arg))
            else:
                raise AcsrSemanticsError(
                    f"process argument must be int or Expr, got {arg!r}"
                )
        args_t = tuple(normalized)
        # Expression arguments intern by structural key (see Guard): two
        # independently built but structurally equal open references must
        # be the same term for symmetry detection to work.
        key = ("ref", name) + tuple(
            (a if isinstance(a, int) else ("expr",) + a.key()) for a in args_t
        )

        def build() -> "ProcRef":
            self = object.__new__(cls)
            self.name = name
            self.args = args_t
            return self

        return _intern(key, build)

    def instantiate(self, env: Mapping[str, int]) -> "Term":
        args = tuple(
            arg if isinstance(arg, int) else arg.evaluate(env)
            for arg in self.args
        )
        return ProcRef(self.name, args)

    def free_params(self) -> frozenset:
        result: frozenset = frozenset()
        for arg in self.args:
            if isinstance(arg, Expr):
                result |= arg.free_params()
        return result

    def __repr__(self) -> str:
        if not self.args:
            return f"ProcRef({self.name!r})"
        return f"ProcRef({self.name!r}, {self.args!r})"


# ---------------------------------------------------------------------------
# Smart constructors / builder helpers
# ---------------------------------------------------------------------------


class _Pending:
    """Accumulator for chains of prefixes built with ``>>``.

    ``action([...]) >> send("done", 1) >> proc("P")`` reads left to right
    but must nest right-associatively; the pending object collects prefix
    constructors until a :class:`Term` terminates the chain.
    """

    __slots__ = ("_prefixes",)

    def __init__(self, prefixes: Tuple[object, ...]) -> None:
        self._prefixes = prefixes

    def __rshift__(
        self, other: Union["_Pending", Term]
    ) -> Union["_Pending", Term]:
        if isinstance(other, _Pending):
            return _Pending(self._prefixes + other._prefixes)
        if isinstance(other, Term):
            return self.then(other)
        raise AcsrSemanticsError(
            f"cannot extend a prefix chain with {other!r}"
        )

    def then(self, continuation: Term) -> Term:
        """Terminate the chain, producing the nested prefix term."""
        term = continuation
        for prefix in reversed(self._prefixes):
            if isinstance(prefix, Action):
                term = ActionPrefix(prefix, term)
            else:
                term = EventPrefix(prefix, term)
        return term

    def __repr__(self) -> str:
        return f"_Pending({self._prefixes!r})"


def action(
    pairs: Union[Mapping[str, object], Iterable[Tuple[str, object]]] = (),
) -> _Pending:
    """Timed-action prefix builder: ``action({"cpu": 2}) >> cont``."""
    return _Pending((make_action(pairs),))


def idle() -> _Pending:
    """The idling step ``{} :`` -- consumes no resources, takes one quantum."""
    return _Pending((EMPTY_ACTION,))


def send(name: str, priority: Union[int, Expr, str] = 1) -> _Pending:
    """Output-event prefix builder ``(name!, priority).``"""
    pri = as_expr(priority) if isinstance(priority, str) else priority
    return _Pending((EventLabel(name, OUT, pri),))


def recv(name: str, priority: Union[int, Expr, str] = 1) -> _Pending:
    """Input-event prefix builder ``(name?, priority).``"""
    pri = as_expr(priority) if isinstance(priority, str) else priority
    return _Pending((EventLabel(name, IN, pri),))


def tau(priority: Union[int, Expr, str] = 1) -> _Pending:
    """Internal-step prefix builder ``(tau, priority).``"""
    pri = as_expr(priority) if isinstance(priority, str) else priority
    return _Pending((EventLabel(TAU, "", pri),))


def nil() -> Term:
    """The deadlocked process NIL."""
    return NIL


def choice(*terms: Term) -> Term:
    """Canonical n-ary choice (drops NIL summands, dedups, flattens)."""
    flat = _flatten(Choice, terms)
    filtered = [t for t in flat if t is not NIL]
    unique: Dict[int, Term] = {}
    for term in filtered:
        unique[id(term)] = term
    items = sorted(unique.values(), key=lambda t: t._id)
    if not items:
        return NIL
    if len(items) == 1:
        return items[0]
    return Choice(tuple(items))


def parallel(*terms: Term) -> Term:
    """Canonical n-ary parallel composition (flattens, sorts; keeps NIL)."""
    flat = _flatten(Parallel, terms)
    items = sorted(flat, key=lambda t: t._id)
    if not items:
        return NIL
    if len(items) == 1:
        return items[0]
    return Parallel(tuple(items))


def restrict(body: Term, names: Iterable[str]) -> Term:
    """Event restriction ``body \\ {names}`` (no-op for an empty set)."""
    names = frozenset(names)
    if not names:
        return body
    if isinstance(body, Restrict):
        return Restrict(body.body, body.names | names)
    return Restrict(body, names)


def close(body: Term, resources: Iterable[str]) -> Term:
    """Resource closure ``[body]_resources`` (no-op for an empty set)."""
    resources = frozenset(resources)
    if not resources:
        return body
    if isinstance(body, Close):
        return Close(body.body, body.resources | resources)
    return Close(body, resources)


def hide(body: Term, resources: Iterable[str]) -> Term:
    """Resource hiding ``body \\\\ resources`` (no-op for an empty set)."""
    resources = frozenset(resources)
    if not resources:
        return body
    if isinstance(body, Hide):
        return Hide(body.body, body.resources | resources)
    return Hide(body, resources)


def scope(
    body: Term,
    bound: Optional[int] = INFINITY,
    exception: Optional[str] = None,
    success: Term = NIL,
    timeout: Term = NIL,
    interrupt: Term = NIL,
) -> Term:
    """Temporal scope smart constructor; normalizes a zero bound to the
    timeout handler."""
    if bound is not None and bound == 0:
        return timeout
    return Scope(body, bound, exception, success, timeout, interrupt)


def guard(condition: BoolExpr, body: Term) -> Term:
    """Guarded term ``[condition] -> body`` (open terms only)."""
    return Guard(condition, body)


def proc(name: str, *args: Union[int, Expr, str]) -> ProcRef:
    """Reference to a named process definition."""
    return ProcRef(name, tuple(args))


def seq(*parts: Union[_Pending, Term]) -> Term:
    """Fold a sequence of prefix builders terminated by a term."""
    if not parts:
        return NIL
    last = parts[-1]
    if isinstance(last, _Pending):
        raise AcsrSemanticsError("seq(...) must end with a Term")
    term = last
    for part in reversed(parts[:-1]):
        if not isinstance(part, _Pending):
            raise AcsrSemanticsError(
                "seq(...) interior elements must be prefix builders"
            )
        term = part.then(term)
    return term


def intern_table_size() -> int:
    """Number of distinct terms created so far (diagnostics/benchmarks)."""
    return len(_TERM_INTERN)
