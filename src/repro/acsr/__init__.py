"""ACSR: Algebra of Communicating Shared Resources.

A discrete-time, resource-aware process algebra (Lee, Bremond-Gregoire &
Gerber 1994).  This subpackage implements the full term language used by the
paper -- timed actions over prioritized resources, instantaneous prioritized
events with CCS-style synchronization, choice, n-ary parallel composition
with the Par3 resource-disjointness rule, event restriction, resource
closure, temporal scopes (exception / timeout / interrupt exits) and
parameterized recursive process definitions -- together with both the
unprioritized and the prioritized operational semantics.

Typical usage::

    from repro.acsr import (ProcessEnv, action, send, recv, idle, nil,
                            proc, var)

    env = ProcessEnv()
    env.define("Simple", (),
               action([("cpu", 1)]) >>
               action([("cpu", 1), ("bus", 1)]) >>
               send("done", 1) >> proc("Simple"))
    system = env.close(proc("Simple"))
    for label, successor in system.prioritized_steps():
        ...
"""

from repro.acsr.resources import Action, EMPTY_ACTION, make_action
from repro.acsr.events import (
    EventLabel,
    IN,
    OUT,
    TAU,
    event_label,
    tau_label,
)
from repro.acsr.expressions import (
    BinOp,
    BoolExpr,
    Cmp,
    Const,
    Expr,
    Param,
    const,
    var,
)
from repro.acsr.terms import (
    ActionPrefix,
    Choice,
    Close,
    EventPrefix,
    Guard,
    Hide,
    Nil,
    Parallel,
    ProcRef,
    Restrict,
    Scope,
    Term,
    INFINITY,
    NIL,
    action,
    choice,
    close,
    guard,
    hide,
    idle,
    nil,
    parallel,
    proc,
    recv,
    restrict,
    scope,
    send,
    tau,
)
from repro.acsr.definitions import ProcessDef, ProcessEnv, ClosedSystem
from repro.acsr.semantics import transitions
from repro.acsr.priority import (
    preempts,
    prioritized,
    prioritized_transitions,
)
from repro.acsr.printer import format_term, format_label, format_env
from repro.acsr.parser import parse_term, parse_env

__all__ = [
    "Action",
    "ActionPrefix",
    "BinOp",
    "BoolExpr",
    "Choice",
    "Close",
    "ClosedSystem",
    "Cmp",
    "Const",
    "EMPTY_ACTION",
    "EventLabel",
    "EventPrefix",
    "Expr",
    "Guard",
    "Hide",
    "IN",
    "INFINITY",
    "NIL",
    "Nil",
    "OUT",
    "Parallel",
    "Param",
    "ProcRef",
    "ProcessDef",
    "ProcessEnv",
    "Restrict",
    "Scope",
    "TAU",
    "Term",
    "action",
    "choice",
    "close",
    "const",
    "event_label",
    "format_env",
    "format_label",
    "format_term",
    "guard",
    "hide",
    "idle",
    "make_action",
    "nil",
    "parallel",
    "parse_env",
    "parse_term",
    "preempts",
    "prioritized",
    "prioritized_transitions",
    "proc",
    "recv",
    "restrict",
    "scope",
    "send",
    "tau",
    "tau_label",
    "transitions",
    "var",
]
