"""Instantaneous event labels.

Communication steps (paper S3) send or receive an *ACSR event*
instantaneously.  A label is a triple ``(name, direction, priority)``:

* ``(e, IN, p)``  -- receive ``e?`` at priority ``p``;
* ``(e, OUT, p)`` -- send ``e!`` at priority ``p``;
* ``(TAU, via, p)`` -- the internal step produced when a matching send and
  receive synchronize; ``via`` records which event name generated it so
  traces can be raised back to the source model (the paper writes this as
  ``tau@name``).

Synchronization follows CCS: ``(e?, p)`` and ``(e!, q)`` combine into
``tau@e`` with priority ``p + q`` (the ACSR convention -- summing keeps
both endpoint priorities relevant to preemption).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from repro.errors import AcsrSemanticsError
from repro.acsr.expressions import Expr

IN = "?"
OUT = "!"
TAU = "tau"

Priority = Union[int, Expr]

_LABEL_INTERN: Dict[Tuple[str, str, object, Optional[str]], "EventLabel"] = {}


class EventLabel:
    """An interned event label: name, direction and priority.

    For internal steps ``name`` is :data:`TAU`, ``direction`` is the empty
    string and ``via`` names the synchronized event (or ``None`` for a
    plain internal step).
    """

    __slots__ = ("_name", "_direction", "_priority", "_via", "_hash")

    def __new__(
        cls,
        name: str,
        direction: str,
        priority: Priority,
        via: Optional[str] = None,
    ) -> "EventLabel":
        if name == TAU:
            if direction != "":
                raise AcsrSemanticsError("tau labels carry no direction")
        else:
            if direction not in (IN, OUT):
                raise AcsrSemanticsError(
                    f"direction must be {IN!r} or {OUT!r}, got {direction!r}"
                )
            if via is not None:
                raise AcsrSemanticsError("only tau labels carry a via name")
        if not isinstance(name, str) or not name:
            raise AcsrSemanticsError(f"invalid event name {name!r}")
        if isinstance(priority, bool) or (
            isinstance(priority, int) and priority < 0
        ):
            raise AcsrSemanticsError(
                f"event priority must be a non-negative int or expression, "
                f"got {priority!r}"
            )
        if not isinstance(priority, (int, Expr)):
            raise AcsrSemanticsError(
                f"event priority must be int or Expr, got {type(priority).__name__}"
            )
        # Open (expression-priority) labels intern by the expression's
        # structural key so independently built but structurally equal
        # labels are identical (required by symmetry detection).
        key = (
            name,
            direction,
            priority if isinstance(priority, int) else priority.key(),
            via,
        )
        cached = _LABEL_INTERN.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        self._name = name
        self._direction = direction
        self._priority = priority
        self._via = via
        self._hash = hash(key)
        _LABEL_INTERN[key] = self
        return self

    # -- accessors ----------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def direction(self) -> str:
        return self._direction

    @property
    def priority(self) -> Priority:
        return self._priority

    @property
    def via(self) -> Optional[str]:
        """For tau labels, the event name that produced the internal step."""
        return self._via

    @property
    def is_tau(self) -> bool:
        return self._name == TAU

    @property
    def is_input(self) -> bool:
        return self._direction == IN

    @property
    def is_output(self) -> bool:
        return self._direction == OUT

    @property
    def is_ground(self) -> bool:
        return isinstance(self._priority, int)

    def int_priority(self) -> int:
        if not isinstance(self._priority, int):
            raise AcsrSemanticsError(
                f"label {self} has symbolic priority {self._priority!r}"
            )
        return self._priority

    # -- operations ----------------------------------------------------

    def complement(self) -> "EventLabel":
        """The matching label with the opposite direction (same priority)."""
        if self.is_tau:
            raise AcsrSemanticsError("tau has no complement")
        direction = IN if self._direction == OUT else OUT
        return EventLabel(self._name, direction, self._priority)

    def matches(self, other: "EventLabel") -> bool:
        """True when ``self`` and ``other`` can synchronize (CCS-style)."""
        return (
            not self.is_tau
            and not other.is_tau
            and self._name == other._name
            and self._direction != other._direction
        )

    def synchronize(self, other: "EventLabel") -> "EventLabel":
        """The tau label produced by synchronizing two matching labels."""
        if not self.matches(other):
            raise AcsrSemanticsError(f"{self} cannot synchronize with {other}")
        return EventLabel(
            TAU, "", self.int_priority() + other.int_priority(), via=self._name
        )

    def instantiate(self, env: Mapping[str, int]) -> "EventLabel":
        """Evaluate a symbolic priority, producing a ground label."""
        if isinstance(self._priority, int):
            return self
        value = self._priority.evaluate(env)
        if value < 0:
            raise AcsrSemanticsError(
                f"event priority expression evaluated to negative {value}"
            )
        return EventLabel(self._name, self._direction, value, self._via)

    def free_params(self) -> frozenset:
        if isinstance(self._priority, Expr):
            return self._priority.free_params()
        return frozenset()

    # -- protocol -------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, EventLabel)
            and self._name == other._name
            and self._direction == other._direction
            and self._priority == other._priority
            and self._via == other._via
        )

    def __repr__(self) -> str:
        if self.is_tau:
            via = f", via={self._via!r}" if self._via else ""
            return f"EventLabel(tau, {self._priority!r}{via})"
        return (
            f"EventLabel({self._name!r}, {self._direction!r}, "
            f"{self._priority!r})"
        )

    def __str__(self) -> str:
        if self.is_tau:
            if self._via:
                return f"(tau@{self._via},{self._priority})"
            return f"(tau,{self._priority})"
        return f"({self._name}{self._direction},{self._priority})"


def event_label(name: str, direction: str, priority: Priority) -> EventLabel:
    """Build a send/receive label."""
    return EventLabel(name, direction, priority)


def tau_label(priority: Priority, via: Optional[str] = None) -> EventLabel:
    """Build an internal-step label."""
    return EventLabel(TAU, "", priority, via)
