"""Pretty-printer for ACSR terms, labels and environments.

The concrete syntax mirrors VERSA's textual notation:

* timed actions: ``{(cpu,2),(bus,1)}``; the idling step prints as ``idle``;
* events: ``(done!,1)``, ``(go?,p)``, ``(tau,2)``; internal steps produced
  by synchronization print their origin: ``(tau@done,2)``;
* prefixes: ``A : P`` and ``(e!,1) . P``;
* choice ``+``, parallel ``||``, restriction ``\\ {a, b}``, closure
  ``close(P, {r})``, guards ``[x < 3] P``;
* scopes: ``scope(P; 10; except done -> Q; timeout -> R; interrupt -> S)``
  with absent clauses omitted and an infinite bound written ``inf``.

The output of :func:`format_env` parses back with
:func:`repro.acsr.parser.parse_env` (round-trip tested).
"""

from __future__ import annotations

from typing import List

from repro.acsr.events import EventLabel
from repro.acsr.resources import Action
from repro.acsr.terms import (
    ActionPrefix,
    Choice,
    Close,
    EventPrefix,
    Guard,
    Hide,
    Nil,
    Parallel,
    ProcRef,
    Restrict,
    Scope,
    Term,
)

# Precedence levels (higher binds tighter).
_PREC_RESTRICT = 1
_PREC_PAR = 2
_PREC_CHOICE = 3
_PREC_PREFIX = 4
_PREC_ATOM = 5


def format_action(action: Action) -> str:
    """Concrete syntax of a timed action."""
    if action.is_idle:
        return "idle"
    inner = ",".join(f"({res},{pri})" for res, pri in action.pairs)
    return "{" + inner + "}"


def format_label(label: object) -> str:
    """Concrete syntax of a transition label (action or event)."""
    if isinstance(label, Action):
        return format_action(label)
    if isinstance(label, EventLabel):
        return str(label)
    raise TypeError(f"not a transition label: {label!r}")


def format_term(term: Term) -> str:
    """Concrete syntax of a term with minimal parenthesization."""
    return _fmt(term, 0)


def _paren(text: str, prec: int, parent: int) -> str:
    return f"({text})" if prec < parent else text


def _fmt(term: Term, parent: int) -> str:
    if isinstance(term, Nil):
        return "NIL"
    if isinstance(term, ProcRef):
        if not term.args:
            return term.name
        args = ", ".join(str(arg) for arg in term.args)
        return f"{term.name}({args})"
    if isinstance(term, ActionPrefix):
        text = f"{format_action(term.action)} : {_fmt(term.continuation, _PREC_PREFIX)}"
        return _paren(text, _PREC_PREFIX, parent)
    if isinstance(term, EventPrefix):
        text = f"{term.label} . {_fmt(term.continuation, _PREC_PREFIX)}"
        return _paren(text, _PREC_PREFIX, parent)
    if isinstance(term, Choice):
        text = " + ".join(_fmt(child, _PREC_CHOICE + 1) for child in term.children)
        return _paren(text, _PREC_CHOICE, parent)
    if isinstance(term, Parallel):
        text = " || ".join(_fmt(child, _PREC_PAR + 1) for child in term.children)
        return _paren(text, _PREC_PAR, parent)
    if isinstance(term, Restrict):
        names = ", ".join(sorted(term.names))
        text = f"{_fmt(term.body, _PREC_RESTRICT + 1)} \\ {{{names}}}"
        return _paren(text, _PREC_RESTRICT, parent)
    if isinstance(term, Close):
        resources = ", ".join(sorted(term.resources))
        return f"close({_fmt(term.body, 0)}, {{{resources}}})"
    if isinstance(term, Hide):
        resources = ", ".join(sorted(term.resources))
        return f"hide({_fmt(term.body, 0)}, {{{resources}}})"
    if isinstance(term, Guard):
        text = f"[{term.condition}] {_fmt(term.body, _PREC_PREFIX)}"
        return _paren(text, _PREC_PREFIX, parent)
    if isinstance(term, Scope):
        parts: List[str] = [_fmt(term.body, 0)]
        parts.append("inf" if term.bound is None else str(term.bound))
        if term.exception is not None:
            parts.append(f"except {term.exception} -> {_fmt(term.success, 0)}")
        if not isinstance(term.timeout, Nil):
            parts.append(f"timeout -> {_fmt(term.timeout, 0)}")
        if not isinstance(term.interrupt, Nil):
            parts.append(f"interrupt -> {_fmt(term.interrupt, 0)}")
        return "scope(" + "; ".join(parts) + ")"
    raise TypeError(f"unknown term kind {type(term).__name__}")


def format_env(env, root: Term = None) -> str:
    """Print an environment (and optional system root) as a parseable
    ACSR source file."""
    lines: List[str] = []
    for definition in env:
        params = (
            "(" + ", ".join(definition.params) + ")" if definition.params else ""
        )
        lines.append(
            f"process {definition.name}{params} = {format_term(definition.body)};"
        )
    if root is not None:
        lines.append(f"system {format_term(root)};")
    return "\n".join(lines) + "\n"
