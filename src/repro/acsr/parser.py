"""Parser for the VERSA-like concrete ACSR syntax.

Grammar (see :mod:`repro.acsr.printer` for the emitted form)::

    file       := (procdef | sysdecl)*
    procdef    := "process" IDENT [ "(" IDENT ("," IDENT)* ")" ] "=" term ";"
    sysdecl    := "system" term ";"

    term       := parterm ( "\\" "{" names "}" )*
    parterm    := choiceterm ( "||" choiceterm )*
    choiceterm := prefix ( "+" prefix )*
    prefix     := "[" bexpr "]" prefix
                | actionlit ":" prefix
                | eventlit "." prefix
                | atom
    atom       := "NIL" | scope | closeop | IDENT [ "(" exprs ")" ]
                | "(" term ")"
    actionlit  := "{" [ "(" IDENT "," expr ")" ("," ...)* ] "}" | "idle"
    eventlit   := "(" IDENT ("!"|"?") "," expr ")"
                | "(" "tau" [ "@" IDENT ] "," expr ")"
    scope      := "scope" "(" term ";" ("inf"|expr)
                  [";" "except" IDENT "->" term]
                  [";" "timeout" "->" term]
                  [";" "interrupt" "->" term] ")"
    closeop    := "close" "(" term "," "{" names "}" ")"

Expressions use the usual precedence (``or < and < not < comparison <
additive < multiplicative``); ``min(a,b)``/``max(a,b)`` are builtin.
Comments run from ``--`` or ``#`` to end of line.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import AcsrSyntaxError
from repro.acsr.expressions import (
    BinOp,
    BoolExpr,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Not,
    Param,
    TrueExpr,
)
from repro.acsr.events import IN, OUT, EventLabel
from repro.acsr.resources import Action
from repro.acsr.terms import (
    ActionPrefix,
    EventPrefix,
    Guard,
    NIL,
    ProcRef,
    Term,
    choice,
    close,
    hide,
    parallel,
    restrict,
    scope,
)
from repro.acsr.definitions import ProcessEnv

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*|\#[^\n]*)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<op>\|\||//|->|<=|>=|==|!=|[-=;:.+(){},\[\]\\!?@<>*%])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "process",
    "system",
    "NIL",
    "idle",
    "tau",
    "scope",
    "except",
    "timeout",
    "interrupt",
    "inf",
    "close",
    "hide",
    "min",
    "max",
    "not",
    "and",
    "or",
    "true",
}


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            col = pos - line_start + 1
            raise AcsrSyntaxError(
                f"unexpected character {text[pos]!r}", line, col
            )
        if match.lastgroup != "ws":
            col = match.start() - line_start + 1
            tokens.append(
                _Token(match.lastgroup, match.group(), line, col)  # type: ignore[arg-type]
            )
        newlines = match.group().count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + match.group().rfind("\n") + 1
        pos = match.end()
    tokens.append(_Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token utilities -------------------------------------------------

    def peek(self, offset: int = 0) -> _Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.peek()
        if token.text != text:
            raise AcsrSyntaxError(
                f"expected {text!r}, found {token.text or '<eof>'!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise AcsrSyntaxError(
                f"expected identifier, found {token.text or '<eof>'!r}",
                token.line,
                token.column,
            )
        self.advance()
        return token.text

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.advance()
            return True
        return False

    def error(self, message: str) -> AcsrSyntaxError:
        token = self.peek()
        return AcsrSyntaxError(message, token.line, token.column)

    # -- file level --------------------------------------------------------

    def parse_file(self) -> Tuple[ProcessEnv, Optional[Term]]:
        env = ProcessEnv()
        root: Optional[Term] = None
        while self.peek().kind != "eof":
            if self.accept("process"):
                name = self.expect_ident()
                params: List[str] = []
                if self.accept("("):
                    if not self.at(")"):
                        params.append(self.expect_ident())
                        while self.accept(","):
                            params.append(self.expect_ident())
                    self.expect(")")
                self.expect("=")
                body = self.parse_term()
                self.expect(";")
                env.define(name, params, body)
            elif self.accept("system"):
                if root is not None:
                    raise self.error("duplicate system declaration")
                root = self.parse_term()
                self.expect(";")
            else:
                raise self.error(
                    f"expected 'process' or 'system', found {self.peek().text!r}"
                )
        return env, root

    # -- terms ---------------------------------------------------------------

    def parse_term(self) -> Term:
        term = self.parse_parterm()
        while self.accept("\\"):
            self.expect("{")
            names = [self.expect_ident()]
            while self.accept(","):
                names.append(self.expect_ident())
            self.expect("}")
            term = restrict(term, names)
        return term

    def parse_parterm(self) -> Term:
        parts = [self.parse_choiceterm()]
        while self.accept("||"):
            parts.append(self.parse_choiceterm())
        return parallel(*parts) if len(parts) > 1 else parts[0]

    def parse_choiceterm(self) -> Term:
        parts = [self.parse_prefix()]
        while self.accept("+"):
            parts.append(self.parse_prefix())
        return choice(*parts) if len(parts) > 1 else parts[0]

    def parse_prefix(self) -> Term:
        token = self.peek()
        if token.text == "[":
            self.advance()
            condition = self.parse_bexpr()
            self.expect("]")
            body = self.parse_prefix()
            return Guard(condition, body)
        if token.text == "{" or token.text == "idle":
            act = self.parse_actionlit()
            self.expect(":")
            return ActionPrefix(act, self.parse_prefix())
        if token.text == "(" and self._looks_like_event():
            label = self.parse_eventlit()
            self.expect(".")
            return EventPrefix(label, self.parse_prefix())
        return self.parse_atom()

    def _looks_like_event(self) -> bool:
        # Called with peek() == "(".  Event literals are "(name!" /
        # "(name?" / "(tau," / "(tau@".
        first = self.peek(1)
        second = self.peek(2)
        if first.kind != "ident":
            return False
        if first.text == "tau" and second.text in (",", "@"):
            return True
        return second.text in ("!", "?")

    def parse_actionlit(self) -> Action:
        if self.accept("idle"):
            return Action(())
        self.expect("{")
        pairs: List[Tuple[str, object]] = []
        if not self.at("}"):
            pairs.append(self._parse_resource_pair())
            while self.accept(","):
                pairs.append(self._parse_resource_pair())
        self.expect("}")
        return Action(pairs)

    def _parse_resource_pair(self) -> Tuple[str, object]:
        self.expect("(")
        resource = self.expect_ident()
        self.expect(",")
        priority = self._expr_or_int(self.parse_arith())
        self.expect(")")
        return resource, priority

    def parse_eventlit(self) -> EventLabel:
        self.expect("(")
        name = self.expect_ident()
        if name == "tau":
            via = None
            if self.accept("@"):
                via = self.expect_ident()
            self.expect(",")
            priority = self._expr_or_int(self.parse_arith())
            self.expect(")")
            return EventLabel("tau", "", priority, via)
        if self.accept("!"):
            direction = OUT
        elif self.accept("?"):
            direction = IN
        else:
            raise self.error("expected '!' or '?' in event literal")
        self.expect(",")
        priority = self._expr_or_int(self.parse_arith())
        self.expect(")")
        return EventLabel(name, direction, priority)

    @staticmethod
    def _expr_or_int(expr: Expr) -> object:
        return expr.value if isinstance(expr, Const) else expr

    def parse_atom(self) -> Term:
        token = self.peek()
        if self.accept("NIL"):
            return NIL
        if self.accept("scope"):
            return self.parse_scope()
        if token.text in ("close", "hide"):
            self.advance()
            make = close if token.text == "close" else hide
            self.expect("(")
            body = self.parse_term()
            self.expect(",")
            self.expect("{")
            names = [self.expect_ident()]
            while self.accept(","):
                names.append(self.expect_ident())
            self.expect("}")
            self.expect(")")
            return make(body, names)
        if token.kind == "ident" and token.text not in _KEYWORDS:
            name = self.advance().text
            args: List[object] = []
            if self.accept("("):
                if not self.at(")"):
                    args.append(self._expr_or_int(self.parse_arith()))
                    while self.accept(","):
                        args.append(self._expr_or_int(self.parse_arith()))
                self.expect(")")
            return ProcRef(name, tuple(args))
        if self.accept("("):
            term = self.parse_term()
            self.expect(")")
            return term
        raise self.error(f"unexpected token {token.text or '<eof>'!r} in term")

    def parse_scope(self) -> Term:
        self.expect("(")
        body = self.parse_term()
        self.expect(";")
        if self.accept("inf"):
            bound: Optional[int] = None
        else:
            expr = self.parse_arith()
            if not isinstance(expr, Const):
                raise self.error("scope bound must be a constant")
            bound = expr.value
        exception = None
        success: Term = NIL
        timeout: Term = NIL
        interrupt: Term = NIL
        while self.accept(";"):
            if self.accept("except"):
                exception = self.expect_ident()
                self.expect("->")
                success = self.parse_term()
            elif self.accept("timeout"):
                self.expect("->")
                timeout = self.parse_term()
            elif self.accept("interrupt"):
                self.expect("->")
                interrupt = self.parse_term()
            else:
                raise self.error(
                    "expected 'except', 'timeout' or 'interrupt' in scope"
                )
        self.expect(")")
        return scope(
            body,
            bound=bound,
            exception=exception,
            success=success,
            timeout=timeout,
            interrupt=interrupt,
        )

    # -- expressions ---------------------------------------------------------

    def parse_bexpr(self) -> BoolExpr:
        left = self.parse_bterm()
        while self.accept("or"):
            left = BoolOp("or", left, self.parse_bterm())
        return left

    def parse_bterm(self) -> BoolExpr:
        left = self.parse_bfactor()
        while self.accept("and"):
            left = BoolOp("and", left, self.parse_bfactor())
        return left

    def parse_bfactor(self) -> BoolExpr:
        if self.accept("not"):
            return Not(self.parse_bfactor())
        if self.accept("true"):
            return TrueExpr()
        # Try a comparison first; fall back to a parenthesized boolean.
        saved = self.index
        try:
            left = self.parse_arith()
            op_token = self.peek()
            if op_token.text in ("<", "<=", "==", "!=", ">=", ">"):
                self.advance()
                right = self.parse_arith()
                return Cmp(op_token.text, left, right)
            raise self.error("expected comparison operator")
        except AcsrSyntaxError:
            self.index = saved
        if self.accept("("):
            inner = self.parse_bexpr()
            self.expect(")")
            return inner
        raise self.error("expected boolean expression")

    def parse_arith(self) -> Expr:
        left = self.parse_mul()
        while True:
            if self.accept("+"):
                left = BinOp("+", left, self.parse_mul())
            elif self.accept("-"):
                left = BinOp("-", left, self.parse_mul())
            else:
                return left

    def parse_mul(self) -> Expr:
        left = self.parse_unary()
        while True:
            if self.accept("*"):
                left = BinOp("*", left, self.parse_unary())
            elif self.accept("//"):
                left = BinOp("//", left, self.parse_unary())
            elif self.accept("%"):
                left = BinOp("%", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return Const(int(token.text))
        if token.text in ("min", "max"):
            op = self.advance().text
            self.expect("(")
            left = self.parse_arith()
            self.expect(",")
            right = self.parse_arith()
            self.expect(")")
            return BinOp(op, left, right)
        if token.kind == "ident" and token.text not in _KEYWORDS:
            self.advance()
            return Param(token.text)
        if self.accept("("):
            inner = self.parse_arith()
            self.expect(")")
            return inner
        raise self.error(
            f"unexpected token {token.text or '<eof>'!r} in expression"
        )


def parse_term(text: str) -> Term:
    """Parse a single (possibly open) ACSR term."""
    parser = _Parser(text)
    term = parser.parse_term()
    token = parser.peek()
    if token.kind != "eof":
        raise AcsrSyntaxError(
            f"trailing input after term: {token.text!r}", token.line, token.column
        )
    return term


def parse_env(text: str) -> Tuple[ProcessEnv, Optional[Term]]:
    """Parse a file of ``process`` definitions and an optional ``system``
    declaration; returns ``(env, root)``."""
    return _Parser(text).parse_file()
