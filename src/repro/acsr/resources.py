"""Timed actions over prioritized resources.

A *timed action* (paper S3, "computation step") is a finite set of pairs
``(resource, priority)`` describing which serially-reusable resources the
step consumes during one time quantum and at what access priority.  The
empty action is the *idling* step: it consumes no resources but still lets
one quantum of time pass.

Actions are immutable, interned, and totally ordered so that they can be
used as dictionary keys, members of canonicalized n-ary operators, and
labels in the explored transition system.

Priorities are non-negative integers.  In *open* terms (bodies of
parameterized process definitions) a priority may instead be an
:class:`repro.acsr.expressions.Expr`; such actions are instantiated to
ground actions when the enclosing definition is unfolded.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

from repro.errors import AcsrSemanticsError
from repro.acsr.expressions import Expr, as_expr

Priority = Union[int, Expr]

_ACTION_INTERN: Dict[Tuple[Tuple[str, object], ...], "Action"] = {}


class Action:
    """An immutable timed action: a map from resource names to priorities.

    Ground actions (all priorities are ``int``) participate in the
    operational semantics; open actions (some priority is an expression)
    occur only inside definition bodies.
    """

    __slots__ = ("_pairs", "_resources", "_hash", "_ground")

    def __new__(cls, pairs: Iterable[Tuple[str, Priority]]) -> "Action":
        normalized: Dict[str, Priority] = {}
        for resource, priority in pairs:
            if not isinstance(resource, str) or not resource:
                raise AcsrSemanticsError(
                    f"resource name must be a non-empty string, got {resource!r}"
                )
            if resource in normalized:
                raise AcsrSemanticsError(
                    f"duplicate resource {resource!r} in timed action"
                )
            if isinstance(priority, bool) or (
                isinstance(priority, int) and priority < 0
            ):
                raise AcsrSemanticsError(
                    f"priority for {resource!r} must be a non-negative int "
                    f"or expression, got {priority!r}"
                )
            if not isinstance(priority, (int, Expr)):
                raise AcsrSemanticsError(
                    f"priority for {resource!r} must be int or Expr, "
                    f"got {type(priority).__name__}"
                )
            normalized[resource] = priority
        pairs_out = tuple(sorted(normalized.items(), key=lambda kv: kv[0]))
        # Open (expression-priority) actions intern by the expressions'
        # structural keys so independently built but structurally equal
        # actions are identical (required by symmetry detection); the
        # stored pairs keep the real priority objects.
        key = tuple(
            (res, pri if isinstance(pri, int) else pri.key())
            for res, pri in pairs_out
        )
        cached = _ACTION_INTERN.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        self._pairs = pairs_out
        self._resources = frozenset(normalized)
        self._hash = hash(key)
        self._ground = all(isinstance(p, int) for _, p in pairs_out)
        _ACTION_INTERN[key] = self
        return self

    # -- basic protocol ----------------------------------------------------

    @property
    def pairs(self) -> Tuple[Tuple[str, Priority], ...]:
        """Sorted ``(resource, priority)`` pairs."""
        return self._pairs

    @property
    def resources(self) -> frozenset:
        """The resource set rho(A) of the action."""
        return self._resources

    @property
    def is_ground(self) -> bool:
        """True when every priority is a concrete integer."""
        return self._ground

    @property
    def is_idle(self) -> bool:
        """True for the empty (idling) action."""
        return not self._pairs

    def priority_of(self, resource: str) -> int:
        """Priority of ``resource`` in this action; 0 when unused.

        The 0-for-absent convention is the one used by the ACSR preemption
        relation (an idling step accesses every resource at priority 0).
        """
        for res, pri in self._pairs:
            if res == resource:
                if not isinstance(pri, int):
                    raise AcsrSemanticsError(
                        f"priority of {resource!r} is symbolic: {pri!r}"
                    )
                return pri
        return 0

    def __iter__(self) -> Iterator[Tuple[str, Priority]]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, resource: str) -> bool:
        return resource in self._resources

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Action) and self._pairs == other._pairs
        )

    def __lt__(self, other: "Action") -> bool:
        if not isinstance(other, Action):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def _sort_key(self):
        return tuple(
            (res, pri if isinstance(pri, int) else -1, repr(pri))
            for res, pri in self._pairs
        )

    def __repr__(self) -> str:
        if not self._pairs:
            return "Action({})"
        inner = ", ".join(f"({r!r}, {p!r})" for r, p in self._pairs)
        return f"Action([{inner}])"

    def __str__(self) -> str:
        if not self._pairs:
            return "idle"
        inner = ",".join(f"({res},{pri})" for res, pri in self._pairs)
        return "{" + inner + "}"

    # -- algebra -----------------------------------------------------------

    def union(self, other: "Action") -> "Action":
        """Resource-disjoint union (Par3 rule); raises on overlap."""
        overlap = self._resources & other._resources
        if overlap:
            raise AcsrSemanticsError(
                "actions share resources and cannot run in parallel: "
                + ", ".join(sorted(overlap))
            )
        return Action(self._pairs + other._pairs)

    def disjoint(self, other: "Action") -> bool:
        """True when rho(self) and rho(other) do not intersect."""
        return not (self._resources & other._resources)

    def closed_over(self, resource_set: Iterable[str]) -> "Action":
        """Action extended with priority-0 claims on unused resources.

        Implements the resource-closure operator ``[P]_I``: the closed
        process reserves every resource of ``I`` it does not use, so no
        parallel sibling may touch them.
        """
        extra = [
            (res, 0) for res in resource_set if res not in self._resources
        ]
        if not extra:
            return self
        return Action(self._pairs + tuple(extra))

    def instantiate(self, env: Mapping[str, int]) -> "Action":
        """Evaluate symbolic priorities against ``env``, yielding ground action."""
        if self._ground:
            return self
        pairs = []
        for res, pri in self._pairs:
            if isinstance(pri, Expr):
                value = pri.evaluate(env)
                if value < 0:
                    raise AcsrSemanticsError(
                        f"priority expression for {res!r} evaluated to "
                        f"negative value {value}"
                    )
                pairs.append((res, value))
            else:
                pairs.append((res, pri))
        return Action(pairs)

    def free_params(self) -> frozenset:
        """Parameter names appearing in symbolic priorities."""
        names: set = set()
        for _, pri in self._pairs:
            if isinstance(pri, Expr):
                names.update(pri.free_params())
        return frozenset(names)


EMPTY_ACTION = Action(())


def make_action(
    pairs: Union[Mapping[str, Priority], Iterable[Tuple[str, Priority]]],
) -> Action:
    """Build an :class:`Action` from a mapping or pair iterable.

    Priorities given as expressions are normalized through
    :func:`repro.acsr.expressions.as_expr` so plain strings naming
    parameters are accepted::

        make_action({"cpu": 2, "bus": var("p")})
    """
    if isinstance(pairs, Mapping):
        items: Iterable[Tuple[str, Priority]] = pairs.items()
    else:
        items = pairs
    normalized = []
    for resource, priority in items:
        if isinstance(priority, str):
            priority = as_expr(priority)
        normalized.append((resource, priority))
    return Action(normalized)
