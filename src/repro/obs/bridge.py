"""Bridging engine Observer events into span annotations.

The exploration loop already has one instrumentation seam -- the
:class:`~repro.engine.observers.Observer` hook stream -- and the tracer
must not become a second one.  :class:`SpanObserver` is an ordinary
observer that annotates the *current engine span* from the event
stream: deadlocks and budget hits become counters/attrs, and the final
:class:`~repro.engine.stats.EngineStats` snapshot is copied onto the
span at ``on_finish``.  The engine attaches one automatically when (and
only when) a recording tracer is installed, so the disabled path never
constructs an observer at all.
"""

from __future__ import annotations

from repro.engine.observers import Observer


class SpanObserver(Observer):
    """Annotate one span from the engine's event stream."""

    def __init__(self, span) -> None:
        self.span = span

    def on_deadlock(self, state) -> None:
        self.span.incr("deadlocks")

    def on_target(self, state) -> None:
        self.span.incr("targets")

    def on_limit(self, kind: str, states_explored: int) -> None:
        self.span.set(limit_hit=kind)

    def on_finish(self, result) -> None:
        stats = result.stats
        if stats is None:
            return
        self.span.set(strategy=stats.strategy, completed=result.completed)
        self.span.incr("states", stats.states)
        self.span.incr("transitions", stats.transitions)
        self.span.incr("expanded", stats.expanded)
        self.span.incr("cache_hits", stats.cache_hits)
        self.span.incr("cache_misses", stats.cache_misses)
