"""In-process trace summaries: per-stage totals and slowest spans.

The companion to :mod:`repro.obs.tracer`: given a list of span records
(live from a :class:`~repro.obs.tracer.Tracer` or loaded from a JSONL
file), aggregate per-stage totals and render the table behind the CLI
``--profile`` flag and the ``repro trace summary`` subcommand.

"Self time" is a span's elapsed minus its direct children's elapsed --
the cost attributable to the stage itself rather than to the stages it
invoked, which is what makes a nested profile readable (the umbrella
``analysis.analyze`` span would otherwise dominate every table).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional


class StageTotal:
    """Aggregate of every span sharing one name."""

    __slots__ = ("name", "count", "total", "self_total", "max_elapsed", "counters")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_total = 0.0
        self.max_elapsed = 0.0
        self.counters: Dict[str, int] = {}

    def add(self, elapsed: float, self_elapsed: float, counters: Dict[str, int]) -> None:
        self.count += 1
        self.total += elapsed
        self.self_total += self_elapsed
        self.max_elapsed = max(self.max_elapsed, elapsed)
        for key, value in counters.items():
            self.counters[key] = self.counters.get(key, 0) + value


class TraceSummary:
    """Per-stage totals plus the top-N slowest individual spans."""

    def __init__(
        self,
        stages: List[StageTotal],
        slowest: List[Dict[str, Any]],
        *,
        span_count: int,
        workers: List[str],
    ) -> None:
        #: stage totals, sorted by self time (descending)
        self.stages = stages
        #: the slowest individual span records
        self.slowest = slowest
        self.span_count = span_count
        #: distinct worker ids seen in the trace ([] for single-process)
        self.workers = workers

    def format(self) -> str:
        lines = [
            f"trace: {self.span_count} span(s), "
            f"{len(self.stages)} stage(s)"
            + (
                f", {len(self.workers)} worker(s): "
                + ", ".join(self.workers)
                if self.workers
                else ""
            )
        ]
        name_width = max([len(s.name) for s in self.stages] + [5])
        lines.append(
            f"  {'stage':<{name_width}}  {'count':>5}  {'total':>9}  "
            f"{'self':>9}  {'max':>9}"
        )
        for stage in self.stages:
            lines.append(
                f"  {stage.name:<{name_width}}  {stage.count:>5}  "
                f"{stage.total:>8.3f}s  {stage.self_total:>8.3f}s  "
                f"{stage.max_elapsed:>8.3f}s"
            )
            interesting = {
                k: v for k, v in sorted(stage.counters.items()) if v
            }
            if interesting:
                lines.append(
                    "  " + " " * name_width + "  "
                    + "  ".join(f"{k}={v}" for k, v in interesting.items())
                )
        if self.slowest:
            lines.append(f"slowest span(s):")
            for record in self.slowest:
                worker = record.get("worker") or (
                    record.get("attrs", {}) or {}
                ).get("worker")
                tag = f" [{worker}]" if worker else ""
                lines.append(
                    f"  {record['elapsed']:>8.3f}s  {record['name']}"
                    f"{tag}  ({record['span_id']})"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"TraceSummary(spans={self.span_count}, "
            f"stages={len(self.stages)})"
        )


def summarize(
    records: Iterable[Dict[str, Any]], *, top: int = 5
) -> TraceSummary:
    """Aggregate span records into a :class:`TraceSummary`.

    Accepts the record list of a live tracer (``tracer.records()``) or
    a loaded JSONL file; meta records are skipped.
    """
    spans = [r for r in records if r.get("type") == "span"]

    # Children's elapsed charged against each parent -> self time.
    child_time: Dict[Optional[str], float] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + record["elapsed"]

    by_name: Dict[str, StageTotal] = {}
    workers: Dict[str, None] = {}
    for record in spans:
        stage = by_name.get(record["name"])
        if stage is None:
            stage = by_name[record["name"]] = StageTotal(record["name"])
        self_elapsed = max(
            0.0, record["elapsed"] - child_time.get(record["span_id"], 0.0)
        )
        stage.add(
            record["elapsed"], self_elapsed, record.get("counters") or {}
        )
        worker = record.get("worker") or (record.get("attrs") or {}).get(
            "worker"
        )
        if worker:
            workers.setdefault(str(worker))

    stages = sorted(
        by_name.values(), key=lambda s: s.self_total, reverse=True
    )
    slowest = sorted(spans, key=lambda r: r["elapsed"], reverse=True)[:top]
    return TraceSummary(
        stages,
        slowest,
        span_count=len(spans),
        workers=sorted(workers),
    )


def summarize_file(path: str, *, top: int = 5) -> TraceSummary:
    """Load, validate and summarize a JSONL trace file."""
    from repro.obs.schema import validate_file

    return summarize(validate_file(path), top=top)
