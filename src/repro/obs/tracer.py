"""The span tracer: structured, nested timing for the whole pipeline.

The paper's workflow is a multi-stage pipeline (AADL parse ->
instantiate -> translate -> engine exploration -> raise), and a slow or
stuck run is only debuggable when its cost can be *attributed to a
stage* -- the same discipline the Fiacre/Tina AADL toolchain applies to
its translation chain.  :class:`Tracer` provides that attribution:

* ``with tracer.span("translate", model=...)`` opens a timed span;
  spans nest (the tracer keeps a stack), every span records its parent,
  and timing uses the monotonic clock (``time.perf_counter``);
* spans carry *attrs* (set once, descriptive: model name, strategy) and
  *counters* (accumulated: states, cache hits) via :meth:`Span.set` and
  :meth:`Span.incr`;
* finished spans are buffered in memory and can be written as JSONL
  (one object per line, schema in :mod:`repro.obs.schema`) under
  ``artifacts/traces/`` for offline analysis, or summarized in-process
  by :mod:`repro.obs.summary`.

Tracing is opt-in and *free when off*: the module-level current tracer
defaults to a :class:`NullTracer` whose :meth:`~NullTracer.span`
returns one preallocated no-op context manager -- no allocation, no
clock reads, no branching beyond a single call.  Instrumented code
therefore never checks "is tracing enabled"; it just asks
:func:`current_tracer` (pipeline hot loops are *not* instrumented
per-iteration -- spans wrap stages, and the engine's per-event stream
rides the existing Observer hooks, see :mod:`repro.obs.bridge`).

Worker processes (the :mod:`repro.batch` pool) trace locally into their
own files with a distinguishing span-id prefix; the parent merges the
child records and tags them with the worker id (see
:meth:`Tracer.merge_records`), so one trace file covers a whole
parallel batch without cross-process coordination.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional

#: Current trace-schema version; bumped on incompatible layout changes.
SCHEMA_VERSION = 1

#: Default directory for trace artifacts (mirrors artifacts/oracle and
#: artifacts/cache).
DEFAULT_TRACES_DIR = os.path.join("artifacts", "traces")


class Span:
    """One timed, attributed stage of the pipeline.

    Use as a context manager (the normal path) or via explicit
    :meth:`finish`.  ``attrs`` are descriptive key/values; ``counters``
    accumulate; both end up in the JSONL record.
    """

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attrs",
        "counters",
        "status",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.counters: Dict[str, int] = {}
        self.status = "ok"

    # -- annotation ------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach descriptive attributes (last write wins)."""
        self.attrs.update(attrs)
        return self

    def incr(self, counter: str, amount: int = 1) -> "Span":
        """Accumulate a named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount
        return self

    @property
    def elapsed(self) -> float:
        """Seconds from start to finish (or to now while still open)."""
        end = self.end if self.end is not None else self.tracer.clock()
        return end - self.start

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._finish(self)

    def finish(self) -> None:
        """Close the span outside a ``with`` block."""
        self.tracer._finish(self)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "elapsed": self.elapsed,
            "status": self.status,
        }
        if self.tracer.worker is not None:
            record["worker"] = self.tracer.worker
        if self.attrs:
            record["attrs"] = self.attrs
        if self.counters:
            record["counters"] = self.counters
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"elapsed={self.elapsed:.6f})"
        )


class _NullSpan:
    """The do-nothing span: one shared instance, every method a no-op.

    Keeping a single preallocated instance is what makes the disabled
    path free: ``with current_tracer().span(...)`` costs two method
    calls and no allocation.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def incr(self, counter: str, amount: int = 1) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass

    @property
    def elapsed(self) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging only
        return "NullSpan()"


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: hands out :data:`NULL_SPAN` and records
    nothing.  Installed by default; instrumented code never needs to
    check whether tracing is on."""

    __slots__ = ()

    enabled = False
    worker: Optional[str] = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> _NullSpan:
        return NULL_SPAN

    def __repr__(self) -> str:  # pragma: no cover - debugging only
        return "NullTracer()"


NULL_TRACER = NullTracer()


class Tracer:
    """A recording span tracer.

    Args:
        worker: optional worker id (e.g. ``"w1234"``); stamped on every
            record and used to prefix span ids so merged multi-process
            traces keep globally unique ids.
        clock: monotonic time source (injectable for tests).
    """

    __slots__ = ("worker", "clock", "spans", "_stack", "_next", "_prefix")

    enabled = True

    def __init__(
        self,
        *,
        worker: Optional[str] = None,
        clock=time.perf_counter,
    ) -> None:
        self.worker = worker
        self.clock = clock
        #: finished spans, in completion order
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next = 1
        self._prefix = f"{worker}." if worker else ""

    # -- span lifecycle --------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a nested span; close it by exiting the ``with`` block."""
        span = Span(
            self,
            name,
            span_id=f"{self._prefix}s{self._next}",
            parent_id=self._stack[-1].span_id if self._stack else None,
            start=self.clock(),
            attrs=attrs,
        )
        self._next += 1
        self._stack.append(span)
        return span

    def current(self) -> Any:
        """The innermost open span (or :data:`NULL_SPAN` outside any)."""
        return self._stack[-1] if self._stack else NULL_SPAN

    def _finish(self, span: Span) -> None:
        if span.end is not None:  # already finished (double exit)
            return
        span.end = self.clock()
        # Tolerate out-of-order exits (generators, explicit finish):
        # remove the span wherever it sits on the stack.
        try:
            self._stack.remove(span)
        except ValueError:
            pass
        self.spans.append(span)

    # -- multi-process merging -------------------------------------------

    def merge_records(
        self,
        records: Iterable[Dict[str, Any]],
        *,
        worker: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> int:
        """Fold spans recorded by another tracer (typically a worker
        process's trace file) into this one.

        Records are re-parented: a child's root spans hang under
        ``parent_id`` (or this tracer's innermost open span), and every
        record is tagged with ``worker``.  Returns the number of spans
        merged.  Span ids stay unique because workers prefix their own.
        """
        if parent_id is None:
            current = self.current()
            parent_id = getattr(current, "span_id", None)
        merged = 0
        for record in records:
            if record.get("type") != "span":
                continue
            span = Span(
                self,
                record["name"],
                span_id=record["span_id"],
                parent_id=record.get("parent_id") or parent_id,
                start=record.get("start", 0.0),
                attrs=record.get("attrs"),
            )
            span.end = span.start + record.get("elapsed", 0.0)
            span.counters = dict(record.get("counters", {}))
            span.status = record.get("status", "ok")
            if worker is not None:
                span.attrs.setdefault("worker", worker)
            elif record.get("worker") is not None:
                span.attrs.setdefault("worker", record["worker"])
            self.spans.append(span)
            merged += 1
        return merged

    def merge_file(
        self, path: str, *, worker: Optional[str] = None
    ) -> int:
        """Merge a JSONL trace file written by another tracer; the
        ``worker`` tag defaults to the file's meta record."""
        records = read_trace(path)
        if worker is None:
            for record in records:
                if record.get("type") == "meta":
                    worker = record.get("worker")
                    break
        return self.merge_records(records, worker=worker)

    # -- output ----------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every record of the trace: one meta header, then the spans."""
        meta: Dict[str, Any] = {
            "type": "meta",
            "schema_version": SCHEMA_VERSION,
            "clock": "monotonic",
        }
        if self.worker is not None:
            meta["worker"] = self.worker
        return [meta] + [span.to_dict() for span in self.spans]

    def write_jsonl(self, path: str) -> str:
        """Write the trace as JSONL, creating parent directories."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return path

    def __repr__(self) -> str:
        return (
            f"Tracer(spans={len(self.spans)}, open={len(self._stack)}"
            + (f", worker={self.worker!r}" if self.worker else "")
            + ")"
        )


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file (meta + span records, blank lines
    ignored)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# -- the process-wide current tracer -------------------------------------
#
# One mutable slot, not a contextvar: the pipeline is synchronous within
# a process, worker processes install their own tracer on entry, and a
# plain global keeps the disabled lookup path to a single attribute
# read.

_current: Any = NULL_TRACER


def current_tracer() -> Any:
    """The active tracer (a :class:`Tracer`, or :data:`NULL_TRACER`)."""
    return _current


def install_tracer(tracer: Any) -> Any:
    """Install ``tracer`` as the process-wide current tracer; returns
    the previous one (callers restore it in a ``finally``)."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


class activate:
    """``with activate(tracer):`` -- scoped install/restore."""

    __slots__ = ("tracer", "_previous")

    def __init__(self, tracer: Any) -> None:
        self.tracer = tracer
        self._previous: Any = None

    def __enter__(self) -> Any:
        self._previous = install_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        install_tracer(self._previous)
