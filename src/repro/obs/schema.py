"""Trace-schema validation: the contract of ``artifacts/traces/*.jsonl``.

A trace file is JSON Lines: the first record is a ``meta`` header
carrying the schema version, every following record is a ``span``.  The
CI smoke job and the tests validate emitted traces against this module,
so the schema cannot drift silently; external tooling can rely on it.

Span record layout (``type == "span"``)::

    span_id    str   unique within the file ("s1", "w123.s4", ...)
    parent_id  str?  enclosing span's id (None for roots)
    name       str   stage name, dot-namespaced ("aadl.parse", ...)
    start      float monotonic-clock start (seconds; same epoch only
                     within one process's records)
    elapsed    float duration in seconds (>= 0)
    status     str   "ok" or "error"
    worker     str?  worker id for spans recorded in a pool worker
    attrs      obj?  descriptive key/values
    counters   obj?  accumulated integer counters

Meta record layout (``type == "meta"``)::

    schema_version  int   == SCHEMA_VERSION
    clock           str   "monotonic"
    worker          str?  set in worker-process trace files
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.errors import ReproError
from repro.obs.tracer import SCHEMA_VERSION, read_trace

#: The span names every single-model ``analyze`` pipeline run must
#: produce, one per stage -- the CI smoke gate asserts exactly this.
PIPELINE_STAGES = (
    "aadl.parse",
    "aadl.instantiate",
    "translate",
    "engine.explore",
)

#: The span names a compositional (``analyze --compose``) run adds on
#: top of :data:`PIPELINE_STAGES`: one ``compose.partition`` while the
#: coupling graph is built, one ``compose.island`` per analyzed island
#: (worker-side), and one ``compose.combine`` for verdict combination.
COMPOSE_STAGES = (
    "compose.partition",
    "compose.island",
    "compose.combine",
)

#: The span names a portfolio (``analyze --portfolio``) run may add:
#: one ``portfolio.tier.<name>`` per analytic tier consulted (the
#: suffix is the tier's name, e.g. ``portfolio.tier.rta``) and one
#: ``portfolio.escalate`` wrapping the exhaustive exploration when no
#: tier decides.  Prefixes, not exact names: the tier set is
#: configurable.
PORTFOLIO_STAGES = (
    "portfolio.tier.",
    "portfolio.escalate",
)

#: The span names a served analysis (:mod:`repro.serve`) adds: one
#: ``serve.job`` per executed request, recorded in the worker and
#: wrapping the ordinary :data:`PIPELINE_STAGES` spans; its records are
#: also what the SSE progress stream replays to the client.
SERVE_STAGES = ("serve.job",)

#: The span names a hierarchical (``analyze --hier``) run adds: one
#: ``hier.derive`` while the per-partition BDR interfaces are derived
#: from the virtual-processor server parameters, one ``hier.check`` per
#: partition checked analytically against its interface, and one
#: ``hier.flatten`` per partition that escalates to the supply-aware
#: flattened simulation.
HIER_STAGES = (
    "hier.derive",
    "hier.check",
    "hier.flatten",
)

#: The span names a transition-aware modal (``analyze --modal``) run
#: adds: one ``modal.automaton`` while the mode automaton is built and
#: checked (reachability, trigger legality, per-edge deltas), one
#: ``modal.steady`` per reachable mode analyzed as a steady system, one
#: ``modal.transition`` per reachable transition checked under the
#: mode-change protocol, and one ``modal.transient`` per transition
#: whose analytic union test was undecided and escalated to the
#: switch-phasing transient simulation.
MODAL_STAGES = (
    "modal.automaton",
    "modal.steady",
    "modal.transition",
    "modal.transient",
)

#: The span names a reduced (``analyze --reduce``) run adds when the
#: corresponding pass actually fired: ``reduce.canonicalize`` under
#: symmetry (counters ``states_canonicalized`` / ``orbits_merged``) and
#: ``reduce.ample`` under partial-order reduction (counter
#: ``por_pruned``).  Emitted once per exploration, after the search,
#: from the engine's accumulated counters; absent when the pass never
#: changed anything, so their presence is itself a signal.
REDUCTION_STAGES = (
    "reduce.canonicalize",
    "reduce.ample",
)


class TraceSchemaError(ReproError):
    """A trace record violates the schema contract."""


def validate_record(record: Dict[str, Any], *, line: int = 0) -> None:
    """Validate one parsed JSONL record; raises :class:`TraceSchemaError`."""
    where = f"line {line}: " if line else ""
    if not isinstance(record, dict):
        raise TraceSchemaError(f"{where}record is not an object")
    kind = record.get("type")
    if kind == "meta":
        version = record.get("schema_version")
        if version != SCHEMA_VERSION:
            raise TraceSchemaError(
                f"{where}schema_version {version!r} != {SCHEMA_VERSION}"
            )
        return
    if kind != "span":
        raise TraceSchemaError(f"{where}unknown record type {kind!r}")
    for field, types in (
        ("span_id", str),
        ("name", str),
        ("start", (int, float)),
        ("elapsed", (int, float)),
        ("status", str),
    ):
        if not isinstance(record.get(field), types):
            raise TraceSchemaError(
                f"{where}span field {field!r} missing or mistyped "
                f"(got {record.get(field)!r})"
            )
    if record["elapsed"] < 0:
        raise TraceSchemaError(f"{where}negative elapsed {record['elapsed']}")
    if record["status"] not in ("ok", "error"):
        raise TraceSchemaError(f"{where}bad status {record['status']!r}")
    parent = record.get("parent_id")
    if parent is not None and not isinstance(parent, str):
        raise TraceSchemaError(f"{where}parent_id must be a string or null")
    for field in ("attrs", "counters"):
        value = record.get(field)
        if value is not None and not isinstance(value, dict):
            raise TraceSchemaError(f"{where}{field} must be an object")


def validate_records(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Validate a whole trace: per-record checks plus file-level
    invariants (exactly one leading meta, unique span ids, resolvable
    parents).  Returns the records for chaining."""
    records = list(records)
    if not records:
        raise TraceSchemaError("empty trace")
    for line, record in enumerate(records, start=1):
        validate_record(record, line=line)
    if records[0].get("type") != "meta":
        raise TraceSchemaError("first record must be the meta header")
    if sum(1 for r in records if r.get("type") == "meta") != 1:
        raise TraceSchemaError("expected exactly one meta record")
    seen: Dict[str, None] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        span_id = record["span_id"]
        if span_id in seen:
            raise TraceSchemaError(f"duplicate span_id {span_id!r}")
        seen[span_id] = None
    for record in records:
        parent = record.get("parent_id")
        if record.get("type") == "span" and parent is not None:
            if parent not in seen:
                raise TraceSchemaError(
                    f"span {record['span_id']!r} references unknown "
                    f"parent {parent!r}"
                )
    return records


def validate_file(path: str) -> List[Dict[str, Any]]:
    """Read and validate a JSONL trace file; returns its records."""
    return validate_records(read_trace(path))


def missing_pipeline_stages(
    records: Iterable[Dict[str, Any]],
) -> List[str]:
    """Which of :data:`PIPELINE_STAGES` have no span in the trace
    (empty list == full stage coverage)."""
    present = {
        record["name"]
        for record in records
        if record.get("type") == "span"
    }
    return [stage for stage in PIPELINE_STAGES if stage not in present]
