"""Observability substrate: structured tracing for the whole pipeline.

``repro.obs`` makes the multi-stage workflow (AADL parse ->
instantiate -> translate -> engine exploration -> raise) observable
end-to-end: a lightweight span tracer with monotonic timing, nested
span ids and per-span counters (:mod:`repro.obs.tracer`), JSONL trace
artifacts under ``artifacts/traces/`` with a validated schema
(:mod:`repro.obs.schema`), in-process summary tables
(:mod:`repro.obs.summary`), and a bridge that turns engine Observer
events into span annotations without a second callback path
(:mod:`repro.obs.bridge`).

Surfaced through the CLI as ``--trace [PATH]`` / ``--profile`` on
``analyze``, ``acsr``, ``oracle run`` and ``batch run``, plus
``repro trace summary PATH``.  See ``docs/observability.md``.
"""

from repro.obs.bridge import SpanObserver
from repro.obs.schema import (
    COMPOSE_STAGES,
    PIPELINE_STAGES,
    PORTFOLIO_STAGES,
    REDUCTION_STAGES,
    SERVE_STAGES,
    TraceSchemaError,
    missing_pipeline_stages,
    validate_file,
    validate_records,
)
from repro.obs.sse import format_event, parse_stream
from repro.obs.summary import TraceSummary, summarize, summarize_file
from repro.obs.tracer import (
    DEFAULT_TRACES_DIR,
    NULL_SPAN,
    NULL_TRACER,
    SCHEMA_VERSION,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
    install_tracer,
    read_trace,
)

__all__ = [
    "DEFAULT_TRACES_DIR",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "COMPOSE_STAGES",
    "PIPELINE_STAGES",
    "PORTFOLIO_STAGES",
    "REDUCTION_STAGES",
    "SCHEMA_VERSION",
    "SERVE_STAGES",
    "Span",
    "SpanObserver",
    "TraceSchemaError",
    "TraceSummary",
    "Tracer",
    "activate",
    "current_tracer",
    "format_event",
    "install_tracer",
    "missing_pipeline_stages",
    "parse_stream",
    "read_trace",
    "summarize",
    "summarize_file",
    "validate_file",
    "validate_records",
]
