"""Server-Sent Events encoding for span and lifecycle streams.

:mod:`repro.serve` streams a job's progress -- queue lifecycle events
plus the :mod:`repro.obs` spans its worker recorded -- to HTTP clients
as `Server-Sent Events <https://html.spec.whatwg.org/multipage/
server-sent-events.html>`_: a ``text/event-stream`` body of
``event:`` / ``data:`` line pairs separated by blank lines.  This
module owns the wire format in both directions so the server, the
tests and the CI smoke agree on it byte-for-byte:

* :func:`format_event` encodes one ``(event, data)`` pair, with the
  JSON payload kept to a single line (SSE treats every line break as a
  field separator);
* :func:`parse_stream` decodes a whole stream back into ``(event,
  data)`` pairs -- the client half, used by the smoke tests and usable
  from scripts against a live server.

Span records ride the stream under ``event: span`` with their JSONL
schema (:mod:`repro.obs.schema`) unchanged, so a client can feed them
straight back into :func:`repro.obs.summarize`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

__all__ = ["format_event", "parse_stream"]


def format_event(event: str, data: Dict[str, Any]) -> bytes:
    """Encode one SSE message (``event:`` + single-line JSON ``data:``)."""
    if "\n" in event or "\r" in event:
        raise ValueError(f"SSE event name cannot span lines: {event!r}")
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"event: {event}\ndata: {payload}\n\n".encode("utf-8")


def parse_stream(text: str) -> List[Tuple[str, Dict[str, Any]]]:
    """Decode a ``text/event-stream`` body into ``(event, data)`` pairs.

    Tolerates SSE comment lines (leading ``:``) and ignores messages
    without a ``data:`` field; multi-line ``data:`` fields are joined
    with newlines per the SSE specification.
    """
    messages: List[Tuple[str, Dict[str, Any]]] = []
    for block in text.split("\n\n"):
        event = "message"
        data_lines: List[str] = []
        for line in block.splitlines():
            if line.startswith(":"):
                continue
            if line.startswith("event:"):
                event = line[len("event:"):].strip()
            elif line.startswith("data:"):
                data_lines.append(line[len("data:"):].strip())
        if data_lines:
            messages.append((event, json.loads("\n".join(data_lines))))
    return messages
