"""Analysis-as-a-service: the batch pool behind an HTTP/JSON API.

``repro.serve`` turns the crash-hardened :mod:`repro.batch` machinery
into a long-running service (``repro serve``): clients POST AADL
sources, the service keys them through the shared content-addressed
:class:`~repro.batch.cache.VerdictCache`, coalesces concurrent requests
for the same proof, queues misses onto a bounded backlog (full == HTTP
429) and runs them in crash-isolated worker processes; progress streams
back as Server-Sent Events built from :mod:`repro.obs` spans, and every
completed request leaves a replayable repro bundle that ``repro batch
run`` accepts verbatim.  Verdicts answer with the repo's 0/1/2/3 exit
contract mapped onto HTTP status codes.

Layering (all stdlib, no dependencies):

* :mod:`repro.serve.service` -- the protocol-free core: queue,
  coalescing map, executor, cache, bundles;
* :mod:`repro.serve.http` -- minimal HTTP/1.1 over asyncio streams;
* :mod:`repro.serve.server` -- the router and SSE streaming.

See ``docs/serve.md`` for the API reference and operational notes.
"""

from repro.serve.server import ReproServer, VERDICT_STATUS, run_server
from repro.serve.service import (
    DEFAULT_ARTIFACTS_DIR,
    DISPOSITIONS,
    EXIT_CODES,
    AnalysisService,
    JobRecord,
    job_from_request,
)

__all__ = [
    "AnalysisService",
    "DEFAULT_ARTIFACTS_DIR",
    "DISPOSITIONS",
    "EXIT_CODES",
    "JobRecord",
    "ReproServer",
    "VERDICT_STATUS",
    "job_from_request",
    "run_server",
]
