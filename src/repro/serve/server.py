"""The HTTP face of the analysis service: routing and SSE streaming.

:class:`ReproServer` glues :class:`~repro.serve.service.AnalysisService`
to ``asyncio.start_server`` with a hand-rolled router.  The API:

========  ============================  =====================================
method    path                          meaning
========  ============================  =====================================
GET       ``/healthz``                  liveness probe
GET       ``/v1/stats``                 service counters + cache metrics
POST      ``/v1/analyze``               submit an AADL source (JSON body)
GET       ``/v1/jobs/<id>``             request state summary
GET       ``/v1/jobs/<id>/result``      verdict, status-mapped (see below)
GET       ``/v1/jobs/<id>/events``      SSE progress stream
GET       ``/v1/jobs/<id>/bundle``      replayable repro bundle
========  ============================  =====================================

``/result`` maps the repo-wide 0/1/2/3 exit contract onto HTTP status
codes (:data:`VERDICT_STATUS`): ``schedulable`` is 200, ``unschedulable``
is 422 (the request was fine, the *model* fails its deadlines),
``error`` is 400 and ``unknown`` is 503 with ``Retry-After`` (a bigger
budget might answer; the analysis, not the service, is what was
unavailable).  A still-running job answers 202.  A full queue rejects
the submit itself with 429.  Every response also carries the literal
``exit_code`` so scripts can treat HTTP and CLI runs identically.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, Dict, Optional, Tuple

from repro.errors import BackpressureError, ServeError
from repro.obs.sse import format_event
from repro.serve.http import (
    HttpError,
    Request,
    json_response,
    read_request,
    sse_preamble,
)
from repro.serve.service import AnalysisService, JobRecord

logger = logging.getLogger(__name__)

#: Verdict -> HTTP status for ``GET /v1/jobs/<id>/result``: the
#: 0/1/2/3 exit contract in HTTP clothing.
VERDICT_STATUS = {
    "schedulable": 200,
    "unschedulable": 422,
    "error": 400,
    "unknown": 503,
}


class ReproServer:
    """One listening socket in front of an :class:`AnalysisService`.

    ``port=0`` binds an ephemeral port (the tests do this); the bound
    address is available as :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        service: AnalysisService,
        *,
        host: str = "127.0.0.1",
        port: int = 8787,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound ``(host, port)``."""
        if self._server is None or not self._server.sockets:
            return (self.host, self.port)
        host, port = self._server.sockets[0].getsockname()[:2]
        return (host, port)

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                writer.write(
                    json_response(exc.status, {"error": str(exc)})
                )
                return
            if request is None:  # client closed an idle connection
                return
            await self._route(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        except Exception:
            logger.exception("unhandled error serving a request")
            try:
                writer.write(
                    json_response(500, {"error": "internal server error"})
                )
            except Exception:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            writer.write(self._require_get(request) or json_response(
                200, {"status": "ok"}
            ))
            return
        if path == "/v1/stats":
            writer.write(self._require_get(request) or json_response(
                200, self.service.stats()
            ))
            return
        if path == "/v1/analyze":
            if request.method != "POST":
                writer.write(json_response(
                    405,
                    {"error": "use POST"},
                    extra_headers=(("Allow", "POST"),),
                ))
                return
            writer.write(self._submit(request))
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            request_id, _, action = rest.partition("/")
            record = self.service.get(request_id)
            if record is None or not request_id:
                writer.write(json_response(
                    404, {"error": f"unknown request id {request_id!r}"}
                ))
                return
            blocked = self._require_get(request)
            if blocked:
                writer.write(blocked)
                return
            if action == "":
                writer.write(json_response(200, record.summary()))
            elif action == "result":
                writer.write(self._result(record))
            elif action == "bundle":
                writer.write(self._bundle(record))
            elif action == "events":
                await self._stream_events(record, writer)
            else:
                writer.write(json_response(
                    404, {"error": f"unknown job action {action!r}"}
                ))
            return
        writer.write(json_response(
            404, {"error": f"no route for {request.path!r}"}
        ))

    @staticmethod
    def _require_get(request: Request) -> Optional[bytes]:
        if request.method not in ("GET", "HEAD"):
            return json_response(
                405, {"error": "use GET"}, extra_headers=(("Allow", "GET"),)
            )
        return None

    # -- endpoints -------------------------------------------------------

    def _submit(self, request: Request) -> bytes:
        try:
            body = request.json()
            record, disposition = self.service.submit_request(body)
        except BackpressureError as exc:
            return json_response(
                429,
                {"error": str(exc), "backlog": self.service.backlog},
                extra_headers=(("Retry-After", "1"),),
            )
        except HttpError as exc:
            return json_response(exc.status, {"error": str(exc)})
        except ServeError as exc:
            return json_response(400, {"error": str(exc)})
        payload: Dict[str, Any] = {
            "request_id": record.request_id,
            "state": record.state,
            "disposition": disposition,
            "cache_key": record.key,
            "links": {
                "status": f"/v1/jobs/{record.request_id}",
                "result": f"/v1/jobs/{record.request_id}/result",
                "events": f"/v1/jobs/{record.request_id}/events",
                "bundle": f"/v1/jobs/{record.request_id}/bundle",
            },
        }
        # Already-done submissions (cache hit, invalid model) answer
        # with the final verdict inline; everything else is a 202.
        if record.state == "done" and record.result is not None:
            payload["verdict"] = record.result.verdict
            payload["exit_code"] = record.exit_code()
            return json_response(200, payload)
        return json_response(202, payload)

    def _result(self, record: JobRecord) -> bytes:
        if record.state != "done" or record.result is None:
            return json_response(
                202,
                {
                    "request_id": record.request_id,
                    "state": record.state,
                    "verdict": None,
                },
                extra_headers=(("Retry-After", "1"),),
            )
        result = record.result
        status = VERDICT_STATUS.get(result.verdict, 500)
        payload: Dict[str, Any] = {
            "request_id": record.request_id,
            "state": "done",
            "disposition": record.disposition,
            "exit_code": record.exit_code(),
            "result": result.to_dict(),
        }
        headers: Tuple[Tuple[str, str], ...] = ()
        if result.verdict == "unknown":
            # A bigger state budget might decide; invite a retry.
            headers = (("Retry-After", "5"),)
        return json_response(status, payload, extra_headers=headers)

    def _bundle(self, record: JobRecord) -> bytes:
        if record.bundle_path is None:
            return json_response(
                404,
                {
                    "error": "no bundle for this request "
                    "(still running, or bundles disabled)"
                },
            )
        try:
            with open(record.bundle_path, "r", encoding="utf-8") as handle:
                blob = handle.read()
        except OSError as exc:
            return json_response(404, {"error": f"bundle unreadable: {exc}"})
        return json_response(200, json.loads(blob))

    async def _stream_events(
        self, record: JobRecord, writer: asyncio.StreamWriter
    ) -> None:
        """Replay the record's event history, then stream live events
        until the terminal ``result`` event; the connection then
        closes, which is how clients know the stream is complete."""
        queue = self.service.subscribe(record)
        writer.write(sse_preamble())
        try:
            while True:
                event, data = await queue.get()
                writer.write(format_event(event, data))
                await writer.drain()
                if event == "result":
                    return
        finally:
            self.service.unsubscribe(record, queue)


async def _serve(service: AnalysisService, host: str, port: int) -> None:
    server = ReproServer(service, host=host, port=port)
    await server.start()
    bound_host, bound_port = server.address
    print(f"repro serve listening on http://{bound_host}:{bound_port}")
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8787,
    **service_options: Any,
) -> int:
    """Build a service and serve until interrupted (the CLI entry)."""
    service = AnalysisService(**service_options)
    try:
        asyncio.run(_serve(service, host, port))
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    return 0
