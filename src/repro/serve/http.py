"""Minimal HTTP/1.1 primitives for the analysis server.

The standard library has an HTTP *client* and a synchronous
``http.server``, but nothing that speaks HTTP over asyncio streams --
and this repo adds no dependencies -- so :mod:`repro.serve` carries the
~100 lines of wire format itself: request parsing off a
``StreamReader`` (:func:`read_request`) and response formatting
(:func:`response` / :func:`json_response`).  Deliberately small
surface: HTTP/1.1, ``Connection: close`` on every exchange (the server
never reuses a connection; SSE streams until done and closes), bodies
gated by ``Content-Length`` with a hard size cap.  That subset is
exactly what ``urllib``/``http.client``/``curl`` need and keeps the
parser honest about what it does not implement (no chunked request
bodies, no pipelining, no TLS -- front it with a real proxy for
anything public-facing).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ServeError

#: Hard cap on request bodies (an AADL source, not a dataset).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Hard cap on the request line + header block.
MAX_HEADER_BYTES = 64 * 1024

STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ServeError):
    """A malformed or oversized request; carries the status to send."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


class Request:
    """One parsed request: method, split target, headers, raw body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body decoded as JSON; :class:`HttpError` 400 on junk."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    def __repr__(self) -> str:
        return f"Request({self.method} {self.path})"


async def read_request(reader) -> Optional[Request]:
    """Parse one request off an asyncio ``StreamReader``.

    Returns None on a clean EOF before any bytes (client closed an
    idle connection); raises :class:`HttpError` on malformed or
    oversized input so the caller can answer with the right status.
    """
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "header block too large") from None
    if len(header_blob) > MAX_HEADER_BYTES:
        raise HttpError(413, "header block too large")
    lines = header_blob.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query))
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length_header!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length_header!r}")
        if length > MAX_BODY_BYTES:
            raise HttpError(
                413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "body shorter than Content-Length") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return Request(method.upper(), path, query, headers, body)


def response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Format a complete ``Connection: close`` response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in extra_headers:
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload: Any,
    *,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """A JSON body with the right headers, sorted keys, trailing LF."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )
    return response(status, body, extra_headers=extra_headers)


def sse_preamble() -> bytes:
    """Headers opening a ``text/event-stream`` response (no length:
    the stream ends when the connection closes)."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
