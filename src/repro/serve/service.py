"""The analysis service: queueing, coalescing, caching, crash recovery.

:class:`AnalysisService` is the protocol-free core of ``repro serve``:
it owns the bounded job queue, the shared :class:`~repro.batch.cache.
VerdictCache`, the in-flight coalescing map and the worker executor,
and it knows nothing about HTTP (that is :mod:`repro.serve.server`).
The split keeps every scheduling decision unit-testable without a
socket.

Lifecycle of one submitted :class:`~repro.batch.jobs.AnalysisJob`:

1. ``submit`` computes the verdict-cache key.  A model the pipeline
   cannot even key (syntax error, bad options) completes *immediately*
   with an ``error`` verdict -- malformed requests never occupy queue
   slots.
2. A cache hit completes immediately too, serving the stored verdict.
3. A miss whose key matches a queued or running request **coalesces**:
   the caller is handed the existing record and no second proof runs.
4. Otherwise the job enters the bounded queue.  A full queue raises
   :class:`~repro.errors.BackpressureError` (HTTP 429): the service
   sheds load at the door instead of accepting work it cannot start.

Worker coroutines pull records off the queue and run the actual proof
in an executor -- a ``ProcessPoolExecutor`` by default, so a job that
hard-kills its worker (OOM, SIGKILL, interpreter abort) cannot take the
server down.  A broken pool is rebuilt and the job retried once; a
second crash yields the :data:`~repro.batch.pool.WORKER_DIED` error
verdict, mirroring the batch pool's salvage semantics.  Every executed
job runs under a worker-local :class:`~repro.obs.Tracer` whose
``serve.job`` span (and nested pipeline spans) stream back to
subscribers as SSE events and replay to late subscribers.

Completed jobs are persisted as **repro bundles** under
``artifacts/serve/``: self-contained JSON with the exact job dict,
which ``repro batch run bundle.json`` (or ``AnalysisJob.from_file``)
replays verbatim.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import threading
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.batch.cache import VerdictCache, cache_key, resolve_cache
from repro.batch.jobs import AnalysisJob, JobResult, execute_job
from repro.batch.pool import WORKER_DIED
from repro.errors import BackpressureError, ReproError, ServeError

logger = logging.getLogger(__name__)

#: Default directory for replayable result bundles.
DEFAULT_ARTIFACTS_DIR = os.path.join("artifacts", "serve")

#: Verdict -> process exit code, the CLI contract verbatim.
EXIT_CODES = {
    "schedulable": 0,
    "unschedulable": 1,
    "error": 2,
    "unknown": 3,
}

#: How a request was satisfied (the ``disposition`` field of the
#: submit response): proven fresh, served from the persistent cache, or
#: coalesced onto an identical in-flight request.
DISPOSITIONS = ("queued", "cached", "coalesced", "invalid")

# The tracer's process-wide current slot means two jobs tracing in one
# process would interleave; thread-mode executors serialize here.
# Process-mode workers each own their interpreter, so the lock is free.
_TRACE_LOCK = threading.Lock()


def _run_serve_job(job_data: Dict[str, Any], trace: bool) -> Dict[str, Any]:
    """Executor entry point: run one job, return result + span records.

    Module-level (hence picklable) so it crosses the process boundary;
    everything in and out is plain JSON types.  ``execute_job`` already
    captures every exception as an ``error`` verdict, so the only way
    this function fails to return is the worker process dying.
    """
    from repro.obs.tracer import Tracer, activate

    job = AnalysisJob.from_dict(job_data)
    if not trace:
        return {"result": execute_job(job).to_dict(), "spans": []}
    with _TRACE_LOCK:
        tracer = Tracer(worker=f"w{os.getpid()}")
        with activate(tracer):
            with tracer.span(
                "serve.job", job_id=job.job_id, kind=job.kind
            ) as span:
                result = execute_job(job)
                span.set(verdict=result.verdict)
        return {
            "result": result.to_dict(),
            "spans": [s.to_dict() for s in tracer.spans],
        }


class JobRecord:
    """One accepted request: state, event history, live subscribers.

    All mutation happens on the event loop (worker coroutines and HTTP
    handlers alike), so no locking is needed; the executor only ever
    sees the job's dict form.
    """

    __slots__ = (
        "request_id",
        "job",
        "key",
        "disposition",
        "state",
        "result",
        "events",
        "subscribers",
        "done",
        "coalesced",
        "bundle_path",
    )

    def __init__(
        self,
        request_id: str,
        job: AnalysisJob,
        key: Optional[str],
        disposition: str,
    ) -> None:
        self.request_id = request_id
        self.job = job
        self.key = key
        self.disposition = disposition
        self.state = "queued"  # -> "running" -> "done"
        self.result: Optional[JobResult] = None
        #: full event history, replayed to late SSE subscribers
        self.events: List[Tuple[str, Dict[str, Any]]] = []
        self.subscribers: List[asyncio.Queue] = []
        self.done = asyncio.Event()
        #: how many extra requests coalesced onto this one
        self.coalesced = 0
        self.bundle_path: Optional[str] = None

    def exit_code(self) -> int:
        """The CLI exit code this record's verdict maps to (2 while
        still pending, matching "no answer yet is not an answer")."""
        if self.result is None:
            return EXIT_CODES["error"]
        return EXIT_CODES.get(self.result.verdict, EXIT_CODES["error"])

    def summary(self) -> Dict[str, Any]:
        """The JSON shape of ``GET /v1/jobs/<id>``."""
        body: Dict[str, Any] = {
            "request_id": self.request_id,
            "job_id": self.job.job_id,
            "kind": self.job.kind,
            "cache_key": self.key,
            "disposition": self.disposition,
            "state": self.state,
            "coalesced": self.coalesced,
        }
        if self.result is not None:
            body["verdict"] = self.result.verdict
            body["cached"] = self.result.cached
            body["exit_code"] = self.exit_code()
            if self.result.error:
                body["error"] = self.result.error
        return body

    def __repr__(self) -> str:
        return (
            f"JobRecord({self.request_id!r}, state={self.state}, "
            f"disposition={self.disposition})"
        )


class AnalysisService:
    """The queueing/caching/coalescing core behind ``repro serve``.

    Args:
        cache: a cache spec (see :func:`~repro.batch.cache.
            resolve_cache`); the resolved store is shared by every
            request and reported by :meth:`stats`.
        workers: executor width == number of concurrent proofs.
        backlog: bounded queue depth; submissions beyond it raise
            :class:`BackpressureError`.
        executor: ``"process"`` (crash-isolated, the default) or
            ``"thread"`` (cheaper startup; used by the tests -- a
            thread cannot be SIGKILLed, so no crash isolation).
        artifacts_dir: where replayable result bundles land (None
            disables bundles).
        trace: record per-job spans and stream them as events.
    """

    def __init__(
        self,
        *,
        cache: Any = True,
        workers: int = 2,
        backlog: int = 16,
        executor: str = "process",
        artifacts_dir: Optional[str] = DEFAULT_ARTIFACTS_DIR,
        trace: bool = True,
    ) -> None:
        if executor not in ("process", "thread"):
            raise ServeError(
                f"unknown executor mode {executor!r}; "
                "choose 'process' or 'thread'"
            )
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if backlog < 1:
            raise ServeError(f"backlog must be >= 1, got {backlog}")
        self.cache: Optional[VerdictCache] = resolve_cache(cache)
        self.workers = workers
        self.backlog = backlog
        self.executor_mode = executor
        self.artifacts_dir = artifacts_dir
        self.trace = trace
        self.records: Dict[str, JobRecord] = {}
        #: cache key -> queued/running record, the coalescing map
        self.inflight: Dict[str, JobRecord] = {}
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "rejected": 0,
            "invalid": 0,
            "worker_crashes": 0,
        }
        self._queue: Optional[asyncio.Queue] = None
        self._executor: Any = None
        self._tasks: List[asyncio.Task] = []
        self._next_id = 1

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Create the queue and executor, spawn the worker coroutines."""
        self._queue = asyncio.Queue(maxsize=self.backlog)
        self._executor = self._make_executor()
        self._tasks = [
            asyncio.create_task(self._worker_loop(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel the workers and tear the executor down."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _make_executor(self) -> Any:
        if self.executor_mode == "thread":
            return ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="serve"
            )
        from repro.batch.pool import _pool_context

        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=_pool_context()
        )

    # -- submission ------------------------------------------------------

    def submit(self, job: AnalysisJob) -> Tuple[JobRecord, str]:
        """Accept ``job``; returns ``(record, disposition)``.

        The disposition tells the caller what happened to *this*
        submission: ``cached`` and ``invalid`` are already done,
        ``coalesced`` shares an earlier in-flight record (whose
        request id the caller adopts), ``queued`` entered the backlog.
        Raises :class:`BackpressureError` when the backlog is full.
        """
        if self._queue is None:
            raise ServeError("service not started")
        self.counters["submitted"] += 1
        try:
            key: Optional[str] = cache_key(job)
        except ReproError as exc:
            # Unkeyable == unanalyzable: complete on the spot, off-queue.
            self.counters["invalid"] += 1
            record = self._new_record(job, None, "invalid")
            self._publish(record, "queued", {"state": "queued"})
            self._finish(
                record,
                JobResult(
                    job_id=job.job_id,
                    kind=job.kind,
                    verdict="error",
                    error=str(exc),
                ),
            )
            return record, "invalid"
        if self.cache is not None:
            stored = self.cache.get(key)
            if stored is not None:
                self.counters["cache_hits"] += 1
                record = self._new_record(job, key, "cached")
                self._publish(record, "queued", {"state": "queued"})
                result = JobResult.from_dict(stored)
                result.job_id = job.job_id
                result.cached = True
                self._finish(record, result)
                return record, "cached"
        primary = self.inflight.get(key)
        if primary is not None:
            self.counters["coalesced"] += 1
            primary.coalesced += 1
            return primary, "coalesced"
        record = self._new_record(job, key, "queued")
        try:
            self._queue.put_nowait(record)
        except asyncio.QueueFull:
            self.counters["rejected"] += 1
            del self.records[record.request_id]
            raise BackpressureError(
                f"job queue full ({self.backlog} pending); retry later"
            ) from None
        self.inflight[key] = record
        self._publish(
            record,
            "queued",
            {"state": "queued", "position": self._queue.qsize()},
        )
        return record, "queued"

    def submit_request(self, body: Dict[str, Any]) -> Tuple[JobRecord, str]:
        """Build a job from a decoded ``POST /v1/analyze`` body and
        submit it.  Raises :class:`ServeError` on a malformed request
        (the HTTP layer maps it to 400)."""
        return self.submit(job_from_request(body))

    def get(self, request_id: str) -> Optional[JobRecord]:
        return self.records.get(request_id)

    def _new_record(
        self, job: AnalysisJob, key: Optional[str], disposition: str
    ) -> JobRecord:
        request_id = f"r{self._next_id:06d}"
        self._next_id += 1
        record = JobRecord(request_id, job, key, disposition)
        self.records[request_id] = record
        return record

    # -- event fan-out ---------------------------------------------------

    def subscribe(self, record: JobRecord) -> asyncio.Queue:
        """An event queue pre-loaded with the record's full history;
        live events follow.  The history always ends with ``result``
        for a done record, so consumers terminate naturally."""
        queue: asyncio.Queue = asyncio.Queue()
        for event, data in record.events:
            queue.put_nowait((event, data))
        if not record.done.is_set():
            record.subscribers.append(queue)
        return queue

    def unsubscribe(self, record: JobRecord, queue: asyncio.Queue) -> None:
        try:
            record.subscribers.remove(queue)
        except ValueError:
            pass

    def _publish(
        self, record: JobRecord, event: str, data: Dict[str, Any]
    ) -> None:
        data = {"request_id": record.request_id, **data}
        record.events.append((event, data))
        for queue in record.subscribers:
            queue.put_nowait((event, data))

    # -- execution -------------------------------------------------------

    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            record = await self._queue.get()
            try:
                await self._run_record(record)
            except Exception:  # never let a bug kill the worker loop
                logger.exception(
                    "serve worker failed on %s", record.request_id
                )
                if record.result is None:
                    self._finish(
                        record,
                        JobResult(
                            job_id=record.job.job_id,
                            kind=record.job.kind,
                            verdict="error",
                            error="internal service error (see server log)",
                        ),
                    )
            finally:
                self._queue.task_done()

    async def _run_record(self, record: JobRecord) -> None:
        loop = asyncio.get_running_loop()
        record.state = "running"
        payload: Optional[Dict[str, Any]] = None
        for attempt in (1, 2):
            self._publish(
                record, "running", {"state": "running", "attempt": attempt}
            )
            executor = self._executor
            try:
                payload = await loop.run_in_executor(
                    executor,
                    _run_serve_job,
                    record.job.to_dict(),
                    self.trace,
                )
                break
            except BrokenExecutor:
                # The worker process died mid-job.  Rebuild the pool
                # (identity-guarded: concurrent victims rebuild once)
                # and retry this job exactly once -- it may have been
                # an innocent sharing a pool with the killer.
                self.counters["worker_crashes"] += 1
                logger.warning(
                    "worker pool died while executing %s (attempt %d)",
                    record.request_id,
                    attempt,
                )
                if self._executor is executor:
                    self._executor = self._make_executor()
                    executor.shutdown(wait=False)
        if payload is None:
            result = JobResult(
                job_id=record.job.job_id,
                kind=record.job.kind,
                verdict="error",
                error=WORKER_DIED,
            )
        else:
            result = JobResult.from_dict(payload["result"])
            for span in payload.get("spans", ()):
                self._publish(record, "span", dict(span))
            if (
                self.cache is not None
                and record.key is not None
                and result.error is None
            ):
                self.cache.put(
                    record.key, result.to_dict(), job_id=record.job.job_id
                )
        self._finish(record, result)

    def _finish(self, record: JobRecord, result: JobResult) -> None:
        record.result = result
        record.state = "done"
        if record.key is not None and self.inflight.get(record.key) is record:
            del self.inflight[record.key]
        self.counters["completed"] += 1
        if self.artifacts_dir:
            record.bundle_path = self._write_bundle(record)
        data: Dict[str, Any] = {
            "state": "done",
            "verdict": result.verdict,
            "cached": result.cached,
            "exit_code": record.exit_code(),
        }
        if result.error:
            data["error"] = result.error
        self._publish(record, "result", data)
        record.subscribers = []
        record.done.set()

    # -- bundles ---------------------------------------------------------

    def _write_bundle(self, record: JobRecord) -> Optional[str]:
        """Persist a replayable bundle; like the verdict cache, a
        broken artifacts directory degrades to a warning, never an
        error response."""
        assert record.result is not None
        bundle = {
            "schema_version": 1,
            "request_id": record.request_id,
            "cache_key": record.key,
            "disposition": record.disposition,
            "job": record.job.to_dict(),
            "result": record.result.to_dict(),
        }
        path = os.path.join(
            self.artifacts_dir, f"{record.request_id}.json"
        )
        try:
            os.makedirs(self.artifacts_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(bundle, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            logger.warning("bundle write failed for %s: %s", path, exc)
            return None
        return path

    # -- introspection ---------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` body: service counters, queue depth,
        cache metrics."""
        body: Dict[str, Any] = {
            "counters": dict(self.counters),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "backlog": self.backlog,
            "workers": self.workers,
            "executor": self.executor_mode,
            "records": len(self.records),
            "inflight": len(self.inflight),
        }
        body["cache"] = self.cache.stats() if self.cache else None
        return body


def job_from_request(body: Dict[str, Any]) -> AnalysisJob:
    """Build an :class:`AnalysisJob` from a ``POST /v1/analyze`` body.

    Accepted shapes::

        {"source": "<AADL text>", "root": "...", "job_id": "...",
         "portfolio": true, "options": {"max_states": ..., ...}}

        {"job": {<AnalysisJob.to_dict() layout>}}   # bundle replay

    Raises :class:`ServeError` on anything else; the HTTP layer turns
    that into a 400.
    """
    if not isinstance(body, dict):
        raise ServeError("request body must be a JSON object")
    if "job" in body:
        if not isinstance(body["job"], dict):
            raise ServeError("'job' must be an object (AnalysisJob layout)")
        try:
            return AnalysisJob.from_dict(body["job"])
        except ReproError as exc:
            raise ServeError(f"bad job object: {exc}") from exc
    source = body.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ServeError(
            "request needs a non-empty 'source' (AADL text) or a 'job'"
        )
    options = body.get("options", {})
    if not isinstance(options, dict):
        raise ServeError("'options' must be an object")
    known = {"max_states", "quantum_us", "tiers", "reduce", "batch_fault"}
    unknown = sorted(set(options) - known)
    if unknown:
        raise ServeError(
            f"unknown options {unknown}; choose from {sorted(known)}"
        )
    max_states = options.get("max_states", 1_000_000)
    if not isinstance(max_states, int) or max_states < 1:
        raise ServeError(f"max_states must be a positive int, got {max_states!r}")
    quantum_us = options.get("quantum_us")
    if quantum_us is not None and not isinstance(quantum_us, int):
        raise ServeError(f"quantum_us must be an int, got {quantum_us!r}")
    root = body.get("root")
    if root is not None and not isinstance(root, str):
        raise ServeError(f"root must be a string, got {root!r}")
    job_id = body.get("job_id")
    if job_id is not None and not isinstance(job_id, str):
        raise ServeError(f"job_id must be a string, got {job_id!r}")
    if body.get("portfolio"):
        job = AnalysisJob.from_portfolio(
            source,
            root=root,
            job_id=job_id,
            max_states=max_states,
            quantum_us=quantum_us,
            tiers=options.get("tiers"),
            reduce=options.get("reduce"),
        )
    else:
        job = AnalysisJob.from_aadl(
            source,
            root=root,
            job_id=job_id,
            max_states=max_states,
            quantum_us=quantum_us,
            reduce=options.get("reduce"),
        )
    if options.get("batch_fault"):
        job.options["batch_fault"] = options["batch_fault"]
    return job
