"""Command-line interface: the OSATE-plugin workflow without Eclipse.

The paper's tool runs as three steps behind a button (S5): translate the
AADL model to VERSA input, run the deadlock search, raise the failing
scenario.  The CLI exposes each step plus the baselines::

    repro analyze model.aadl --root Sys.impl        # full pipeline
    repro analyze a.aadl b.aadl --jobs 4 --cache    # parallel batch
    repro analyze model.aadl --root Sys.impl --all-modes
    repro analyze model.aadl --modal --protocol asynchronous
    repro oracle modal --seeds 50                   # transient soundness
    repro validate model.aadl --root Sys.impl       # S4.1 checks only
    repro translate model.aadl --root Sys.impl      # emit ACSR source
    repro acsr system.acsr                          # explore raw ACSR
    repro simulate model.aadl --root Sys.impl       # Cheddar-style Gantt
    repro batch run models/*.aadl --jobs 4 --cache  # pooled + cached
    repro batch cache                               # inspect the cache
    repro analyze model.aadl --compose              # island decomposition
    repro compose plan model.aadl                   # partition, no analysis
    repro oracle run --seeds 200 --profile smoke    # differential campaign
    repro oracle compose --seeds 50                 # compositional =? monolithic
    repro analyze model.aadl --reduce               # symmetry + POR reduction
    repro oracle reduce --seeds 50                  # reduced =? unreduced
    repro oracle replay artifacts/oracle/x.json     # re-run a repro bundle
    repro analyze model.aadl --trace out.jsonl      # record a span trace
    repro trace summary out.jsonl                   # per-stage profile

``--trace [PATH]`` records a structured span trace of the whole
pipeline (JSONL under ``artifacts/traces/`` by default) and
``--profile`` prints the per-stage summary table after the run; both
are available on ``analyze``, ``acsr``, ``batch run`` and ``oracle
run`` (there as ``--span-profile``, since ``--profile`` already names
the campaign envelope).  See docs/observability.md.

(Equivalently: ``python -m repro ...``.)

Exit status (every verdict-producing subcommand): 0 schedulable /
valid / no deadlock, 1 violation or deadlock found, 2 usage or model
error, 3 verdict unknown (state budget exhausted before an answer).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError

#: The exit-code contract, shared by every verdict-producing
#: subcommand.  UNKNOWN is deliberately not 2: "the budget ran out" is
#: an answer about the model, not a usage error, and scripts gating on
#: analyze must be able to tell the two apart.
EXIT_SCHEDULABLE = 0
EXIT_VIOLATION = 1
EXIT_ERROR = 2
EXIT_UNKNOWN = 3

EXIT_STATUS_EPILOG = """\
exit status:
  0  schedulable / valid / no deadlock / campaign agreed
  1  unschedulable, deadlock, violation or disagreement found
  2  usage or model error
  3  verdict unknown (state budget exhausted before an answer)

State-space reduction (--reduce) shrinks how many states exploration
visits, never the exit contract: a reduced run that exhausts its budget
still exits 3 (unknown) rather than reading the covered quotient space
as proof, and a deadlock found in the reduced space maps to a real
failing scenario (up to replica renaming under symmetry).
"""


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _quantum(args):
    from repro.aadl.properties import TimeValue

    if args.quantum is None:
        return None
    return TimeValue(args.quantum, "us")


def _load_instance(args):
    from repro.aadl import infer_root, instantiate, parse_model

    model = parse_model(_read(args.file))
    if args.root is None:
        args.root = infer_root(model)
    return model, instantiate(model, args.root)


def _cache_spec(args):
    """--cache-dir wins; --cache means the default directory; else off."""
    if getattr(args, "cache_dir", None):
        return args.cache_dir
    return True if getattr(args, "cache", False) else None


def _default_trace_path(command: str) -> str:
    import os
    import time

    from repro.obs.tracer import DEFAULT_TRACES_DIR

    stamp = time.strftime("%Y%m%d-%H%M%S")
    return os.path.join(
        DEFAULT_TRACES_DIR, f"{command}-{stamp}-{os.getpid()}.jsonl"
    )


def _dispatch(args) -> int:
    """Run the selected subcommand, wrapped in a recording tracer when
    ``--trace``/``--profile`` ask for one (otherwise the no-op tracer
    stays installed and tracing costs nothing)."""
    trace_arg = getattr(args, "trace", None)
    profiling = getattr(args, "span_profile", False)
    if trace_arg is None and not profiling:
        return args.func(args)

    from repro.obs import Tracer, activate, summarize

    tracer = Tracer()
    with activate(tracer):
        status = args.func(args)
    if trace_arg is not None:
        path = trace_arg or _default_trace_path(args.command)
        tracer.write_jsonl(path)
        print(
            f"wrote trace ({len(tracer.spans)} spans) to {path}",
            file=sys.stderr,
        )
    if profiling:
        print(summarize(tracer.records()).format(), file=sys.stderr)
    return status


def _run_file_batch(args, paths: List[str]) -> int:
    """Shared by ``analyze <files...>`` and ``batch run``: fan the
    inputs across the worker pool and honour the batch exit contract."""
    from repro.batch import AnalysisJob, run_batch

    from repro.engine.reduce import reduction_token

    reduce_token = reduction_token(getattr(args, "reduce", None))
    job_list = []
    for path in paths:
        if path.endswith(".json"):
            job_list.append(
                AnalysisJob.from_file(path, max_states=args.max_states)
            )
        else:
            modal = (
                {"modal": True, "protocol": args.protocol}
                if getattr(args, "modal", False)
                else {}
            )
            job_list.append(
                AnalysisJob.from_file(
                    path,
                    root=getattr(args, "root", None),
                    max_states=args.max_states,
                    quantum_us=args.quantum,
                    portfolio=getattr(args, "portfolio", False),
                    reduce=reduce_token,
                    **modal,
                )
            )
    report = run_batch(
        job_list, workers=args.jobs, cache=_cache_spec(args)
    )
    print(report.format(show_stats=args.stats))
    return report.exit_code()


def cmd_analyze(args) -> int:
    from repro.analysis import Verdict, analyze_model, compare_with_baselines

    if getattr(args, "compose", False):
        # Compositional analysis subsumes the batch path: islands fan
        # out through the same pool/cache, so this branch comes first.
        return _run_compose(args)
    if getattr(args, "hier", False):
        return _run_hier(args)
    if getattr(args, "modal", False):
        return _run_modal(args)
    if args.all_modes:
        # Before the batch path: per-mode analysis runs its own pool
        # fan-out (one job per mode), so --jobs/--cache belong to it.
        return _run_all_modes(args)
    if len(args.files) > 1 or _cache_spec(args) is not None:
        return _run_file_batch(args, args.files)
    args.file = args.files[0]
    model, instance = _load_instance(args)
    result = analyze_model(
        instance,
        quantum=_quantum(args),
        max_states=args.max_states,
        portfolio=getattr(args, "portfolio", False),
        reduction=getattr(args, "reduce", None),
    )
    print(result.format(show_stats=args.stats))
    if args.response_times and result.verdict is Verdict.SCHEDULABLE:
        from repro.analysis.response import response_time_report

        print()
        print(
            response_time_report(
                result.translation, max_states=args.max_states
            )
        )
    if args.baselines:
        print()
        print("baselines:")
        for row in compare_with_baselines(instance, max_states=args.max_states):
            print(f"  {row!r}")
    return result.verdict.exit_code


def _run_all_modes(args) -> int:
    from repro.analysis.modes import analyze_all_modes
    from repro.engine.reduce import reduction_token

    if len(args.files) != 1:
        raise ReproError("--all-modes analyzes exactly one model at a time")
    args.file = args.files[0]
    model, _ = _load_instance(args)
    result = analyze_all_modes(
        model,
        args.root,
        quantum=_quantum(args),
        max_states=args.max_states,
        portfolio=getattr(args, "portfolio", False),
        reduction=reduction_token(getattr(args, "reduce", None)),
        workers=args.jobs,
        cache=_cache_spec(args),
    )
    print(result.format())
    return result.verdict.exit_code


def _run_modal(args) -> int:
    from repro.engine.reduce import reduction_token
    from repro.modal import (
        DEFAULT_MAX_PHASINGS,
        DEFAULT_TRANSIENT_WINDOW,
        analyze_modal,
    )

    if len(args.files) != 1:
        raise ReproError("--modal analyzes exactly one model at a time")
    args.file = args.files[0]
    model, _ = _load_instance(args)
    result = analyze_modal(
        model,
        args.root,
        protocol=args.protocol,
        quantum=_quantum(args),
        max_states=args.max_states,
        portfolio=getattr(args, "portfolio", False),
        reduction=reduction_token(getattr(args, "reduce", None)),
        workers=args.jobs,
        cache=_cache_spec(args),
        max_phasings=(
            args.max_phasings
            if args.max_phasings is not None
            else DEFAULT_MAX_PHASINGS
        ),
        max_window=(
            args.max_window
            if args.max_window is not None
            else DEFAULT_TRANSIENT_WINDOW
        ),
    )
    print(result.format())
    if args.stats:
        print()
        print(result.stats.format())
    return result.verdict.exit_code


def _reachable_mode_list(model, root: str):
    """The reachable modes of ``root`` in declaration order, for the
    per-mode --hier/--compose loops."""
    from repro.modal.automaton import ModeAutomaton

    impl = model.implementation(root)
    if not impl.modes:
        raise ReproError(
            f"{root} declares no modes; drop --all-modes"
        )
    automaton = ModeAutomaton.from_implementation(model, impl)
    reachable = {m.lower() for m in automaton.reachable_modes()}
    modes = [m for m in automaton.modes if m.lower() in reachable]
    return impl, modes, automaton.unreachable_modes()


def _run_hier(args) -> int:
    from repro.hier import DEFAULT_MAX_WINDOW, analyze_hier
    from repro.translate.quantum import TimingQuantizer

    if len(args.files) != 1:
        raise ReproError("--hier analyzes exactly one model at a time")
    args.file = args.files[0]
    model, instance = _load_instance(args)
    quantum = _quantum(args)
    quantizer = TimingQuantizer(quantum) if quantum is not None else None
    max_window = (
        args.max_window
        if args.max_window is not None
        else DEFAULT_MAX_WINDOW
    )
    if getattr(args, "all_modes", False):
        from repro.aadl import instantiate
        from repro.analysis import Verdict

        impl, modes, unreachable = _reachable_mode_list(model, args.root)
        verdicts = []
        for mode in modes:
            pinned = instantiate(
                model, args.root, mode_overrides={impl.name: mode}
            )
            result = analyze_hier(
                pinned,
                quantizer=quantizer,
                max_window=max_window,
                steady_mode=True,
            )
            print(f"mode {mode}: {result.verdict.value}")
            for line in result.format(show_stats=args.stats).splitlines():
                print(f"  {line}")
            verdicts.append(result.verdict)
        if unreachable:
            print(
                "unreachable from the initial mode (skipped): "
                + ", ".join(unreachable)
            )
        overall = Verdict.combine(verdicts)
        print(f"overall: {overall.value}")
        return overall.exit_code
    result = analyze_hier(
        instance, quantizer=quantizer, max_window=max_window
    )
    print(result.format(show_stats=args.stats))
    for line in result.tier_trail:
        print(line)
    return result.verdict.exit_code


def _run_compose(args) -> int:
    from repro.compose import analyze_compositionally

    if len(args.files) != 1:
        raise ReproError("--compose analyzes exactly one model at a time")
    args.file = args.files[0]
    model, instance = _load_instance(args)
    if getattr(args, "all_modes", False):
        from repro.analysis import Verdict

        impl, modes, unreachable = _reachable_mode_list(model, args.root)
        verdicts = []
        for mode in modes:
            result = analyze_compositionally(
                model,
                root_impl=args.root,
                mode=mode,
                quantum=_quantum(args),
                max_states=args.max_states,
                workers=args.jobs,
                cache=_cache_spec(args),
                portfolio=getattr(args, "portfolio", False),
                reduction=getattr(args, "reduce", None),
            )
            print(f"mode {mode}: {result.verdict.value}")
            if not result.compositional:
                print(
                    f"  monolithic fallback: {result.fallback_reason}",
                    file=sys.stderr,
                )
            for line in result.format(show_stats=args.stats).splitlines():
                print(f"  {line}")
            verdicts.append(result.verdict)
        if unreachable:
            print(
                "unreachable from the initial mode (skipped): "
                + ", ".join(unreachable)
            )
        overall = Verdict.combine(verdicts)
        print(f"overall: {overall.value}")
        return overall.exit_code
    result = analyze_compositionally(
        instance,
        quantum=_quantum(args),
        max_states=args.max_states,
        workers=args.jobs,
        cache=_cache_spec(args),
        portfolio=getattr(args, "portfolio", False),
        reduction=getattr(args, "reduce", None),
    )
    if not result.compositional:
        print(
            f"compose: monolithic fallback: {result.fallback_reason}",
            file=sys.stderr,
        )
    print(result.format(show_stats=args.stats))
    return result.exit_code


def cmd_compose_plan(args) -> int:
    from repro.compose import plan

    _, instance = _load_instance(args)
    print(plan(instance).format())
    return 0


def cmd_validate(args) -> int:
    from repro.aadl.validation import collect_violations

    _, instance = _load_instance(args)
    violations = collect_violations(instance)
    if not violations:
        print(
            f"{instance.qualified_name}: satisfies the translation "
            f"assumptions (S4.1)"
        )
        return 0
    print(f"{instance.qualified_name}: {len(violations)} violation(s):")
    for violation in violations:
        print(f"  - {violation}")
    return 1


def cmd_translate(args) -> int:
    from repro.acsr.printer import format_env
    from repro.translate import TranslationOptions, translate

    _, instance = _load_instance(args)
    result = translate(
        instance, TranslationOptions(quantum=_quantum(args))
    )
    source = format_env(result.env, result.root)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(
            f"wrote {len(result.env)} process definitions to {args.output} "
            f"({result.num_thread_processes} threads, "
            f"{result.num_dispatchers} dispatchers, "
            f"{result.num_queue_processes} queues)"
        )
    else:
        print(source, end="")
    return 0


def cmd_acsr(args) -> int:
    from repro.engine import Budget, ProgressObserver, explore
    from repro.acsr import parse_env
    from repro.obs.tracer import current_tracer

    with current_tracer().span("acsr.parse", file=args.file):
        env, root = parse_env(_read(args.file))
    if root is None:
        raise ReproError(f"{args.file}: no 'system' declaration")
    system = env.close(root)
    if args.walk:
        from repro.versa import random_walk

        trace = random_walk(
            system, max_steps=args.walk, seed=args.seed
        )
        print(f"walk of {len(trace)} step(s), {trace.duration} quanta:")
        print(trace.format(show_states=args.show_states))
        # The trace records whether its final state is stuck; trace
        # length alone cannot tell a deadlock at exactly --walk steps
        # from a truncated healthy run.
        if trace.deadlocked:
            print("walk ended in a deadlock")
            return EXIT_VIOLATION
        return EXIT_SCHEDULABLE
    observers = []
    if args.progress:
        observers.append(ProgressObserver(every_states=args.progress))
    result = explore(
        system,
        strategy=args.strategy,
        budget=Budget(max_states=args.max_states, on_limit="truncate"),
        store_transitions=bool(args.dot),
        stop_at_first_deadlock=not args.full and not args.dot,
        observers=observers,
    )
    print(
        f"states: {result.num_states}  transitions: "
        f"{result.num_transitions}  completed: {result.completed}"
    )
    if args.stats and result.stats is not None:
        print("engine stats:")
        for line in result.stats.format().splitlines():
            print(f"  {line}")
    if args.dot:
        from repro.versa import LTS

        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(LTS.from_exploration(result).to_dot())
        print(f"wrote DOT graph to {args.dot}")
    trace = result.first_deadlock_trace()
    if trace is None:
        if not result.completed:
            print(
                "no deadlock found within the state budget "
                "(verdict unknown)"
            )
            return EXIT_UNKNOWN
        print("no deadlock found")
        return EXIT_SCHEDULABLE
    print(f"deadlock after {trace.duration} time units:")
    print(trace.format(show_states=args.show_states))
    return EXIT_VIOLATION


def cmd_oracle_run(args) -> int:
    from repro.oracle import DEFAULT_ARTIFACTS_DIR, run_campaign

    report = run_campaign(
        seeds=args.seeds,
        profile=args.profile,
        base_seed=args.base_seed,
        artifacts_dir=args.artifacts or DEFAULT_ARTIFACTS_DIR,
        fault=args.fault,
        max_states=args.max_states,
        progress=args.progress,
        jobs=args.jobs,
        cache=_cache_spec(args),
    )
    print(report.format())
    # A campaign's verdict is about agreement, not schedulability:
    # disagreement is the only failure (CI gates on it); UNKNOWN cases
    # are reported in the matrix but do not fail the run.
    return EXIT_VIOLATION if report.disagreements else EXIT_SCHEDULABLE


def cmd_oracle_compose(args) -> int:
    from repro.oracle import run_compose_campaign

    report = run_compose_campaign(
        seeds=args.seeds,
        base_seed=args.base_seed,
        max_states=args.max_states,
        coupled_fraction=args.coupled_fraction,
        progress=args.progress,
    )
    print(report.format())
    return EXIT_VIOLATION if report.disagreements else EXIT_SCHEDULABLE


def cmd_oracle_reduce(args) -> int:
    from repro.oracle import run_reduce_campaign

    report = run_reduce_campaign(
        seeds=args.seeds,
        base_seed=args.base_seed,
        max_states=args.max_states,
        spec=args.spec,
        fault=args.fault,
        jitter_fraction=args.jitter_fraction,
        progress=args.progress,
    )
    print(report.format())
    return EXIT_VIOLATION if report.disagreements else EXIT_SCHEDULABLE


def cmd_oracle_hier(args) -> int:
    from repro.oracle import run_hier_campaign

    report = run_hier_campaign(
        seeds=args.seeds,
        base_seed=args.base_seed,
        max_window=args.max_window,
        fault=args.fault,
        progress=args.progress,
    )
    print(report.format())
    return EXIT_VIOLATION if report.disagreements else EXIT_SCHEDULABLE


def cmd_oracle_modal(args) -> int:
    from repro.oracle import run_modal_campaign

    report = run_modal_campaign(
        seeds=args.seeds,
        base_seed=args.base_seed,
        max_phasings=args.max_phasings,
        max_window=args.max_window,
        fault=args.fault,
        progress=args.progress,
    )
    print(report.format())
    return EXIT_VIOLATION if report.disagreements else EXIT_SCHEDULABLE


def cmd_oracle_portfolio(args) -> int:
    from repro.oracle import run_portfolio_campaign

    report = run_portfolio_campaign(
        seeds=args.seeds,
        base_seed=args.base_seed,
        max_states=args.max_states,
        progress=args.progress,
    )
    print(report.format())
    return EXIT_VIOLATION if report.disagreements else EXIT_SCHEDULABLE


def cmd_batch_run(args) -> int:
    return _run_file_batch(args, args.files)


def cmd_batch_cache(args) -> int:
    import json

    from repro.batch import DEFAULT_CACHE_DIR, VerdictCache

    store = VerdictCache(args.dir or DEFAULT_CACHE_DIR)
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} cached verdict(s) from {store.directory}")
        return 0
    paths = list(store.entries())
    print(
        f"verdict cache at {store.directory}: {len(paths)} entries, "
        f"{store.size_bytes()} bytes"
    )
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        result = entry.get("result") or {}
        print(
            f"  {entry.get('key', '?')[:16]}  "
            f"{result.get('verdict', '?'):<14} "
            f"{entry.get('job_id', '?')}"
        )
    return 0


def cmd_trace_summary(args) -> int:
    from repro.obs import summarize_file

    print(summarize_file(args.path, top=args.top).format())
    return 0


def cmd_oracle_replay(args) -> int:
    from repro.oracle import ReproBundle, replay_bundle

    bundle = ReproBundle.load(args.bundle)
    result = replay_bundle(
        bundle,
        max_states=args.max_states,
        fault=bundle.fault if args.with_fault else None,
    )
    print(result.format())
    return 0 if result.verdict_matches else 1


def cmd_simulate(args) -> int:
    from repro.aadl.properties import SCHEDULING_PROTOCOL
    from repro.sched import extract_task_set, simulate
    from repro.translate.quantum import TimingQuantizer

    _, instance = _load_instance(args)
    processors = [
        p
        for p in instance.processors()
        if any(t.bound_processor is p for t in instance.threads())
    ]
    quantizer = TimingQuantizer.natural(instance)
    status = 0
    for processor in processors:
        tasks = extract_task_set(instance, processor, quantizer)
        if len(tasks) == 0:
            continue
        result = simulate(tasks, policy=args.policy)
        print(f"{processor.qualified_name} [{args.policy}] "
              f"(quantum {quantizer.quantum}):")
        print(result.gantt([t.name for t in tasks]))
        if result.misses:
            status = 1
            for name, when in result.misses:
                print(f"  MISS: {name} at t={when}")
        print()
    return status


def cmd_serve(args) -> int:
    from repro.serve import DEFAULT_ARTIFACTS_DIR, run_server

    cache = None
    if not args.no_cache:
        from repro.batch import DEFAULT_CACHE_DIR, VerdictCache

        cache = VerdictCache(
            args.cache_dir or DEFAULT_CACHE_DIR,
            max_entries=args.cache_max_entries,
            max_bytes=args.cache_max_bytes,
        )
    return run_server(
        host=args.host,
        port=args.port,
        cache=cache,
        workers=args.workers,
        backlog=args.backlog,
        executor=args.executor,
        artifacts_dir=(
            None
            if args.no_bundles
            else (args.artifacts or DEFAULT_ARTIFACTS_DIR)
        ),
        trace=not args.no_trace,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Schedulability analysis of AADL models via translation to "
            "the ACSR process algebra (Sokolsky, Lee & Clarke, IPDPS 2006)"
        ),
        epilog=EXIT_STATUS_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def pool_options(p):
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="worker processes (default: one per CPU core)",
        )
        p.add_argument(
            "--cache",
            action="store_true",
            help="consult/populate the persistent verdict cache "
            "(artifacts/cache)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="verdict-cache directory (implies --cache)",
        )

    def portfolio_options(p):
        p.add_argument(
            "--portfolio",
            dest="portfolio",
            action="store_true",
            help="try the analytic tier chain (utilization cap/bounds, "
            "RTA, EDF demand, simulation) before exhaustive "
            "exploration; the result reports the deciding tier",
        )
        p.add_argument(
            "--no-portfolio",
            dest="portfolio",
            action="store_false",
            help="force pure exhaustive exploration (the default)",
        )
        p.set_defaults(portfolio=False)

    def reduce_options(p):
        p.add_argument(
            "--reduce",
            dest="reduce",
            nargs="?",
            const="sym,por",
            default=None,
            metavar="PASSES",
            help="canonicalize states under replica symmetry and prune "
            "commuting interleavings (comma list of passes: sym, por; "
            "bare --reduce enables both).  Verdict-preserving: same "
            "exit status as the unreduced run (see docs/reduction.md)",
        )
        p.add_argument(
            "--no-reduce",
            dest="reduce",
            action="store_const",
            const=None,
            help="force unreduced exploration (the default)",
        )

    def tracing_options(p, profile_flag="--profile"):
        p.add_argument(
            "--trace",
            nargs="?",
            const="",
            default=None,
            metavar="PATH",
            help="record a JSONL span trace of the run (default PATH "
            "under artifacts/traces/)",
        )
        p.add_argument(
            profile_flag,
            dest="span_profile",
            action="store_true",
            help="print the per-stage span profile to stderr after "
            "the run",
        )

    def common(p, needs_root=True, multi=False):
        if multi:
            p.add_argument(
                "files",
                nargs="+",
                help="input files (several fan out across the worker pool)",
            )
        else:
            p.add_argument("file", help="input file")
        if needs_root:
            p.add_argument(
                "--root",
                help="root system implementation (e.g. Sys.impl); "
                "inferred when the model has exactly one",
            )
        p.add_argument(
            "--quantum",
            type=int,
            default=None,
            metavar="MICROSECONDS",
            help="scheduling quantum (default: GCD of all durations)",
        )
        p.add_argument(
            "--max-states",
            type=int,
            default=1_000_000,
            help="state budget for exploration",
        )

    p_analyze = sub.add_parser(
        "analyze",
        help="translate, explore, raise failing scenarios",
        epilog=EXIT_STATUS_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common(p_analyze, multi=True)
    pool_options(p_analyze)
    tracing_options(p_analyze)
    p_analyze.add_argument(
        "--all-modes",
        action="store_true",
        help="analyze every mode of a multi-modal root separately",
    )
    p_analyze.add_argument(
        "--compose",
        action="store_true",
        help="decompose into processor islands and analyze each "
        "separately (falls back to monolithic analysis, with the "
        "reason, when the islands are coupled)",
    )
    p_analyze.add_argument(
        "--hier",
        action="store_true",
        help="hierarchical analysis: check threads bound to virtual "
        "processors against each partition's bounded-delay (BDR) "
        "supply interface (escalates to a supply-aware flattened "
        "simulation per partition)",
    )
    p_analyze.add_argument(
        "--max-window",
        type=int,
        default=None,
        metavar="QUANTA",
        help="simulation window cap for --hier (flattened simulation) "
        "and --modal (transient window); verdict demotes to unknown "
        "past it",
    )
    p_analyze.add_argument(
        "--modal",
        action="store_true",
        help="transition-aware modal analysis: every reachable steady "
        "mode plus every mode transition's transient under the "
        "--protocol mode-change protocol (unreachable modes are "
        "skipped, with a note)",
    )
    p_analyze.add_argument(
        "--protocol",
        choices=("synchronous", "asynchronous"),
        default="synchronous",
        help="mode-change protocol for --modal: synchronous defers the "
        "switch to the old mode's hyperperiod boundary (steady "
        "verdicts govern); asynchronous switches at any instant "
        "(union analytic test, then exhaustive switch-phasing "
        "transient simulation)",
    )
    p_analyze.add_argument(
        "--max-phasings",
        type=int,
        default=None,
        metavar="N",
        help="switch-phasing cap for --modal transient simulation "
        "(verdict demotes to unknown past it)",
    )
    p_analyze.add_argument(
        "--baselines",
        action="store_true",
        help="also run the classical schedulability baselines",
    )
    p_analyze.add_argument(
        "--response-times",
        action="store_true",
        help="report observed worst-case response times (schedulable "
        "models only)",
    )
    p_analyze.add_argument(
        "--stats",
        action="store_true",
        help="print engine statistics (states/sec, cache hit rate, ...)",
    )
    portfolio_options(p_analyze)
    reduce_options(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_validate = sub.add_parser(
        "validate", help="check the paper S4.1 translation assumptions"
    )
    common(p_validate)
    p_validate.set_defaults(func=cmd_validate)

    p_translate = sub.add_parser(
        "translate", help="emit the ACSR translation (VERSA-like syntax)"
    )
    common(p_translate)
    p_translate.add_argument(
        "-o", "--output", help="write the ACSR source to a file"
    )
    p_translate.set_defaults(func=cmd_translate)

    # Deliberately no reduce_options here: reduction passes are built
    # from translation metadata (replica name tables, cluster owners),
    # which a raw ACSR file does not carry, and walk/--dot traces must
    # stay concrete rather than quotient-space representatives.
    p_acsr = sub.add_parser(
        "acsr", help="explore a raw ACSR file (process/system declarations)"
    )
    common(p_acsr, needs_root=False)
    p_acsr.add_argument(
        "--full",
        action="store_true",
        help="explore the full space instead of stopping at the first "
        "deadlock",
    )
    p_acsr.add_argument(
        "--show-states",
        action="store_true",
        help="print the intermediate states of the counterexample",
    )
    p_acsr.add_argument(
        "--walk",
        type=int,
        default=0,
        metavar="STEPS",
        help="take one random walk instead of exploring exhaustively",
    )
    p_acsr.add_argument(
        "--seed", type=int, default=None, help="random-walk seed"
    )
    p_acsr.add_argument(
        "--dot",
        metavar="FILE",
        help="export the explored state space as a Graphviz DOT file",
    )
    p_acsr.add_argument(
        "--strategy",
        default="bfs",
        choices=["bfs", "dfs"],
        help="search strategy (bfs finds shortest counterexamples)",
    )
    p_acsr.add_argument(
        "--stats",
        action="store_true",
        help="print engine statistics (states/sec, cache hit rate, ...)",
    )
    p_acsr.add_argument(
        "--progress",
        type=int,
        default=0,
        metavar="N",
        help="report progress to stderr every N expanded states",
    )
    tracing_options(p_acsr)
    p_acsr.set_defaults(func=cmd_acsr)

    p_batch = sub.add_parser(
        "batch",
        help="parallel batch analysis with the persistent verdict cache",
    )
    batch_sub = p_batch.add_subparsers(dest="batch_command", required=True)

    p_batch_run = batch_sub.add_parser(
        "run",
        help="analyze many inputs (.aadl models, .json oracle cases or "
        "bundles) across a worker pool",
        epilog=EXIT_STATUS_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common(p_batch_run, multi=True)
    pool_options(p_batch_run)
    p_batch_run.add_argument(
        "--stats",
        action="store_true",
        help="print aggregated engine statistics for the whole batch",
    )
    p_batch_run.add_argument(
        "--modal",
        action="store_true",
        help="run every .aadl input as a transition-aware modal job",
    )
    p_batch_run.add_argument(
        "--protocol",
        choices=("synchronous", "asynchronous"),
        default="synchronous",
        help="mode-change protocol for --modal jobs",
    )
    portfolio_options(p_batch_run)
    reduce_options(p_batch_run)
    tracing_options(p_batch_run)
    p_batch_run.set_defaults(func=cmd_batch_run)

    p_batch_cache = batch_sub.add_parser(
        "cache", help="inspect or clear the persistent verdict cache"
    )
    p_batch_cache.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="cache directory (default artifacts/cache)",
    )
    p_batch_cache.add_argument(
        "--clear",
        action="store_true",
        help="delete every cached verdict",
    )
    p_batch_cache.set_defaults(func=cmd_batch_cache)

    p_compose = sub.add_parser(
        "compose",
        help="compositional analysis: processor-island decomposition",
    )
    compose_sub = p_compose.add_subparsers(
        dest="compose_command", required=True
    )
    p_compose_plan = compose_sub.add_parser(
        "plan",
        help="print the coupling graph and island partition without "
        "analyzing anything",
    )
    common(p_compose_plan)
    p_compose_plan.set_defaults(func=cmd_compose_plan)

    p_oracle = sub.add_parser(
        "oracle",
        help="differential-testing oracle: seeded campaigns against the "
        "classical analyses, with shrinking and replayable bundles",
    )
    oracle_sub = p_oracle.add_subparsers(dest="oracle_command", required=True)

    p_run = oracle_sub.add_parser(
        "run", help="run a seeded differential campaign"
    )
    p_run.add_argument(
        "--seeds",
        type=int,
        default=50,
        help="number of seeded cases to draw (default 50)",
    )
    p_run.add_argument(
        "--profile",
        default="smoke",
        choices=["smoke", "nightly"],
        help="campaign parameter envelope (default smoke)",
    )
    p_run.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first seed of the campaign (case i uses base-seed + i)",
    )
    p_run.add_argument(
        "--artifacts",
        default=None,
        help="directory for disagreement bundles "
        "(default artifacts/oracle)",
    )
    p_run.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="override the profile's per-case exploration budget",
    )
    p_run.add_argument(
        "--fault",
        default=None,
        help="inject a known translator fault into the pipeline side "
        "(harness self-test; see repro.oracle.faults)",
    )
    p_run.add_argument(
        "--progress",
        action="store_true",
        help="report campaign progress to stderr",
    )
    pool_options(p_run)
    # --profile names the campaign envelope here, so the span profiler
    # rides under --span-profile (same dest as --profile elsewhere).
    tracing_options(p_run, profile_flag="--span-profile")
    p_run.set_defaults(func=cmd_oracle_run)

    p_oracle_compose = oracle_sub.add_parser(
        "compose",
        help="seeded campaign asserting compositional ≡ monolithic "
        "verdicts on multiprocessor workloads",
        epilog=EXIT_STATUS_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_oracle_compose.add_argument(
        "--seeds",
        type=int,
        default=50,
        help="number of seeded cases to draw (default 50)",
    )
    p_oracle_compose.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first seed of the campaign (case i uses base-seed + i)",
    )
    p_oracle_compose.add_argument(
        "--max-states",
        type=int,
        default=150_000,
        help="per-analysis exploration budget",
    )
    p_oracle_compose.add_argument(
        "--coupled-fraction",
        type=float,
        default=0.25,
        help="fraction of draws kept bus-coupled to exercise the "
        "monolithic fallback (default 0.25)",
    )
    p_oracle_compose.add_argument(
        "--progress",
        action="store_true",
        help="report per-case progress to stderr",
    )
    p_oracle_compose.set_defaults(func=cmd_oracle_compose)

    p_oracle_reduce = oracle_sub.add_parser(
        "reduce",
        help="seeded campaign asserting reduced ≡ unreduced verdicts "
        "on replicated workloads (UNKNOWN-aware)",
        epilog=EXIT_STATUS_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_oracle_reduce.add_argument(
        "--seeds",
        type=int,
        default=50,
        help="number of seeded cases to draw (default 50)",
    )
    p_oracle_reduce.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first seed of the campaign (case i uses base-seed + i)",
    )
    p_oracle_reduce.add_argument(
        "--max-states",
        type=int,
        default=150_000,
        help="per-analysis exploration budget",
    )
    p_oracle_reduce.add_argument(
        "--spec",
        default="sym,por",
        metavar="PASSES",
        help="reduction passes under test (default sym,por)",
    )
    p_oracle_reduce.add_argument(
        "--fault",
        default=None,
        help="inject a known reduction bug into the reduced side "
        "(harness self-test; see repro.engine.reduce.REDUCTION_FAULTS)",
    )
    p_oracle_reduce.add_argument(
        "--jitter-fraction",
        type=float,
        default=0.25,
        help="fraction of draws given offset jitter so symmetry must "
        "decline to fire (default 0.25)",
    )
    p_oracle_reduce.add_argument(
        "--progress",
        action="store_true",
        help="report per-case progress to stderr",
    )
    p_oracle_reduce.set_defaults(func=cmd_oracle_reduce)

    p_oracle_hier = oracle_sub.add_parser(
        "hier",
        help="seeded campaign asserting the BDR interface check never "
        "passes a partition the flattened simulation fails",
        epilog=EXIT_STATUS_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_oracle_hier.add_argument(
        "--seeds",
        type=int,
        default=50,
        help="number of seeded cases to draw (default 50)",
    )
    p_oracle_hier.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first seed of the campaign (case i uses base-seed + i)",
    )
    p_oracle_hier.add_argument(
        "--max-window",
        type=int,
        default=1 << 16,
        help="flattened-simulation window cap per partition",
    )
    p_oracle_hier.add_argument(
        "--fault",
        default=None,
        help="inject a known interface-derivation bug into the analytic "
        "side (harness self-test; see repro.hier.interface.HIER_FAULTS)",
    )
    p_oracle_hier.add_argument(
        "--progress",
        action="store_true",
        help="report per-case progress to stderr",
    )
    p_oracle_hier.set_defaults(func=cmd_oracle_hier)

    p_oracle_modal = oracle_sub.add_parser(
        "modal",
        help="seeded campaign asserting the modal steady half matches "
        "independent per-mode analysis and the transient checker "
        "never passes a transition the exhaustive switch-phasing "
        "simulation fails",
        epilog=EXIT_STATUS_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_oracle_modal.add_argument(
        "--seeds",
        type=int,
        default=50,
        help="number of seeded cases to draw (default 50)",
    )
    p_oracle_modal.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first seed of the campaign (case i uses base-seed + i)",
    )
    p_oracle_modal.add_argument(
        "--max-phasings",
        type=int,
        default=512,
        help="switch-phasing cap per transition",
    )
    p_oracle_modal.add_argument(
        "--max-window",
        type=int,
        default=1 << 15,
        help="transient-simulation window cap per phasing",
    )
    p_oracle_modal.add_argument(
        "--fault",
        default=None,
        help="inject a known transient-checker bug into the modal side "
        "(harness self-test; see repro.modal.transient.MODAL_FAULTS)",
    )
    p_oracle_modal.add_argument(
        "--progress",
        action="store_true",
        help="report per-case progress to stderr",
    )
    p_oracle_modal.set_defaults(func=cmd_oracle_modal)

    p_oracle_portfolio = oracle_sub.add_parser(
        "portfolio",
        help="seeded campaign asserting portfolio ≡ pure-exploration "
        "verdicts (UNKNOWN-aware, witnesses cross-checked)",
        epilog=EXIT_STATUS_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p_oracle_portfolio.add_argument(
        "--seeds",
        type=int,
        default=50,
        help="number of seeded cases to draw (default 50)",
    )
    p_oracle_portfolio.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first seed of the campaign (case i uses base-seed + i)",
    )
    p_oracle_portfolio.add_argument(
        "--max-states",
        type=int,
        default=150_000,
        help="per-analysis exploration budget",
    )
    p_oracle_portfolio.add_argument(
        "--progress",
        action="store_true",
        help="report per-case progress to stderr",
    )
    p_oracle_portfolio.set_defaults(func=cmd_oracle_portfolio)

    p_replay = oracle_sub.add_parser(
        "replay", help="re-run a persisted repro bundle"
    )
    p_replay.add_argument("bundle", help="path to a bundle JSON file")
    p_replay.add_argument(
        "--max-states",
        type=int,
        default=None,
        help="override the bundle's recorded exploration budget",
    )
    p_replay.add_argument(
        "--with-fault",
        action="store_true",
        help="re-inject the fault recorded in the bundle (reproduce the "
        "historical failure instead of checking the fix)",
    )
    p_replay.set_defaults(func=cmd_oracle_replay)

    p_trace = sub.add_parser(
        "trace",
        help="inspect recorded span traces (see --trace / --profile)",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_summary = trace_sub.add_parser(
        "summary",
        help="validate a JSONL trace and render per-stage totals, span "
        "counts and the slowest spans",
    )
    p_trace_summary.add_argument("path", help="trace file (JSONL)")
    p_trace_summary.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="number of slowest spans to list (default 5)",
    )
    p_trace_summary.set_defaults(func=cmd_trace_summary)

    p_serve = sub.add_parser(
        "serve",
        help="run the analysis service: HTTP/JSON submissions, SSE "
        "progress, shared verdict cache, crash-isolated workers",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8787,
        help="bind port (0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent analysis workers (default 2)",
    )
    p_serve.add_argument(
        "--backlog",
        type=int,
        default=16,
        metavar="N",
        help="bounded queue depth; a full queue answers 429 (default 16)",
    )
    p_serve.add_argument(
        "--executor",
        choices=["process", "thread"],
        default="process",
        help="worker isolation: 'process' survives hard worker crashes "
        "(default); 'thread' is cheaper but shares the interpreter",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="verdict-cache directory (default artifacts/cache)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared verdict cache (every request re-proves)",
    )
    p_serve.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict the cache beyond N entries",
    )
    p_serve.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU-evict the cache beyond BYTES on disk",
    )
    p_serve.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="replayable bundle directory (default artifacts/serve)",
    )
    p_serve.add_argument(
        "--no-bundles",
        action="store_true",
        help="do not persist result bundles",
    )
    p_serve.add_argument(
        "--no-trace",
        action="store_true",
        help="skip per-job span tracing (no 'span' SSE events)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_sim = sub.add_parser(
        "simulate",
        help="Cheddar-style scheduler simulation (one run per processor)",
    )
    common(p_sim)
    p_sim.add_argument(
        "--policy",
        default="rate",
        choices=["rate", "deadline", "explicit", "edf", "llf"],
        help="scheduling policy for the simulation",
    )
    p_sim.set_defaults(func=cmd_simulate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
