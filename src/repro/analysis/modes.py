"""Per-mode schedulability analysis of multi-modal models.

The paper models multi-modal systems in AADL (S2) but omits modes from
the translation presentation ("quite involved").  This module provides
the natural compositional approximation: instantiate and analyze each
*system operation mode* of the root implementation separately, treating
each steady mode as its own completely-bound system.

Two precision rules sharpen the approximation:

* only modes **reachable** from the initial mode through the declared
  transition automaton count -- an unreachable mode never occurs at
  runtime, so its workload must not turn the verdict (models that
  declare no transitions keep the historical reading: every mode is a
  possible externally-chosen configuration).  Skipped modes are
  reported as ``unreachable_modes``.
* each steady mode may reuse the whole analysis stack: the tiered
  portfolio (``portfolio=True``, with the multi-modal applicability
  bar waived per mode -- see
  :func:`repro.portfolio.context.build_context`), state-space
  reduction, and the batch pool with persistent verdict caching
  (``workers`` / ``cache``), where every mode becomes one job whose
  cache key carries the mode name.

Transition *transients* are the business of :mod:`repro.modal`, which
builds on this module for its steady half.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.aadl.components import DeclarativeModel
from repro.aadl.instance import instantiate
from repro.aadl.properties import TimeValue
from repro.analysis.schedulability import AnalysisResult, Verdict, analyze_model


class ModeOutcome:
    """One steady mode's verdict, from either an inline analysis or a
    pool :class:`~repro.batch.jobs.JobResult` (which carries no live
    scenario object -- ``scenario`` is then None and ``rendered`` holds
    the worker's formatted report instead)."""

    __slots__ = (
        "mode",
        "verdict",
        "num_states",
        "scenario",
        "decided_by",
        "stats",
        "cached",
        "rendered",
    )

    def __init__(
        self,
        *,
        mode: str,
        verdict: Verdict,
        num_states: int = 0,
        scenario=None,
        decided_by: Optional[str] = None,
        stats=None,
        cached: bool = False,
        rendered: Optional[str] = None,
    ) -> None:
        self.mode = mode
        self.verdict = verdict
        self.num_states = num_states
        self.scenario = scenario
        self.decided_by = decided_by
        self.stats = stats
        self.cached = cached
        self.rendered = rendered

    @classmethod
    def from_analysis(cls, mode: str, result: AnalysisResult) -> "ModeOutcome":
        exploration = getattr(result, "exploration", None)
        return cls(
            mode=mode,
            verdict=result.verdict,
            num_states=result.num_states,
            scenario=result.scenario,
            decided_by=getattr(result, "decided_by", None),
            stats=getattr(exploration, "stats", None),
        )

    @classmethod
    def from_job(cls, mode: str, result) -> "ModeOutcome":
        from repro.engine.stats import EngineStats

        if result.verdict == "error":
            raise AnalysisError(
                f"mode {mode}: batch analysis failed: {result.error}"
            )
        return cls(
            mode=mode,
            verdict=Verdict(result.verdict),
            num_states=result.states,
            decided_by=None,
            stats=(
                EngineStats.from_dict(result.stats)
                if result.stats is not None
                else None
            ),
            cached=result.cached,
            rendered=result.rendered,
        )

    def __repr__(self) -> str:
        return f"ModeOutcome({self.mode!r}, {self.verdict.value})"


class ModalAnalysisResult:
    """Verdicts for every reachable mode of the root implementation."""

    def __init__(
        self,
        per_mode: Dict[str, ModeOutcome],
        unreachable_modes: tuple = (),
    ) -> None:
        if not per_mode:
            raise AnalysisError("no modes analyzed")
        self.per_mode = per_mode
        #: declared modes skipped because no transition path reaches
        #: them from the initial mode
        self.unreachable_modes = tuple(unreachable_modes)

    @property
    def verdict(self) -> Verdict:
        """SCHEDULABLE iff every mode is; UNKNOWN dominates UNSCHEDULABLE
        only when no mode is outright unschedulable."""
        verdicts = {result.verdict for result in self.per_mode.values()}
        if Verdict.UNSCHEDULABLE in verdicts:
            return Verdict.UNSCHEDULABLE
        if Verdict.UNKNOWN in verdicts:
            return Verdict.UNKNOWN
        return Verdict.SCHEDULABLE

    @property
    def failing_modes(self) -> List[str]:
        return [
            mode
            for mode, result in self.per_mode.items()
            if result.verdict is Verdict.UNSCHEDULABLE
        ]

    def format(self) -> str:
        lines = [f"overall: {self.verdict.value}"]
        for mode, result in self.per_mode.items():
            cached = " [cached]" if result.cached else ""
            lines.append(
                f"  mode {mode}: {result.verdict.value} "
                f"({result.num_states} states){cached}"
            )
        if self.unreachable_modes:
            lines.append(
                "  unreachable from the initial mode (skipped): "
                + ", ".join(self.unreachable_modes)
            )
        for mode in self.failing_modes:
            scenario = self.per_mode[mode].scenario
            if scenario is not None:
                lines.append(f"  failing scenario in mode {mode}:")
                lines.append(scenario.format())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ModalAnalysisResult({self.verdict.value}, "
            f"modes={list(self.per_mode)})"
        )


def analyze_all_modes(
    model: DeclarativeModel,
    root_impl: str,
    *,
    quantum: Optional[TimeValue] = None,
    max_states: int = 1_000_000,
    portfolio: bool = False,
    tiers: Optional[str] = None,
    reduction: Optional[str] = None,
    workers: Optional[int] = None,
    cache=None,
    progress=None,
) -> ModalAnalysisResult:
    """Analyze every reachable mode of ``root_impl`` as a separate
    bound system.

    ``portfolio`` routes each mode through the tiered verdict portfolio
    (``tiers`` optionally naming the chain), ``reduction`` applies a
    reduction-spec token on exploration, and setting ``workers`` and/or
    ``cache`` fans the modes out through the batch pool as one job per
    mode with persistent, mode-keyed verdict caching.  Raises
    :class:`AnalysisError` when the root implementation declares no
    modes (use :func:`~repro.analysis.schedulability.analyze_model`
    directly in that case).
    """
    from repro.modal.automaton import ModeAutomaton
    from repro.obs.tracer import current_tracer

    impl = model.implementation(root_impl)
    if not impl.modes:
        raise AnalysisError(
            f"{root_impl} declares no modes; use analyze_model instead"
        )
    automaton = ModeAutomaton.from_implementation(model, impl)
    reachable = {m.lower() for m in automaton.reachable_modes()}
    modes = [m for m in automaton.modes if m.lower() in reachable]

    if workers is not None or cache is not None:
        per_mode = _pooled_modes(
            model,
            impl,
            modes,
            quantum=quantum,
            max_states=max_states,
            portfolio=portfolio,
            tiers=tiers,
            reduction=reduction,
            workers=workers,
            cache=cache,
            progress=progress,
        )
        return ModalAnalysisResult(per_mode, automaton.unreachable_modes())

    tracer = current_tracer()
    results: Dict[str, ModeOutcome] = {}
    for mode in modes:
        with tracer.span("modal.steady", mode=mode) as span:
            instance = instantiate(
                model, root_impl, mode_overrides={impl.name: mode}
            )
            if portfolio:
                from repro.portfolio import (
                    PortfolioAnalyzer,
                    analyze_portfolio,
                )
                from repro.portfolio.tiers import tiers_from_token

                result = analyze_portfolio(
                    instance,
                    quantum=quantum,
                    max_states=max_states,
                    analyzer=PortfolioAnalyzer(tiers_from_token(tiers)),
                    reduction=reduction,
                    steady_mode=True,
                )
            else:
                result = analyze_model(
                    instance,
                    quantum=quantum,
                    max_states=max_states,
                    reduction=reduction,
                )
            span.set(verdict=result.verdict.value)
        results[mode] = ModeOutcome.from_analysis(mode, result)
    return ModalAnalysisResult(results, automaton.unreachable_modes())


def _pooled_modes(
    model,
    impl,
    modes,
    *,
    quantum,
    max_states,
    portfolio,
    tiers,
    reduction,
    workers,
    cache,
    progress,
) -> Dict[str, ModeOutcome]:
    """One batch job per mode; deterministic mode-order results."""
    from repro.aadl import format_model
    from repro.batch.jobs import AnalysisJob
    from repro.batch.pool import run_batch

    source = format_model(model)
    quantum_us = None
    if quantum is not None:
        quantum_us = quantum.picoseconds // 1_000_000
    jobs = []
    for mode in modes:
        if portfolio:
            job = AnalysisJob.from_portfolio(
                source,
                root=impl.name,
                job_id=f"mode:{mode}",
                max_states=max_states,
                quantum_us=quantum_us,
                tiers=tiers,
                reduce=reduction,
                mode=mode,
            )
        else:
            job = AnalysisJob.from_aadl(
                source,
                root=impl.name,
                job_id=f"mode:{mode}",
                max_states=max_states,
                quantum_us=quantum_us,
                reduce=reduction,
                mode=mode,
            )
        jobs.append(job)
    report = run_batch(jobs, workers=workers, cache=cache, progress=progress)
    by_id = {result.job_id: result for result in report.results}
    return {
        mode: ModeOutcome.from_job(mode, by_id[f"mode:{mode}"])
        for mode in modes
    }
