"""Per-mode schedulability analysis of multi-modal models.

The paper models multi-modal systems in AADL (S2) but omits modes from
the translation presentation ("quite involved").  This module provides
the natural compositional approximation: instantiate and analyze each
*system operation mode* of the root implementation separately, treating
each steady mode as its own completely-bound system.

This verifies schedulability *within* every mode; transition transients
(the activation/deactivation protocol of the AADL standard) are not
modeled -- the documented gap, matching the paper.  A system whose every
mode is schedulable and whose mode changes occur at hyperperiod
boundaries is schedulable overall.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.aadl.components import DeclarativeModel
from repro.aadl.instance import instantiate
from repro.aadl.properties import TimeValue
from repro.analysis.schedulability import AnalysisResult, Verdict, analyze_model


class ModalAnalysisResult:
    """Verdicts for every mode of the root implementation."""

    def __init__(self, per_mode: Dict[str, AnalysisResult]) -> None:
        if not per_mode:
            raise AnalysisError("no modes analyzed")
        self.per_mode = per_mode

    @property
    def verdict(self) -> Verdict:
        """SCHEDULABLE iff every mode is; UNKNOWN dominates UNSCHEDULABLE
        only when no mode is outright unschedulable."""
        verdicts = {result.verdict for result in self.per_mode.values()}
        if Verdict.UNSCHEDULABLE in verdicts:
            return Verdict.UNSCHEDULABLE
        if Verdict.UNKNOWN in verdicts:
            return Verdict.UNKNOWN
        return Verdict.SCHEDULABLE

    @property
    def failing_modes(self) -> List[str]:
        return [
            mode
            for mode, result in self.per_mode.items()
            if result.verdict is Verdict.UNSCHEDULABLE
        ]

    def format(self) -> str:
        lines = [f"overall: {self.verdict.value}"]
        for mode, result in self.per_mode.items():
            lines.append(
                f"  mode {mode}: {result.verdict.value} "
                f"({result.num_states} states)"
            )
        for mode in self.failing_modes:
            scenario = self.per_mode[mode].scenario
            if scenario is not None:
                lines.append(f"  failing scenario in mode {mode}:")
                lines.append(scenario.format())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ModalAnalysisResult({self.verdict.value}, "
            f"modes={list(self.per_mode)})"
        )


def analyze_all_modes(
    model: DeclarativeModel,
    root_impl: str,
    *,
    quantum: Optional[TimeValue] = None,
    max_states: int = 1_000_000,
) -> ModalAnalysisResult:
    """Analyze every mode of ``root_impl`` as a separate bound system.

    Raises :class:`AnalysisError` when the root implementation declares
    no modes (use :func:`~repro.analysis.schedulability.analyze_model`
    directly in that case).
    """
    impl = model.implementation(root_impl)
    if not impl.modes:
        raise AnalysisError(
            f"{root_impl} declares no modes; use analyze_model instead"
        )
    results: Dict[str, AnalysisResult] = {}
    for mode in impl.modes.values():
        instance = instantiate(
            model, root_impl, mode_overrides={impl.name: mode.name}
        )
        results[mode.name] = analyze_model(
            instance, quantum=quantum, max_states=max_states
        )
    return ModalAnalysisResult(results)
