"""Observed worst-case response times from the explored state space.

The explored ACSR state space contains more than a verdict: every
completion handshake ``tau@done$t`` fires from a state whose dispatcher
is in its wait state ``DW$t(k)`` with ``k`` = quanta since dispatch, so
the *observed worst-case response time* of a thread is the maximum such
``k`` over the whole reachable space (+1: the handshake follows the
final compute quantum whose time step has already advanced ``k``).

For synchronous periodic fixed-priority systems with deterministic
execution times this must equal the analytic response time of exact RTA
-- cross-validated in tests -- and unlike RTA it also covers
event-dispatched threads and multiprocessor/bus interactions.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import AnalysisError
from repro.engine.budget import Budget
from repro.engine.core import explore
from repro.acsr.events import EventLabel
from repro.translate.translator import TranslationResult


def observed_response_times(
    translation: TranslationResult,
    *,
    max_states: int = 1_000_000,
) -> Dict[str, Optional[int]]:
    """Per-thread observed worst-case response time, in quanta.

    Explores the full reachable space (the model must be schedulable --
    a deadlocking model raises, because response times of a model that
    stops the clock are meaningless).  Threads never observed completing
    (never dispatched) map to ``None``.
    """
    result = explore(
        translation.system,
        budget=Budget(max_states=max_states),
        store_transitions=True,
    )
    if not result.completed:
        raise AnalysisError(
            "state budget exhausted; response times would be partial"
        )
    if not result.deadlock_free:
        raise AnalysisError(
            "model deadlocks (deadline violation); response times are "
            "only defined for schedulable models"
        )

    # Map done-event name -> thread qual, and dispatcher-wait process
    # name -> thread qual.
    done_threads = translation.names.names_of_kind("done")
    wait_names = {
        name: qual
        for name, qual in translation.names.names_of_kind(
            "dispatcher_wait"
        ).items()
    }

    worst: Dict[str, Optional[int]] = {
        qual: None for qual in translation.threads
    }
    from repro.analysis.raising import _components

    for state in result.states():
        for label, _ in result.transitions_of(state):
            if not isinstance(label, EventLabel) or label.via is None:
                continue
            thread_qual = done_threads.get(label.via)
            if thread_qual is None:
                continue
            # Find the thread's dispatcher-wait counter in the source
            # state: that is the elapsed time of the completing dispatch.
            for ref in _components(state):
                if wait_names.get(ref.name) == thread_qual and ref.args:
                    k = ref.args[0]
                    if not isinstance(k, int):
                        continue
                    current = worst[thread_qual]
                    worst[thread_qual] = (
                        k if current is None else max(current, k)
                    )
    return worst


def response_time_report(
    translation: TranslationResult,
    *,
    max_states: int = 1_000_000,
) -> str:
    """Human-readable response-time table with deadlines for context."""
    observed = observed_response_times(
        translation, max_states=max_states
    )
    lines = ["observed worst-case response times (quanta):"]
    for qual, value in sorted(observed.items()):
        deadline = translation.threads[qual].timing.deadline
        shown = "never dispatched" if value is None else str(value)
        lines.append(f"  {qual:<45s} {shown:>6s} / deadline {deadline}")
    return "\n".join(lines)
