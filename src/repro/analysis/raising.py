"""Raising ACSR traces to AADL-level failing scenarios (paper S5).

"If a deadlock is found, the failing scenario is 'raised' to the level of
the original AADL model.  Steps of the trace are reinterpreted in terms
of the actions of the components in the AADL model."

Every internal step carries the name of the event that produced it
(``tau@dispatch$...``), and every state is a parallel composition of
named process references; the :class:`~repro.translate.names.NameTable`
maps both back to AADL elements, so raising is a table lookup, never a
heuristic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.acsr.events import EventLabel
from repro.acsr.resources import Action
from repro.acsr.terms import Hide, Parallel, ProcRef, Restrict, Term
from repro.translate.translator import TranslationResult
from repro.versa.traces import Trace


class ScenarioEvent:
    """One AADL-level occurrence along a failing scenario.

    Kinds: ``dispatch``, ``complete``, ``enqueue``, ``dequeue``,
    ``flow_start``, ``flow_end``, ``deadline_miss``, ``queue_overflow``.
    """

    __slots__ = ("time", "kind", "element", "detail")

    def __init__(
        self, time: int, kind: str, element: str, detail: str = ""
    ) -> None:
        self.time = time
        self.kind = kind
        self.element = element
        self.detail = detail

    def __repr__(self) -> str:
        detail = f" ({self.detail})" if self.detail else ""
        return f"[t={self.time}] {self.kind} {self.element}{detail}"


#: Per-thread activity in one quantum.
RUNNING = "running"
PREEMPTED = "preempted"
WAITING = "waiting"


class AadlScenario:
    """A failing (or exemplary) scenario in AADL terms."""

    def __init__(
        self,
        events: List[ScenarioEvent],
        activity: Dict[str, List[str]],
        duration: int,
        deadlocked: bool,
        misses: List[str],
        overflows: List[str],
    ) -> None:
        #: discrete events in time order
        self.events = events
        #: thread qualified name -> per-quantum activity row
        self.activity = activity
        #: total quanta covered
        self.duration = duration
        #: True when the trace ends in a deadlock
        self.deadlocked = deadlocked
        #: threads whose deadline expired at the end of the trace
        self.misses = misses
        #: connections whose queue overflowed into the error state
        self.overflows = overflows

    def to_dict(self) -> dict:
        """JSON-serializable form for external tooling (timeline viewers,
        CI artifacts)."""
        return {
            "duration": self.duration,
            "deadlocked": self.deadlocked,
            "misses": list(self.misses),
            "overflows": list(self.overflows),
            "events": [
                {
                    "time": event.time,
                    "kind": event.kind,
                    "element": event.element,
                    "detail": event.detail,
                }
                for event in self.events
            ],
            "activity": {
                qual: list(row) for qual, row in self.activity.items()
            },
        }

    def format(self) -> str:
        from repro.analysis.timeline import render_timeline

        lines: List[str] = []
        for event in self.events:
            lines.append(f"  {event!r}")
        if self.activity:
            lines.append("")
            lines.append(render_timeline(self))
        if self.misses:
            lines.append("")
            lines.append(
                "  DEADLINE MISS at t="
                f"{self.duration}: " + ", ".join(self.misses)
            )
        if self.overflows:
            lines.append(
                "  QUEUE OVERFLOW (Error protocol): "
                + ", ".join(self.overflows)
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()

    def __repr__(self) -> str:
        return (
            f"AadlScenario(duration={self.duration}, "
            f"events={len(self.events)}, misses={self.misses})"
        )


def _components(term: Term) -> List[ProcRef]:
    """Process references making up the control state of a system term."""
    refs: List[ProcRef] = []
    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, ProcRef):
            refs.append(node)
        elif isinstance(node, (Restrict, Hide)):
            stack.append(node.body)
        elif isinstance(node, Parallel):
            stack.extend(node.children)
        # Mid-handshake components (event-prefix chains) carry no state
        # parameters of interest; they resolve within the same instant.
    return refs


def _thread_states(
    term: Term, result: TranslationResult
) -> Dict[str, Tuple[str, Tuple[int, ...]]]:
    """thread qual -> (skeleton state kind, args) for one system state."""
    states: Dict[str, Tuple[str, Tuple[int, ...]]] = {}
    for ref in _components(term):
        entry = result.names.lookup(ref.name)
        if entry is None:
            continue
        kind, element = entry
        if kind in ("await", "compute", "finish"):
            states[element] = (kind, tuple(ref.args))  # type: ignore[arg-type]
    return states


def _dispatcher_states(
    term: Term, result: TranslationResult
) -> Dict[str, Tuple[str, Tuple[int, ...]]]:
    states: Dict[str, Tuple[str, Tuple[int, ...]]] = {}
    for ref in _components(term):
        entry = result.names.lookup(ref.name)
        if entry is None:
            continue
        kind, element = entry
        if kind in ("dispatcher", "dispatcher_wait", "dispatcher_idle"):
            states[element] = (kind, tuple(ref.args))  # type: ignore[arg-type]
    return states


def _overflowed_queues(term: Term, result: TranslationResult) -> List[str]:
    overflows: List[str] = []
    for ref in _components(term):
        entry = result.names.lookup(ref.name)
        if entry is not None and entry[0] == "queue_error":
            overflows.append(entry[1])
    return overflows


_EVENT_KINDS = {
    "dispatch": "dispatch",
    "done": "complete",
    "enqueue": "enqueue",
    "dequeue": "dequeue",
    "obs_start": "flow_start",
    "obs_end": "flow_end",
}


def raise_trace(
    result: TranslationResult,
    trace: Trace,
    *,
    deadlocked: bool = True,
) -> AadlScenario:
    """Reinterpret an ACSR trace in terms of the source AADL model."""
    events: List[ScenarioEvent] = []
    threads = sorted(result.threads)
    activity: Dict[str, List[str]] = {qual: [] for qual in threads}

    clock = 0
    previous_states = _thread_states(trace.initial, result)
    for step in trace:
        if isinstance(step.label, EventLabel):
            via = step.label.via
            if via is not None:
                entry = result.names.lookup(via)
                if entry is not None:
                    kind, element = entry
                    mapped = _EVENT_KINDS.get(kind)
                    if mapped is not None:
                        events.append(
                            ScenarioEvent(clock, mapped, element)
                        )
            previous_states = _thread_states(step.state, result)
            continue

        assert isinstance(step.label, Action)
        new_states = _thread_states(step.state, result)
        for qual in threads:
            activity[qual].append(
                _classify(previous_states.get(qual), new_states.get(qual))
            )
        previous_states = new_states
        clock += 1

    final = trace.final_state
    misses: List[str] = []
    if deadlocked:
        dispatchers = _dispatcher_states(final, result)
        thread_states = _thread_states(final, result)
        for qual, translation in result.threads.items():
            disp = dispatchers.get(qual)
            thr = thread_states.get(qual)
            if (
                disp is not None
                and disp[0] == "dispatcher_wait"
                and disp[1]
                and disp[1][0] >= translation.timing.deadline
                and (thr is None or thr[0] != "await")
            ):
                misses.append(qual)
                events.append(
                    ScenarioEvent(
                        clock,
                        "deadline_miss",
                        qual,
                        f"deadline {translation.timing.deadline} quanta",
                    )
                )
    overflows = _overflowed_queues(final, result)
    for conn in overflows:
        events.append(ScenarioEvent(clock, "queue_overflow", conn))

    return AadlScenario(
        events, activity, clock, deadlocked, misses, overflows
    )


def _classify(
    before: Optional[Tuple[str, Tuple[int, ...]]],
    after: Optional[Tuple[str, Tuple[int, ...]]],
) -> str:
    if before is None or before[0] == "await":
        return WAITING
    if before[0] == "finish":
        return WAITING
    if before[0] == "compute":
        if after is None:
            return WAITING
        if after[0] == "finish":
            return RUNNING  # the final compute step
        if after[0] == "compute" and after[1] and before[1]:
            return RUNNING if after[1][0] > before[1][0] else PREEMPTED
    return WAITING
