"""User-facing analysis front end.

``analyze_model`` runs the full pipeline of the paper's tool: validate
the bound AADL instance, translate it to ACSR (Algorithm 1), explore the
prioritized state space VERSA-style, and -- when a deadlock is found --
raise the counterexample trace back to AADL terms as a failing scenario
with a per-thread timeline.
"""

from repro.analysis.schedulability import (
    AnalysisResult,
    Verdict,
    analyze_model,
)
from repro.analysis.raising import AadlScenario, ScenarioEvent, raise_trace
from repro.analysis.timeline import render_timeline
from repro.analysis.latency import FlowSpec, check_latency
from repro.analysis.modes import ModalAnalysisResult, analyze_all_modes
from repro.analysis.report import ComparisonRow, compare_with_baselines

__all__ = [
    "AadlScenario",
    "AnalysisResult",
    "ComparisonRow",
    "FlowSpec",
    "ModalAnalysisResult",
    "ScenarioEvent",
    "Verdict",
    "analyze_all_modes",
    "analyze_model",
    "check_latency",
    "compare_with_baselines",
    "raise_trace",
    "render_timeline",
]
