"""End-to-end latency checking via observer processes (paper S5).

"An observer process can capture violations of an end-to-end latency
constraint for a data flow ... triggered by an input event and, just like
a dispatcher process, would deadlock if the output event is not observed
by the flow deadline."

A :class:`FlowSpec` names a source thread and a destination thread; the
observer measures from the *completion* of a source dispatch (when its
outputs are produced, S4.2) to the next completion of the destination,
and deadlocks the model when that exceeds the bound.  Overlapping flow
instances are absorbed rather than tracked individually -- the paper's
own caveat about pipelined inputs ("observer processes need to be
spawned dynamically"); with constrained deadlines and bounds below the
source period the single-outstanding-flow observer is exact.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import AnalysisError
from repro.aadl.instance import SystemInstance
from repro.aadl.properties import TimeValue
from repro.analysis.schedulability import AnalysisResult, analyze_model
from repro.translate.translator import LatencyFlow, TranslationOptions


class FlowSpec:
    """A latency requirement between two threads of the instance."""

    def __init__(
        self,
        source_qual: str,
        destination_qual: str,
        bound: Union[TimeValue, int],
        *,
        flow_id: Optional[str] = None,
    ) -> None:
        if isinstance(bound, int):
            bound = TimeValue(bound, "ms")
        self.source_qual = source_qual
        self.destination_qual = destination_qual
        self.bound = bound
        self.flow_id = flow_id or f"{source_qual}__{destination_qual}"

    def to_latency_flow(self) -> LatencyFlow:
        return LatencyFlow(
            self.flow_id, self.source_qual, self.destination_qual, self.bound
        )

    def __repr__(self) -> str:
        return (
            f"FlowSpec({self.source_qual} -> {self.destination_qual}, "
            f"bound={self.bound})"
        )


def check_latency(
    instance: SystemInstance,
    flows: Sequence[FlowSpec],
    *,
    quantum: Optional[TimeValue] = None,
    max_states: int = 1_000_000,
) -> AnalysisResult:
    """Schedulability analysis with latency observers installed.

    An UNSCHEDULABLE verdict means either a deadline miss or a latency
    violation; the raised scenario's events distinguish them
    (``flow_start`` without a matching ``flow_end`` before the deadlock).
    """
    if not flows:
        raise AnalysisError("check_latency requires at least one flow")
    thread_quals = {t.qualified_name for t in instance.threads()}
    for flow in flows:
        for qual in (flow.source_qual, flow.destination_qual):
            if qual not in thread_quals:
                raise AnalysisError(
                    f"flow {flow.flow_id}: unknown thread {qual!r}"
                )
    options = TranslationOptions(
        quantum=quantum,
        latency_flows=[flow.to_latency_flow() for flow in flows],
    )
    return analyze_model(instance, options=options, max_states=max_states)
