"""Top-level schedulability analysis (the paper's three-step plugin, S5).

1. translate the AADL instance to ACSR (Algorithm 1);
2. explore the prioritized state space looking for deadlocks (VERSA);
3. raise any deadlock trace back to AADL terms.

The verdict is

* ``SCHEDULABLE`` -- the reachable state space is deadlock-free (every
  thread meets every deadline in every behaviour);
* ``UNSCHEDULABLE`` -- a deadlock was found; the result carries the
  failing scenario;
* ``UNKNOWN`` -- the exploration budget was exhausted first.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from repro.errors import ExplorationLimitError
from repro.aadl.components import DeclarativeModel
from repro.aadl.instance import SystemInstance, instantiate
from repro.aadl.properties import TimeValue
from repro.analysis.raising import AadlScenario, raise_trace
from repro.translate.translator import (
    TranslationOptions,
    TranslationResult,
    translate,
)
from repro.versa.explorer import ExplorationResult, Explorer


class Verdict(enum.Enum):
    SCHEDULABLE = "schedulable"
    UNSCHEDULABLE = "unschedulable"
    UNKNOWN = "unknown"


class AnalysisResult:
    """Everything the analysis produced."""

    def __init__(
        self,
        verdict: Verdict,
        translation: TranslationResult,
        exploration: ExplorationResult,
        scenario: Optional[AadlScenario],
    ) -> None:
        self.verdict = verdict
        self.translation = translation
        self.exploration = exploration
        #: failing scenario (UNSCHEDULABLE only)
        self.scenario = scenario

    @property
    def schedulable(self) -> Optional[bool]:
        """True / False, or None when the verdict is UNKNOWN."""
        if self.verdict is Verdict.SCHEDULABLE:
            return True
        if self.verdict is Verdict.UNSCHEDULABLE:
            return False
        return None

    @property
    def num_states(self) -> int:
        return self.exploration.num_states

    @property
    def elapsed(self) -> float:
        return self.exploration.elapsed

    def format(self) -> str:
        lines = [
            f"verdict: {self.verdict.value}",
            f"states explored: {self.exploration.num_states} "
            f"({self.exploration.elapsed:.3f}s)",
            f"quantum: {self.translation.quantizer.quantum}",
        ]
        if self.scenario is not None:
            lines.append("failing scenario:")
            lines.append(self.scenario.format())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"AnalysisResult({self.verdict.value}, "
            f"states={self.exploration.num_states})"
        )


def analyze_model(
    model: Union[SystemInstance, DeclarativeModel],
    *,
    root_impl: Optional[str] = None,
    quantum: Optional[TimeValue] = None,
    options: Optional[TranslationOptions] = None,
    max_states: int = 1_000_000,
    max_seconds: Optional[float] = None,
    stop_at_first_deadlock: bool = True,
) -> AnalysisResult:
    """Analyze a bound AADL model for schedulability.

    Accepts either an instantiated system or a declarative model plus
    ``root_impl``.  ``quantum`` overrides the default exact (GCD)
    quantization; ``options`` gives full control over the translation.
    """
    if isinstance(model, DeclarativeModel):
        if root_impl is None:
            raise ValueError(
                "root_impl is required when passing a declarative model"
            )
        instance = instantiate(model, root_impl)
    else:
        instance = model

    if options is None:
        options = TranslationOptions(quantum=quantum)
    elif quantum is not None:
        options.quantum = quantum

    translation = translate(instance, options)
    explorer = Explorer(
        translation.system,
        max_states=max_states,
        max_seconds=max_seconds,
        on_limit="truncate",
    )
    exploration = explorer.run(
        stop_at_first_deadlock=stop_at_first_deadlock
    )

    trace = exploration.first_deadlock_trace()
    if trace is not None:
        scenario = raise_trace(translation, trace, deadlocked=True)
        return AnalysisResult(
            Verdict.UNSCHEDULABLE, translation, exploration, scenario
        )
    if exploration.completed or (
        not stop_at_first_deadlock and exploration.deadlock_free
        and exploration.completed
    ):
        return AnalysisResult(
            Verdict.SCHEDULABLE, translation, exploration, None
        )
    if stop_at_first_deadlock and not exploration.completed:
        # The search stopped without a deadlock only if a budget hit.
        return AnalysisResult(
            Verdict.UNKNOWN, translation, exploration, None
        )
    return AnalysisResult(Verdict.SCHEDULABLE, translation, exploration, None)
