"""Top-level schedulability analysis (the paper's three-step plugin, S5).

1. translate the AADL instance to ACSR (Algorithm 1);
2. explore the prioritized state space looking for deadlocks (VERSA);
3. raise any deadlock trace back to AADL terms.

The verdict is

* ``SCHEDULABLE`` -- the reachable state space is deadlock-free (every
  thread meets every deadline in every behaviour);
* ``UNSCHEDULABLE`` -- a deadlock was found; the result carries the
  failing scenario;
* ``UNKNOWN`` -- the exploration budget was exhausted first.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Union

from repro.errors import ExplorationLimitError
from repro.engine.budget import Budget
from repro.engine.core import explore
from repro.engine.observers import Observer
from repro.engine.result import ExplorationResult
from repro.engine.strategies import SearchStrategy
from repro.aadl.components import DeclarativeModel
from repro.aadl.instance import SystemInstance, instantiate
from repro.aadl.properties import TimeValue
from repro.analysis.raising import AadlScenario, raise_trace
from repro.translate.quantum import TimingQuantizer
from repro.translate.translator import (
    TranslationOptions,
    TranslationResult,
    translate,
)


class Verdict(enum.Enum):
    SCHEDULABLE = "schedulable"
    UNSCHEDULABLE = "unschedulable"
    UNKNOWN = "unknown"

    @property
    def exit_code(self) -> int:
        """The CLI exit-code contract: 0 schedulable, 1 unschedulable,
        3 unknown (budget exhausted).  2 is reserved for usage and
        model errors, matching the argparse convention."""
        return {
            Verdict.SCHEDULABLE: 0,
            Verdict.UNSCHEDULABLE: 1,
            Verdict.UNKNOWN: 3,
        }[self]

    @classmethod
    def combine(cls, verdicts: Iterable["Verdict"]) -> "Verdict":
        """Conjunction over independent sub-analyses (compositional
        verdict combination): any UNSCHEDULABLE wins, else any UNKNOWN
        demotes the whole answer, else SCHEDULABLE.  An empty sequence
        is vacuously SCHEDULABLE."""
        combined = cls.SCHEDULABLE
        for verdict in verdicts:
            if verdict is cls.UNSCHEDULABLE:
                return cls.UNSCHEDULABLE
            if verdict is cls.UNKNOWN:
                combined = cls.UNKNOWN
        return combined


class AnalysisResult:
    """Everything the analysis produced.

    ``translation`` is None when an analytic portfolio tier decided the
    verdict without translating the model to ACSR; ``decided_by`` then
    names the tier (``"exploration"`` after an escalated portfolio run,
    None for a plain non-portfolio analysis) and ``tier_trail`` records
    each tier's contribution in order.
    """

    def __init__(
        self,
        verdict: Verdict,
        translation: Optional[TranslationResult],
        exploration: ExplorationResult,
        scenario: Optional[AadlScenario],
        *,
        decided_by: Optional[str] = None,
        tier_trail: Optional[Iterable[str]] = None,
        quantizer: Optional["TimingQuantizer"] = None,
    ) -> None:
        self.verdict = verdict
        self.translation = translation
        self.exploration = exploration
        #: failing scenario (UNSCHEDULABLE only)
        self.scenario = scenario
        self.decided_by = decided_by
        self.tier_trail = list(tier_trail) if tier_trail is not None else []
        self._quantizer = quantizer

    @property
    def quantizer(self) -> Optional["TimingQuantizer"]:
        """The quantizer behind the verdict, whether the model was
        translated or decided analytically."""
        if self.translation is not None:
            return self.translation.quantizer
        return self._quantizer

    @property
    def schedulable(self) -> Optional[bool]:
        """True / False, or None when the verdict is UNKNOWN."""
        if self.verdict is Verdict.SCHEDULABLE:
            return True
        if self.verdict is Verdict.UNSCHEDULABLE:
            return False
        return None

    @property
    def num_states(self) -> int:
        return self.exploration.num_states

    @property
    def elapsed(self) -> float:
        return self.exploration.elapsed

    def format(self, *, show_stats: bool = False) -> str:
        lines = [
            f"verdict: {self.verdict.value}",
            f"states explored: {self.exploration.num_states} "
            f"({self.exploration.elapsed:.3f}s)",
        ]
        quantizer = self.quantizer
        if quantizer is not None:
            lines.append(f"quantum: {quantizer.quantum}")
        if self.decided_by is not None:
            lines.append(f"decided by: {self.decided_by}")
        if show_stats and self.exploration.stats is not None:
            lines.append("engine stats:")
            for stat_line in self.exploration.stats.format().splitlines():
                lines.append(f"  {stat_line}")
        if self.scenario is not None:
            lines.append("failing scenario:")
            lines.append(self.scenario.format())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"AnalysisResult({self.verdict.value}, "
            f"states={self.exploration.num_states})"
        )


def analyze_model(
    model: Union[SystemInstance, DeclarativeModel],
    *,
    root_impl: Optional[str] = None,
    quantum: Optional[TimeValue] = None,
    options: Optional[TranslationOptions] = None,
    max_states: int = 1_000_000,
    max_seconds: Optional[float] = None,
    stop_at_first_deadlock: bool = True,
    strategy: Union[SearchStrategy, str, None] = None,
    observers: Union[Observer, Iterable[Observer], None] = None,
    portfolio: bool = False,
    reduction: Union[str, Iterable[str], None] = None,
    reduction_fault: Optional[str] = None,
) -> AnalysisResult:
    """Analyze a bound AADL model for schedulability.

    Accepts either an instantiated system or a declarative model plus
    ``root_impl``.  ``quantum`` overrides the default exact (GCD)
    quantization; ``options`` gives full control over the translation.
    ``strategy`` selects the engine search order (BFS by default, which
    keeps counterexamples shortest) and ``observers`` attaches engine
    instrumentation hooks to the run.  ``portfolio`` routes the model
    through the tiered analytic portfolio first, escalating to this
    exhaustive exploration only when no tier decides (see
    :mod:`repro.portfolio`).  ``reduction`` enables state-space
    reduction passes (``"sym,por"``-style spec; see
    :mod:`repro.engine.reduce`) -- the verdict, including honest
    UNKNOWN on truncation, is preserved; ``reduction_fault`` injects a
    registered reduction bug for oracle self-tests.
    """
    if portfolio:
        # Imported lazily: repro.portfolio imports this module.
        from repro.portfolio import analyze_portfolio

        return analyze_portfolio(
            model,
            root_impl=root_impl,
            quantum=quantum,
            options=options,
            max_states=max_states,
            max_seconds=max_seconds,
            stop_at_first_deadlock=stop_at_first_deadlock,
            strategy=strategy,
            observers=observers,
            reduction=reduction,
            reduction_fault=reduction_fault,
        )

    from repro.obs.tracer import current_tracer

    tracer = current_tracer()
    with tracer.span("analysis.analyze") as analyze_span:
        if isinstance(model, DeclarativeModel):
            if root_impl is None:
                raise ValueError(
                    "root_impl is required when passing a declarative model"
                )
            instance = instantiate(model, root_impl)
        else:
            instance = model
        analyze_span.set(root=instance.qualified_name)

        if options is None:
            options = TranslationOptions(quantum=quantum)
        elif quantum is not None:
            options.quantum = quantum

        translation = translate(instance, options)
        reduction_obj = None
        if reduction is not None or reduction_fault is not None:
            from repro.engine.reduce import build_reduction

            reduction_obj = build_reduction(
                translation, reduction, fault=reduction_fault
            )
        exploration = explore(
            translation.system,
            strategy=strategy,
            budget=Budget(
                max_states=max_states,
                max_seconds=max_seconds,
                on_limit="truncate",
            ),
            stop_at_first_deadlock=stop_at_first_deadlock,
            observers=observers,
            reduction=reduction_obj,
        )

        trace = exploration.first_deadlock_trace()
        if trace is not None:
            # A deadlock witness is definitive even on a truncated run.
            with tracer.span("analysis.raise") as raise_span:
                scenario = raise_trace(translation, trace, deadlocked=True)
                raise_span.incr("trace_steps", len(trace)).incr(
                    "events", len(scenario.events)
                )
            analyze_span.set(verdict=Verdict.UNSCHEDULABLE.value)
            return AnalysisResult(
                Verdict.UNSCHEDULABLE, translation, exploration, scenario
            )
        if exploration.completed:
            analyze_span.set(verdict=Verdict.SCHEDULABLE.value)
            return AnalysisResult(
                Verdict.SCHEDULABLE, translation, exploration, None
            )
        # Truncated and deadlock-less: the budget was exhausted before
        # the space was covered, so nothing was proved either way.
        # (Previously a truncated full-space run could silently read as
        # schedulable.)
        analyze_span.set(verdict=Verdict.UNKNOWN.value)
        return AnalysisResult(Verdict.UNKNOWN, translation, exploration, None)
