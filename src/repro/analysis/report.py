"""Comparison of the ACSR verdict with the classical baselines.

Used by the verdict-agreement benchmarks (DESIGN.md experiment T-SCHED)
and available as a library feature: run every applicable analysis on one
model and tabulate who says what, at what cost.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.aadl.instance import SystemInstance
from repro.aadl.properties import SCHEDULING_PROTOCOL, SchedulingProtocol
from repro.analysis.schedulability import Verdict, analyze_model
from repro.errors import SchedError
from repro.sched.demand import edf_schedulable
from repro.sched.rta import response_times, rta_schedulable
from repro.sched.simulation import simulate
from repro.sched.taskmodel import extract_task_set
from repro.sched.utilization import (
    hyperbolic_bound_test,
    liu_layland_test,
)
from repro.translate.quantum import TimingQuantizer


class ComparisonRow:
    """One analysis method's verdict on one model."""

    __slots__ = ("method", "verdict", "elapsed", "detail")

    def __init__(
        self,
        method: str,
        verdict: Optional[bool],
        elapsed: float,
        detail: str = "",
    ) -> None:
        self.method = method
        self.verdict = verdict
        self.elapsed = elapsed
        self.detail = detail

    def __repr__(self) -> str:
        verdict = (
            "schedulable" if self.verdict
            else "unschedulable" if self.verdict is not None
            else "n/a"
        )
        detail = f" [{self.detail}]" if self.detail else ""
        return (
            f"{self.method:<22s} {verdict:<14s} "
            f"{self.elapsed * 1000:8.2f} ms{detail}"
        )


def compare_with_baselines(
    instance: SystemInstance,
    *,
    max_states: int = 1_000_000,
) -> List[ComparisonRow]:
    """Run ACSR exploration plus every applicable classical test.

    Classical tests only apply to single-processor periodic sets; rows
    carry ``verdict=None`` with an explanatory detail otherwise.
    """
    rows: List[ComparisonRow] = []

    start = time.perf_counter()
    result = analyze_model(instance, max_states=max_states)
    rows.append(
        ComparisonRow(
            "acsr-exploration",
            result.schedulable,
            time.perf_counter() - start,
            f"{result.num_states} states",
        )
    )

    processors = [
        p
        for p in instance.processors()
        if any(t.bound_processor is p for t in instance.threads())
    ]
    if len(processors) != 1:
        rows.append(
            ComparisonRow(
                "classical-tests",
                None,
                0.0,
                f"{len(processors)} processors; classical tests are "
                f"single-processor",
            )
        )
        return rows
    processor = processors[0]
    protocol = processor.property(SCHEDULING_PROTOCOL)
    quantizer = TimingQuantizer.natural(instance)
    try:
        tasks = extract_task_set(instance, processor, quantizer)
    except SchedError as exc:
        rows.append(ComparisonRow("classical-tests", None, 0.0, str(exc)))
        return rows
    if len(tasks) != len(instance.threads()):
        rows.append(
            ComparisonRow(
                "classical-tests",
                None,
                0.0,
                "model has event-dispatched threads outside the classical "
                "task model",
            )
        )
        return rows

    if protocol in (
        SchedulingProtocol.RATE_MONOTONIC,
        SchedulingProtocol.DEADLINE_MONOTONIC,
        SchedulingProtocol.HIGHEST_PRIORITY_FIRST,
    ):
        ordering = {
            SchedulingProtocol.RATE_MONOTONIC: "rate",
            SchedulingProtocol.DEADLINE_MONOTONIC: "deadline",
            SchedulingProtocol.HIGHEST_PRIORITY_FIRST: "explicit",
        }[protocol]
        for name, test in (
            ("utilization-LL", liu_layland_test),
            ("utilization-hyperbolic", hyperbolic_bound_test),
        ):
            if protocol is SchedulingProtocol.RATE_MONOTONIC:
                start = time.perf_counter()
                try:
                    verdict = test(tasks)
                    detail = f"U={tasks.utilization:.3f}"
                except SchedError as exc:
                    verdict, detail = None, str(exc)
                rows.append(
                    ComparisonRow(
                        name, verdict, time.perf_counter() - start, detail
                    )
                )
        start = time.perf_counter()
        rta_verdict = rta_schedulable(tasks, ordering=ordering)
        # Worst margin over the set: responses are reported even past
        # the deadline (None = diverged), so the row can say by how
        # much the worst task misses, not just that it does.
        responses = response_times(tasks, ordering=ordering)
        deadlines = {task.name: task.deadline for task in tasks}
        worst = min(
            (
                (deadlines[name] - response, name, response)
                for name, response in responses.items()
                if response is not None
            ),
            default=None,
        )
        if worst is None:
            detail = "iteration diverged (overload)"
        else:
            margin, name, response = worst
            detail = (
                f"worst {name}: R={response} vs D={deadlines[name]}"
            )
        rows.append(
            ComparisonRow(
                "response-time-analysis",
                rta_verdict,
                time.perf_counter() - start,
                detail,
            )
        )
        sim_policy = ordering
    elif protocol is SchedulingProtocol.EARLIEST_DEADLINE_FIRST:
        start = time.perf_counter()
        rows.append(
            ComparisonRow(
                "edf-demand-analysis",
                edf_schedulable(tasks),
                time.perf_counter() - start,
                f"U={tasks.utilization:.3f}",
            )
        )
        sim_policy = "edf"
    else:
        sim_policy = "llf"

    start = time.perf_counter()
    sim = simulate(tasks, policy=sim_policy)
    rows.append(
        ComparisonRow(
            "cheddar-style-sim",
            sim.schedulable,
            time.perf_counter() - start,
            f"horizon={sim.horizon}",
        )
    )
    return rows
