"""Text timeline ("convenient time line form", paper S7) for scenarios."""

from __future__ import annotations

from typing import List

_SYMBOLS = {
    "running": "#",
    "preempted": ".",
    "waiting": " ",
}


def render_timeline(scenario) -> str:
    """ASCII Gantt chart of an :class:`~repro.analysis.raising.AadlScenario`.

    One row per thread; ``#`` = executing, ``.`` = preempted (dispatched
    but not holding the cpu), blank = awaiting dispatch.  Dispatch and
    completion events are marked beneath the chart.
    """
    if not scenario.activity:
        return "  <no timeline>"
    width = max(len(qual) for qual in scenario.activity)
    lines: List[str] = []
    # Ruler: the ones row alone (t % 10) is ambiguous past t=9, so long
    # scenarios get a tens row above it -- a digit at every multiple of
    # ten, blanks elsewhere, reading vertically as the full tick value.
    if scenario.duration > 10:
        tens = " " * (width + 2) + "".join(
            str((t // 10) % 10) if t % 10 == 0 else " "
            for t in range(scenario.duration)
        )
        lines.append(tens)
    ones = " " * (width + 2) + "".join(
        str(t % 10) for t in range(scenario.duration)
    )
    lines.append(ones)
    for qual in sorted(scenario.activity):
        row = "".join(
            _SYMBOLS.get(slot, "?") for slot in scenario.activity[qual]
        )
        lines.append(f"{qual:<{width}} |{row}|")
    marks = _event_marks(scenario)
    if marks:
        lines.append("")
        lines.extend(marks)
    return "\n".join(lines)


def _event_marks(scenario) -> List[str]:
    marks: List[str] = []
    # queue_overflow included so Error-protocol scenarios mark the
    # failing connection under the chart, not just in the prose summary.
    for event in scenario.events:
        if event.kind in (
            "dispatch",
            "complete",
            "deadline_miss",
            "queue_overflow",
        ):
            marks.append(
                f"  t={event.time:<4d} {event.kind:<14s} {event.element}"
            )
    return marks
