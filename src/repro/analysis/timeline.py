"""Text timeline ("convenient time line form", paper S7) for scenarios."""

from __future__ import annotations

from typing import List

_SYMBOLS = {
    "running": "#",
    "preempted": ".",
    "waiting": " ",
}


def render_timeline(scenario) -> str:
    """ASCII Gantt chart of an :class:`~repro.analysis.raising.AadlScenario`.

    One row per thread; ``#`` = executing, ``.`` = preempted (dispatched
    but not holding the cpu), blank = awaiting dispatch.  Dispatch and
    completion events are marked beneath the chart.
    """
    if not scenario.activity:
        return "  <no timeline>"
    width = max(len(qual) for qual in scenario.activity)
    lines: List[str] = []
    header = " " * (width + 2) + "".join(
        str(t % 10) for t in range(scenario.duration)
    )
    lines.append(header)
    for qual in sorted(scenario.activity):
        row = "".join(
            _SYMBOLS.get(slot, "?") for slot in scenario.activity[qual]
        )
        lines.append(f"{qual:<{width}} |{row}|")
    marks = _event_marks(scenario)
    if marks:
        lines.append("")
        lines.extend(marks)
    return "\n".join(lines)


def _event_marks(scenario) -> List[str]:
    marks: List[str] = []
    for event in scenario.events:
        if event.kind in ("dispatch", "complete", "deadline_miss"):
            marks.append(f"  t={event.time:<4d} {event.kind:<14s} {event.element}")
    return marks
