"""Per-island instance slicing.

An island's slice keeps the island's threads and processors; the
generic :func:`repro.aadl.slice_instance` closure then pulls in
everything the kept components imply -- containing processes/systems,
environment devices feeding the kept threads, buses of surviving
connections, and shared data targets.  Connections with an endpoint
outside the island are cut, which by the coupling-graph construction
(:mod:`repro.compose.coupling`) only ever removes pure data-port
connections that the translation ignores anyway.
"""

from __future__ import annotations

from typing import List

from repro.aadl.instance import SystemInstance, SystemSlice, slice_instance
from repro.compose.coupling import Island, Partition


def island_slice(instance: SystemInstance, island: Island) -> SystemSlice:
    """The analyzable sub-instance for one island."""
    return slice_instance(
        instance,
        list(island.threads) + list(island.processors),
        label=island.label,
    )


def partition_slices(partition: Partition) -> List[SystemSlice]:
    """Slices for every island of a decomposable partition, in island
    order."""
    return [
        island_slice(partition.instance, island)
        for island in partition.islands
    ]
