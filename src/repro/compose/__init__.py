"""Compositional schedulability analysis: processor-island decomposition.

The monolithic pipeline explores the *product* of all per-processor
state spaces even when processors never interact (the paper's own
conclusion flags this explosion as the limit on model size).  This
package turns that product into a sum whenever the model allows it:

1. :mod:`~repro.compose.coupling` builds a **coupling graph** --
   processors as nodes, edges wherever two processors' timing is
   interdependent (cross-processor queued connections, shared buses,
   shared data) -- and partitions the model into **islands** (connected
   components);
2. :mod:`~repro.compose.slicer` cuts an analyzable
   :class:`~repro.aadl.SystemSlice` per island, and the islands fan out
   through the :mod:`repro.batch` pool with per-island verdict-cache
   keys (:func:`~repro.compose.runner.analyze_compositionally`);
3. :mod:`~repro.compose.combiner` folds the island verdicts: all
   SCHEDULABLE -> SCHEDULABLE, any UNSCHEDULABLE -> UNSCHEDULABLE with
   that island's counterexample, else UNKNOWN.

Whenever decomposition would be unsound (multi-modal model) or useless
(single processor, fully coupled graph) the driver falls back to the
monolithic analysis and records why.  The compositional ≡ monolithic
agreement is continuously cross-checked by the differential oracle
relation in :mod:`repro.oracle.compose`.

See ``docs/compose.md``.
"""

from repro.compose.combiner import (
    CompositionResult,
    IslandOutcome,
    combine_outcomes,
)
from repro.compose.coupling import (
    CouplingEdge,
    CouplingGraph,
    Island,
    Partition,
    build_coupling_graph,
    partition_instance,
)
from repro.compose.runner import analyze_compositionally, plan
from repro.compose.slicer import island_slice, partition_slices

__all__ = [
    "CompositionResult",
    "CouplingEdge",
    "CouplingGraph",
    "Island",
    "IslandOutcome",
    "Partition",
    "analyze_compositionally",
    "build_coupling_graph",
    "combine_outcomes",
    "island_slice",
    "partition_instance",
    "partition_slices",
    "plan",
]
