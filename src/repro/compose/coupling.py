"""Coupling graph: which processors' timing can influence each other.

Nodes are the processors of a bound instance model; an edge means the
two processors' schedules are interdependent, so they must be analyzed
in the same state space.  Three edge kinds are derived directly from
what the translation (Algorithm 1) would generate:

* ``event`` -- a semantic connection that the translator would give a
  queue process (event / event-data connection into an event-dispatched
  thread) crosses processors, or an environment device feeds queued
  connections into more than one processor.  The queue synchronizes
  send and dispatch, so arrival times on one processor depend on
  completion times on the other.
* ``bus`` -- connections bound to the same bus have source threads on
  different processors (they contend for the bus resource), or a
  bus-bound connection itself crosses processors (cutting it would
  drop the bus resource from the source skeleton).
* ``data`` -- threads on different processors require access to the
  same shared data resource, using exactly the resource identity the
  translator uses (resolved access target, else classifier fallback).

Pure data-port connections with no bus binding into periodic threads
produce *no* ACSR (the destination samples a value the timing model
never sees), so they are deliberately not edges: cutting them is what
makes decomposition profitable.

Connected components of this graph are the **islands**.  Situations the
graph cannot soundly express (multi-modal models, where a mode switch
anywhere can reshape every processor's workload) are reported as a
global *fallback reason* instead of edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.aadl.components import ComponentCategory
from repro.aadl.features import AccessFeature, AccessKind, AccessCategory
from repro.aadl.instance import (
    ComponentInstance,
    ConnectionInstance,
    SystemInstance,
)
from repro.translate.translator import (
    _needs_queue,
    group_threads_by_host,
)

EDGE_KINDS = ("event", "bus", "data")


class CouplingEdge:
    """One reason two processors cannot be analyzed apart."""

    __slots__ = ("a", "b", "kind", "detail")

    def __init__(
        self,
        a: ComponentInstance,
        b: ComponentInstance,
        kind: str,
        detail: str,
    ) -> None:
        # Normalize the endpoint order so edge identity is symmetric.
        if b.qualified_name < a.qualified_name:
            a, b = b, a
        self.a = a
        self.b = b
        self.kind = kind
        self.detail = detail

    @property
    def key(self) -> Tuple[str, str, str, str]:
        return (self.a.qualified_name, self.b.qualified_name,
                self.kind, self.detail)

    def format(self) -> str:
        return (
            f"{self.a.qualified_name} -- {self.b.qualified_name} "
            f"[{self.kind}] {self.detail}"
        )

    def __repr__(self) -> str:
        return f"CouplingEdge({self.format()!r})"


class Island:
    """A connected component of the coupling graph: processors that must
    share one state space, plus the threads bound to them."""

    __slots__ = ("index", "processors", "threads")

    def __init__(
        self,
        index: int,
        processors: Sequence[ComponentInstance],
        threads: Sequence[ComponentInstance],
    ) -> None:
        self.index = index
        self.processors = sorted(processors, key=lambda p: p.qualified_name)
        self.threads = sorted(threads, key=lambda t: t.qualified_name)

    @property
    def label(self) -> str:
        names = "+".join(p.name for p in self.processors)
        return f"island-{self.index}-{names}"

    def format(self) -> str:
        lines = [f"{self.label}:"]
        for processor in self.processors:
            bound = [
                t.qualified_name
                for t in self.threads
                if t.host_processor is processor
            ]
            lines.append(f"  {processor.qualified_name}: " + ", ".join(bound))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Island({self.label!r}, processors={len(self.processors)}, "
            f"threads={len(self.threads)})"
        )


class CouplingGraph:
    """Processors plus coupling edges, with the component partition."""

    def __init__(
        self,
        processors: Sequence[ComponentInstance],
        edges: Sequence[CouplingEdge],
        by_processor: Dict[ComponentInstance, List[ComponentInstance]],
    ) -> None:
        self.processors = sorted(
            processors, key=lambda p: p.qualified_name
        )
        # Deterministic, de-duplicated edge list.
        seen = set()
        self.edges: List[CouplingEdge] = []
        for edge in sorted(edges, key=lambda e: e.key):
            if edge.key not in seen:
                seen.add(edge.key)
                self.edges.append(edge)
        self._by_processor = by_processor

    def islands(self) -> List[Island]:
        """Connected components, ordered by their lowest processor name."""
        parent: Dict[ComponentInstance, ComponentInstance] = {
            p: p for p in self.processors
        }

        def find(node: ComponentInstance) -> ComponentInstance:
            while parent[node] is not node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for edge in self.edges:
            root_a, root_b = find(edge.a), find(edge.b)
            if root_a is not root_b:
                parent[root_b] = root_a

        groups: Dict[ComponentInstance, List[ComponentInstance]] = {}
        for processor in self.processors:
            groups.setdefault(find(processor), []).append(processor)
        ordered = sorted(
            groups.values(),
            key=lambda members: min(p.qualified_name for p in members),
        )
        islands = []
        for index, members in enumerate(ordered):
            threads: List[ComponentInstance] = []
            for processor in members:
                threads.extend(self._by_processor.get(processor, ()))
            islands.append(Island(index, members, threads))
        return islands

    def edges_between(self, a: ComponentInstance, b: ComponentInstance):
        return [
            edge
            for edge in self.edges
            if {edge.a, edge.b} == {a, b}
        ]


class Partition:
    """The decomposition decision for one instance model.

    Either ``islands`` holds two or more analyzable islands, or
    ``fallback_reason`` explains why the model must be analyzed
    monolithically (the two are mutually exclusive by construction:
    a usable partition clears the reason).
    """

    def __init__(
        self,
        instance: SystemInstance,
        graph: Optional[CouplingGraph],
        islands: Sequence[Island],
        fallback_reason: Optional[str],
    ) -> None:
        self.instance = instance
        self.graph = graph
        self.islands = list(islands)
        self.fallback_reason = fallback_reason

    @property
    def decomposable(self) -> bool:
        return self.fallback_reason is None

    def format(self) -> str:
        lines = [f"model: {self.instance.qualified_name}"]
        if self.graph is not None:
            lines.append(
                f"processors: {len(self.graph.processors)}, "
                f"coupling edges: {len(self.graph.edges)}"
            )
            for edge in self.graph.edges:
                lines.append(f"  {edge.format()}")
        if self.decomposable:
            lines.append(f"islands: {len(self.islands)}")
            for island in self.islands:
                for line in island.format().splitlines():
                    lines.append(f"  {line}")
        else:
            lines.append(f"fallback: monolithic ({self.fallback_reason})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        if self.decomposable:
            return f"Partition(islands={len(self.islands)})"
        return f"Partition(fallback={self.fallback_reason!r})"


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------


def _processor_of(
    component: ComponentInstance,
) -> Optional[ComponentInstance]:
    # Partitioned threads couple through their *host*: a virtual
    # processor shares its physical processor's island.
    if component.category is ComponentCategory.THREAD:
        return component.host_processor
    return None


def _data_resource_ids(thread: ComponentInstance, instance) -> List[str]:
    """The shared-data resource identities of ``thread``, mirroring the
    translator's ``_access_resources`` (resolved target qualified name,
    else classifier, else a thread-private name that cannot collide)."""
    ids: List[str] = []
    resolved = set()
    for acc in instance.access_connections:
        if acc.feature.component is not thread:
            continue
        decl = acc.feature.feature
        if (
            isinstance(decl, AccessFeature)
            and decl.kind is AccessKind.REQUIRES
            and decl.category is AccessCategory.DATA
        ):
            resolved.add(acc.feature)
            ids.append(acc.target.qualified_name)
    for feature in thread.features.values():
        decl = feature.feature
        if not isinstance(decl, AccessFeature) or feature in resolved:
            continue
        if decl.kind is not AccessKind.REQUIRES:
            continue
        if decl.category is not AccessCategory.DATA:
            continue
        ids.append(decl.classifier or f"{thread.qualified_name}.{decl.name}")
    return ids


def build_coupling_graph(instance: SystemInstance) -> CouplingGraph:
    """Compute the coupling graph of a bound instance model.

    Raises :class:`~repro.errors.TranslationError` when threads are
    unbound (the same failure the translator itself would report).
    """
    by_processor = group_threads_by_host(instance)
    processors = list(by_processor)
    edges: List[CouplingEdge] = []

    # -- event edges: queued connections whose endpoints' processors
    #    differ, plus devices fanning queued connections into several
    #    processors (the device process is duplicated into each island,
    #    which is only sound if no island pair shares it).
    device_targets: Dict[ComponentInstance, List[Tuple]] = {}
    for conn in instance.connections:
        src = conn.source.component
        dst = conn.destination.component
        queued = _needs_queue(conn)
        src_proc = _processor_of(src)
        dst_proc = _processor_of(dst)
        if queued and src_proc is not None and dst_proc is not None:
            if src_proc is not dst_proc:
                edges.append(
                    CouplingEdge(
                        src_proc,
                        dst_proc,
                        "event",
                        f"queued connection {conn.qualified_name}",
                    )
                )
        if (
            queued
            and src.category is ComponentCategory.DEVICE
            and dst_proc is not None
        ):
            device_targets.setdefault(src, []).append((dst_proc, conn))
        # Bus-bound connections crossing processors couple them even
        # when unqueued: the bus resource lives in the source skeleton,
        # so slicing either side apart changes its resource demand.
        if conn.buses and src_proc is not None and dst_proc is not None:
            if src_proc is not dst_proc:
                for bus in conn.buses:
                    edges.append(
                        CouplingEdge(
                            src_proc,
                            dst_proc,
                            "bus",
                            f"{bus.qualified_name} carries "
                            f"{conn.qualified_name}",
                        )
                    )
    for device, targets in device_targets.items():
        procs = sorted(
            {proc for proc, _ in targets}, key=lambda p: p.qualified_name
        )
        for i, proc_a in enumerate(procs):
            for proc_b in procs[i + 1:]:
                edges.append(
                    CouplingEdge(
                        proc_a,
                        proc_b,
                        "event",
                        f"device {device.qualified_name} dispatches both",
                    )
                )

    # -- bus edges: source threads on different processors sending over
    #    the same bus contend for its resource.
    bus_senders: Dict[ComponentInstance, List[ComponentInstance]] = {}
    for conn in instance.connections:
        src_proc = _processor_of(conn.source.component)
        if src_proc is None:
            continue
        for bus in conn.buses:
            bus_senders.setdefault(bus, []).append(src_proc)
    for bus, procs in bus_senders.items():
        unique = sorted(set(procs), key=lambda p: p.qualified_name)
        for i, proc_a in enumerate(unique):
            for proc_b in unique[i + 1:]:
                edges.append(
                    CouplingEdge(
                        proc_a,
                        proc_b,
                        "bus",
                        f"shared bus {bus.qualified_name}",
                    )
                )

    # -- data edges: the same shared resource identity required from
    #    threads on different processors.
    holders: Dict[str, List[Tuple[ComponentInstance, ComponentInstance]]] = {}
    for processor, threads in by_processor.items():
        for thread in threads:
            for resource in _data_resource_ids(thread, instance):
                holders.setdefault(resource, []).append((processor, thread))
    for resource, entries in holders.items():
        procs = sorted(
            {proc for proc, _ in entries}, key=lambda p: p.qualified_name
        )
        for i, proc_a in enumerate(procs):
            for proc_b in procs[i + 1:]:
                edges.append(
                    CouplingEdge(
                        proc_a,
                        proc_b,
                        "data",
                        f"shared data {resource}",
                    )
                )

    return CouplingGraph(processors, edges, by_processor)


def partition_instance(
    instance: SystemInstance, *, steady_mode: bool = False
) -> Partition:
    """Decide how (whether) to decompose ``instance``.

    Returns a :class:`Partition`: islands when decomposition is sound
    and actually splits the model, otherwise a fallback reason --
    multi-modal models (mode switches couple every processor), fewer
    than two processors, or a coupling graph that is one connected
    component.  ``steady_mode`` waives the multi-modal bar: the caller
    pinned the instance to one mode and claims the verdict for that
    steady mode only, so no switch can reshape the islands.
    """
    if instance.active_modes and not steady_mode:
        modal = ", ".join(sorted(instance.active_modes))
        return Partition(
            instance,
            None,
            [],
            f"multi-modal model (mode transitions can reshape every "
            f"processor's workload): {modal}",
        )
    graph = build_coupling_graph(instance)
    if len(graph.processors) < 2:
        return Partition(
            instance,
            graph,
            [],
            f"{len(graph.processors)} bound processor(s); nothing to split",
        )
    islands = graph.islands()
    if len(islands) < 2:
        kinds = sorted({edge.kind for edge in graph.edges})
        return Partition(
            instance,
            graph,
            [],
            "all processors coupled into one island "
            f"(edge kinds: {', '.join(kinds) if kinds else 'none'})",
        )
    return Partition(instance, graph, islands, None)
