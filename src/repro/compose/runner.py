"""The compositional driver: partition, fan out, combine.

:func:`analyze_compositionally` is the ``analyze --compose`` entry
point.  It partitions the instance into processor islands
(:mod:`~repro.compose.coupling`), ships one ``island`` batch job per
island through the :mod:`repro.batch` pool -- so islands analyze in
parallel and land in the persistent verdict cache under per-island
keys -- and folds the island verdicts into one answer
(:mod:`~repro.compose.combiner`).  When decomposition is unsound or
pointless it runs the ordinary monolithic pipeline instead and says
why.

Every island is analyzed with the *full* model's natural quantum, not
its own: an island's GCD can be coarser than the whole model's, and a
coarser quantum changes preemption points.  Pinning the quantum makes
island-by-island exploration semantically a projection of the
monolithic one, which is what the compositional oracle relation
(:mod:`repro.oracle.compose`) checks end to end.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.aadl.components import DeclarativeModel
from repro.aadl.instance import SystemInstance, instantiate
from repro.aadl.printer import format_model
from repro.aadl.properties import TimeValue
from repro.analysis.schedulability import Verdict, analyze_model
from repro.batch.jobs import AnalysisJob, JobResult
from repro.batch.pool import run_batch
from repro.compose.combiner import (
    CompositionResult,
    IslandOutcome,
    combine_outcomes,
)
from repro.compose.coupling import Partition, partition_instance
from repro.translate.quantum import TimingQuantizer

ProgressFn = Callable[[int, int, JobResult], None]


def _resolve(
    model: Union[SystemInstance, DeclarativeModel],
    root_impl: Optional[str],
) -> SystemInstance:
    if isinstance(model, DeclarativeModel):
        if root_impl is None:
            raise ValueError(
                "root_impl is required when passing a declarative model"
            )
        return instantiate(model, root_impl)
    return model


def plan(
    model: Union[SystemInstance, DeclarativeModel],
    *,
    root_impl: Optional[str] = None,
    steady_mode: bool = False,
) -> Partition:
    """Partition without analyzing (the ``repro compose plan`` command)."""
    from repro.obs.tracer import current_tracer

    instance = _resolve(model, root_impl)
    with current_tracer().span("compose.partition") as span:
        partition = partition_instance(instance, steady_mode=steady_mode)
        span.set(
            decomposable=partition.decomposable,
            islands=len(partition.islands),
            edges=len(partition.graph.edges) if partition.graph else 0,
            fallback=partition.fallback_reason,
        )
    return partition


def analyze_compositionally(
    model: Union[SystemInstance, DeclarativeModel],
    *,
    root_impl: Optional[str] = None,
    mode: Optional[str] = None,
    quantum: Optional[TimeValue] = None,
    max_states: int = 1_000_000,
    workers: Optional[int] = None,
    cache=None,
    progress: Optional[ProgressFn] = None,
    portfolio: bool = False,
    reduction: Union[str, None] = None,
) -> CompositionResult:
    """Analyze ``model`` island by island when that is sound, falling
    back to :func:`~repro.analysis.analyze_model` (with the reason
    recorded on the result) when it is not.

    ``workers``/``cache``/``progress`` are forwarded to
    :func:`repro.batch.pool.run_batch`; each island is one batch job,
    so island verdicts cache independently.

    ``portfolio`` screens every island through the analytic tiers
    *before* the fan-out: islands the tiers decide (microseconds,
    in-process) never spawn an exploration job, and only the undecided
    remainder ships to the pool -- as ordinary ``island`` jobs, so their
    cache entries are shared with non-portfolio compose runs.  The
    monolithic fallback likewise routes through the portfolio.

    ``reduction`` (a ``"sym,por"``-style spec) is forwarded to every
    island job and to the monolithic fallback; the spec rides in each
    job's options, so reduced and unreduced runs never share verdict
    cache entries.

    ``mode`` pins a multi-modal root to one steady mode (requires a
    declarative ``model``): the multi-modal decomposition bar is
    waived -- the verdict claimed is for that mode only -- and every
    island job re-instantiates the same mode in its worker, with the
    mode name riding in each job's cache key.
    """
    from repro.obs.tracer import current_tracer

    from repro.engine.reduce import reduction_token

    tracer = current_tracer()
    reduce_token = reduction_token(reduction)
    steady = mode is not None
    if steady:
        if not isinstance(model, DeclarativeModel):
            raise ValueError(
                "mode= requires a declarative model (the pinned mode "
                "must be re-instantiable in the pool workers)"
            )
        if root_impl is None:
            raise ValueError(
                "root_impl is required when passing a declarative model"
            )
        impl = model.implementation(root_impl)
        instance = instantiate(
            model, root_impl, mode_overrides={impl.name: mode}
        )
    else:
        instance = _resolve(model, root_impl)
    partition = plan(instance, steady_mode=steady)

    if not partition.decomposable:
        if _is_partitioned(instance):
            # Exploration cannot express server supply; the portfolio
            # screens analytically and escalates to the hierarchical
            # (BDR) analysis instead of the ACSR translation.
            from repro.portfolio import analyze_portfolio

            monolithic = analyze_portfolio(
                instance,
                quantum=quantum,
                max_states=max_states,
                reduction=reduce_token,
                steady_mode=steady,
            )
        else:
            monolithic = analyze_model(
                instance,
                quantum=quantum,
                max_states=max_states,
                portfolio=portfolio,
                reduction=reduce_token,
            )
        return CompositionResult(
            partition=partition,
            mode="monolithic-fallback",
            verdict=monolithic.verdict,
            monolithic=monolithic,
            fallback_reason=partition.fallback_reason,
        )

    # Pin every island to the full model's quantum (see module docstring).
    pinned_quantizer = (
        TimingQuantizer(quantum)
        if quantum is not None
        else TimingQuantizer.natural(instance)
    )
    quantum_ps = pinned_quantizer.quantum.picoseconds

    analytic: dict = {}
    pending_islands = list(partition.islands)
    if portfolio:
        analytic = _screen_islands(
            instance, partition, pinned_quantizer, steady_mode=steady
        )
        pending_islands = [
            island
            for island in partition.islands
            if island.label not in analytic
        ]

    source = format_model(instance.declarative)
    root = instance.impl.name if instance.impl is not None else None
    jobs = [
        AnalysisJob.from_island(
            source,
            root=root,
            label=island.label,
            threads=[t.qualified_name for t in island.threads],
            processors=[p.qualified_name for p in island.processors],
            max_states=max_states,
            quantum_ps=quantum_ps,
            reduce=reduce_token,
            mode=mode,
        )
        for island in pending_islands
    ]
    explored: dict = {}
    if jobs:
        report = run_batch(
            jobs, workers=workers, cache=cache, progress=progress
        )
        explored = {
            island.label: result
            for island, result in zip(pending_islands, report.results)
        }

    with tracer.span(
        "compose.combine",
        islands=len(partition.islands),
        analytic=len(analytic),
    ) as span:
        outcomes = []
        for island in partition.islands:
            if island.label in analytic:
                outcomes.append(analytic[island.label])
                continue
            result = explored[island.label]
            verdict = (
                Verdict(result.verdict)
                if result.verdict in Verdict._value2member_map_
                else Verdict.UNKNOWN
            )
            outcomes.append(
                IslandOutcome(
                    island=island,
                    verdict=verdict,
                    states=result.states,
                    elapsed=result.elapsed,
                    stats=result.stats,
                    rendered=result.rendered,
                    cached=result.cached,
                    error=result.error,
                )
            )
        combined = combine_outcomes(partition, outcomes)
        span.set(verdict=combined.verdict.value).incr(
            "states", combined.total_states
        )
    return combined


def _is_partitioned(instance: SystemInstance) -> bool:
    """True when any thread executes inside a virtual-processor
    partition rather than directly on its host."""
    return any(
        thread.bound_processor is not None
        and thread.bound_processor is not thread.host_processor
        for thread in instance.threads()
    )


def _screen_islands(
    instance: SystemInstance,
    partition: Partition,
    quantizer: TimingQuantizer,
    *,
    steady_mode: bool = False,
) -> dict:
    """Try the analytic tiers on each island slice, in-process.

    Returns ``{label: IslandOutcome}`` for the islands a tier decided;
    the rest escalate to the pool.  Slicing plus the tier chain costs
    microseconds per island, far below the cost of spawning a job.
    """
    from repro.aadl import slice_instance
    from repro.portfolio import PortfolioAnalyzer

    analyzer = PortfolioAnalyzer()
    decided: dict = {}
    for island in partition.islands:
        keep = list(island.threads) + list(island.processors)
        sliced = slice_instance(instance, keep, label=island.label)
        result = analyzer.try_analytic(
            sliced, quantizer=quantizer, steady_mode=steady_mode
        )
        if result is None:
            continue
        stats = result.exploration.stats
        decided[island.label] = IslandOutcome(
            island=island,
            verdict=result.verdict,
            states=0,
            elapsed=result.elapsed,
            stats=stats.as_dict() if stats is not None else None,
            rendered=result.format(),
        )
    return decided
