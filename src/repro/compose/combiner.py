"""Verdict combination across islands.

Islands are timing-independent by construction, so schedulability of
the whole model is the conjunction of the island verdicts:

* every island SCHEDULABLE -> SCHEDULABLE;
* any island UNSCHEDULABLE -> UNSCHEDULABLE, carrying that island's
  raised counterexample (a deadlock in a slice is a deadlock of the
  full composition: the removed components cannot un-block it);
* otherwise any UNKNOWN -> UNKNOWN (some island's budget ran out).

An island that *errors* (worker-side translation or model failure)
poisons the combination: the error is re-raised rather than folded
into a verdict, matching what the monolithic pipeline would do.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis.schedulability import Verdict
from repro.compose.coupling import Island, Partition
from repro.errors import ComposeError


class IslandOutcome:
    """One island's analysis outcome (a thin, JSON-friendly view of the
    batch :class:`~repro.batch.jobs.JobResult` that produced it)."""

    __slots__ = (
        "island",
        "verdict",
        "states",
        "elapsed",
        "stats",
        "rendered",
        "cached",
        "error",
    )

    def __init__(
        self,
        *,
        island: Island,
        verdict: Verdict,
        states: int,
        elapsed: float,
        stats: Optional[Dict[str, Any]] = None,
        rendered: Optional[str] = None,
        cached: bool = False,
        error: Optional[str] = None,
    ) -> None:
        self.island = island
        self.verdict = verdict
        self.states = states
        self.elapsed = elapsed
        self.stats = stats
        self.rendered = rendered
        self.cached = cached
        self.error = error

    def __repr__(self) -> str:
        extra = " cached" if self.cached else ""
        return (
            f"IslandOutcome({self.island.label!r}, "
            f"{self.verdict.value}{extra})"
        )


class CompositionResult:
    """What ``analyze --compose`` produced.

    ``mode`` is ``"compositional"`` (islands analyzed separately,
    ``outcomes`` populated) or ``"monolithic-fallback"`` (``monolithic``
    holds the ordinary :class:`~repro.analysis.AnalysisResult` and
    ``fallback_reason`` says why).
    """

    def __init__(
        self,
        *,
        partition: Partition,
        mode: str,
        verdict: Verdict,
        outcomes: Optional[List[IslandOutcome]] = None,
        monolithic=None,
        fallback_reason: Optional[str] = None,
    ) -> None:
        self.partition = partition
        self.mode = mode
        self.verdict = verdict
        self.outcomes = outcomes or []
        self.monolithic = monolithic
        self.fallback_reason = fallback_reason

    @property
    def compositional(self) -> bool:
        return self.mode == "compositional"

    @property
    def total_states(self) -> int:
        """States explored: sum over islands, or the monolithic count."""
        if self.compositional:
            return sum(outcome.states for outcome in self.outcomes)
        return self.monolithic.num_states if self.monolithic else 0

    def format(self, *, show_stats: bool = False) -> str:
        if not self.compositional:
            lines = [
                f"compose: monolithic fallback ({self.fallback_reason})",
            ]
            if self.monolithic is not None:
                lines.append(self.monolithic.format(show_stats=show_stats))
            return "\n".join(lines)
        lines = [
            f"compose: {len(self.outcomes)} islands "
            f"({self.total_states} states total)"
        ]
        for outcome in self.outcomes:
            cached = " [cached]" if outcome.cached else ""
            lines.append(
                f"  {outcome.island.label}: {outcome.verdict.value}, "
                f"{outcome.states} states "
                f"({outcome.elapsed:.3f}s){cached}"
            )
        lines.append(f"verdict: {self.verdict.value}")
        culprit = self.first_unschedulable()
        if culprit is not None and culprit.rendered:
            lines.append(f"counterexample island: {culprit.island.label}")
            for line in culprit.rendered.splitlines():
                lines.append(f"  {line}")
        return "\n".join(lines)

    def first_unschedulable(self) -> Optional[IslandOutcome]:
        for outcome in self.outcomes:
            if outcome.verdict is Verdict.UNSCHEDULABLE:
                return outcome
        return None

    @property
    def exit_code(self) -> int:
        return self.verdict.exit_code

    def __repr__(self) -> str:
        return f"CompositionResult({self.mode}, {self.verdict.value})"


def combine_outcomes(
    partition: Partition, outcomes: List[IslandOutcome]
) -> CompositionResult:
    """Fold island outcomes into the composed verdict.

    Raises :class:`~repro.errors.ComposeError` if any island errored;
    a partial composition has no sound verdict.
    """
    errored = [o for o in outcomes if o.error]
    if errored:
        details = "; ".join(
            f"{o.island.label}: {o.error}" for o in errored
        )
        raise ComposeError(f"island analysis failed: {details}")
    verdict = Verdict.combine(o.verdict for o in outcomes)
    return CompositionResult(
        partition=partition,
        mode="compositional",
        verdict=verdict,
        outcomes=outcomes,
    )
