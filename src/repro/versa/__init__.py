"""VERSA-style analysis surface: state-space queries over ACSR systems.

The original VERSA tool (Clarke, Lee & Xie 1995) performs state-space
exploration and deadlock detection over the prioritized transition
relation of an ACSR model; the paper (S5) reduces schedulability to
exactly that question.  The exploration loop itself lives in
:mod:`repro.engine` (pluggable search strategies, explicit transition
cache, observer hooks); this subpackage is the analysis-facing surface
over it:

* :class:`~repro.versa.explorer.Explorer` -- compatibility facade over
  :func:`repro.engine.explore` (BFS by default: state interning, budget
  limits and early deadlock exit);
* :class:`~repro.versa.traces.Trace` -- counterexample traces (the
  "failing scenarios" of the paper);
* :mod:`~repro.versa.queries` -- deadlock-freedom, reachability and
  observer-style queries;
* :class:`~repro.versa.lts.LTS` -- an explicit labelled transition system
  for export (networkx) and minimization;
* :mod:`~repro.versa.minimize` -- strong-bisimulation quotient via
  partition refinement;
* :mod:`~repro.versa.walk` -- bounded random walks (the engine's
  random-walk strategy wearing its trace-producing API).
"""

from repro.versa.explorer import Explorer, ExplorationResult
from repro.versa.traces import Step, Trace
from repro.versa.lts import LTS
from repro.versa.queries import (
    deadlock_free,
    find_deadlock,
    find_reachable,
    reachable_states,
)
from repro.versa.minimize import bisimulation_quotient, minimized_lts
from repro.versa.weak import weak_bisimulation_quotient
from repro.versa.walk import (
    event_first_policy,
    multi_walk,
    random_walk,
    uniform_policy,
    walk_statistics,
)

__all__ = [
    "Explorer",
    "ExplorationResult",
    "LTS",
    "Step",
    "Trace",
    "bisimulation_quotient",
    "deadlock_free",
    "event_first_policy",
    "minimized_lts",
    "multi_walk",
    "random_walk",
    "uniform_policy",
    "walk_statistics",
    "weak_bisimulation_quotient",
    "find_deadlock",
    "find_reachable",
    "reachable_states",
]
