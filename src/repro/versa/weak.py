"""Weak (observational) bisimulation quotient.

Internal steps (``tau`` labels) are unobservable: two states are weakly
bisimilar when they match each other's *visible* behaviour up to
interleaved internal activity.  On translated AADL systems this abstracts
the dispatch/done/queue handshakes away, leaving the timed schedule --
the quotient of a schedulable single-thread system is (close to) a bare
cycle of its period.

Implementation: saturate the LTS with weak transitions
(``tau* a tau*`` for visible ``a``, ``tau*`` for internal moves), then run
strong partition refinement over the saturated relation, with the
convention that a weak-tau move to a state's own block is implicit
(stuttering) and therefore excluded from signatures.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.acsr.events import EventLabel
from repro.versa.lts import LTS

#: Canonical label for all internal steps in the weak view.
TAU = "tau"


def _weak_label(label: Hashable) -> Hashable:
    if isinstance(label, EventLabel) and label.is_tau:
        return TAU
    return label


def _tau_closure(n: int, tau_succ: List[Set[int]]) -> List[Set[int]]:
    """Reflexive-transitive closure of the internal-step relation."""
    closure: List[Set[int]] = [set((i,)) for i in range(n)]
    # Iterative propagation; state counts here are small (explored LTSs).
    changed = True
    while changed:
        changed = False
        for state in range(n):
            additions: Set[int] = set()
            for reached in closure[state]:
                for nxt in tau_succ[reached]:
                    if nxt not in closure[state]:
                        additions.add(nxt)
            if additions:
                closure[state] |= additions
                changed = True
    return closure


def weak_bisimulation_quotient(lts: LTS) -> Tuple[LTS, List[int]]:
    """Quotient the LTS by weak bisimilarity.

    Returns ``(quotient, block_of)``.  Quotient edges carry the original
    labels for visible moves and the string ``"tau"`` for residual
    (non-stuttering) internal moves.
    """
    n = lts.num_states
    if n == 0:
        return LTS(0, 0, []), []

    tau_succ: List[Set[int]] = [set() for _ in range(n)]
    visible: List[List[Tuple[Hashable, int]]] = [[] for _ in range(n)]
    for src, label, dst in lts.edges:
        if _weak_label(label) == TAU:
            tau_succ[src].add(dst)
        else:
            visible[src].append((label, dst))

    closure = _tau_closure(n, tau_succ)

    # Weak successor sets: s ==a==> t  iff  s tau* s' -a-> t' tau* t.
    weak_visible: List[Set[Tuple[Hashable, int]]] = [set() for _ in range(n)]
    weak_tau: List[Set[int]] = [set() for _ in range(n)]
    for state in range(n):
        for mid in closure[state]:
            weak_tau[state] |= closure[mid]
            for label, target in visible[mid]:
                for final in closure[target]:
                    weak_visible[state].add((label, final))

    block_of = [0] * n
    while True:
        signatures: Dict[int, Dict[frozenset, List[int]]] = {}
        for state in range(n):
            sig_items = {
                (label, block_of[target])
                for label, target in weak_visible[state]
            }
            # Weak tau moves to a *different* block are observable
            # branching; moves within the own block are stuttering.
            sig_items |= {
                (TAU, block_of[target])
                for target in weak_tau[state]
                if block_of[target] != block_of[state]
            }
            signatures.setdefault(block_of[state], {}).setdefault(
                frozenset(sig_items), []
            ).append(state)

        new_block_of = [0] * n
        next_block = 0
        changed = False
        for block in sorted(signatures):
            groups = signatures[block]
            if len(groups) > 1:
                changed = True
            for sig in sorted(groups, key=lambda fs: sorted(map(repr, fs))):
                for state in groups[sig]:
                    new_block_of[state] = next_block
                next_block += 1
        block_of = new_block_of
        if not changed:
            break

    num_blocks = next_block
    edges: Dict[Tuple[int, Hashable, int], None] = {}
    for state in range(n):
        for label, target in weak_visible[state]:
            edges.setdefault(
                (block_of[state], label, block_of[target]), None
            )
        for target in weak_tau[state]:
            if block_of[target] != block_of[state]:
                edges.setdefault((block_of[state], TAU, block_of[target]), None)
    quotient = LTS(num_blocks, block_of[lts.initial], list(edges))
    return quotient, block_of
