"""State-space exploration with deadlock detection (compatibility shim).

The exploration loop itself now lives in :mod:`repro.engine` -- one
generic :func:`~repro.engine.core.explore` driven by pluggable search
strategies, an explicit transition cache and observer hooks.  This
module keeps the historical public surface (:class:`Explorer`,
:class:`ExplorationResult`) as a thin layer over the engine so existing
callers and scripts keep working unchanged.

BFS (rather than DFS) remains the default so that the first deadlock
found yields a *shortest* counterexample trace, which makes the raised
AADL scenarios minimal and readable.  States are hash-consed ACSR
terms; the engine's visited set is an identity-keyed dict and state
comparison is pointer equality -- the single most important performance
property of the engine.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

from repro.engine.budget import Budget
from repro.engine.core import explore
from repro.engine.observers import Observer
from repro.engine.result import ExplorationResult
from repro.engine.strategies import SearchStrategy
from repro.acsr.definitions import ClosedSystem
from repro.acsr.terms import Term

__all__ = ["Explorer", "ExplorationResult"]


class Explorer:
    """State-space explorer over a closed ACSR system.

    A compatibility facade over :func:`repro.engine.explore`: the
    constructor arguments map onto an engine :class:`Budget` and the
    BFS strategy.  New code should call the engine directly, which also
    exposes DFS / random-walk strategies and observer instrumentation;
    ``strategy`` and ``observers`` are accepted here for convenience.

    Args:
        system: the closed system to explore.
        prioritized: explore the prioritized transition relation (the
            paper's semantics) or, for ablation, the unprioritized one.
        max_states: state budget; exceeding it raises
            :class:`~repro.errors.ExplorationLimitError` unless
            ``on_limit="truncate"``.
        max_seconds: optional wall-clock budget, same policy.
        store_transitions: keep the full transition table (needed for LTS
            export and minimization; costs memory).
        on_limit: ``"raise"`` (default) or ``"truncate"`` -- truncation
            returns a result with ``completed=False``.
        strategy: optional engine search strategy (name or instance);
            defaults to BFS.
        observers: optional engine observers to notify during the run.
    """

    def __init__(
        self,
        system: ClosedSystem,
        *,
        prioritized: bool = True,
        max_states: int = 1_000_000,
        max_seconds: Optional[float] = None,
        store_transitions: bool = False,
        on_limit: str = "raise",
        strategy: Union[SearchStrategy, str, None] = None,
        observers: Union[Observer, Iterable[Observer], None] = None,
    ) -> None:
        if on_limit not in ("raise", "truncate"):
            raise ValueError("on_limit must be 'raise' or 'truncate'")
        self.system = system
        self.prioritized = prioritized
        self.max_states = max_states
        self.max_seconds = max_seconds
        self.store_transitions = store_transitions
        self.on_limit = on_limit
        self.strategy = strategy
        self.observers = observers

    def budget(self) -> Budget:
        """The engine budget equivalent to this explorer's limits."""
        return Budget(
            max_states=self.max_states,
            max_seconds=self.max_seconds,
            on_limit=self.on_limit,
        )

    def run(
        self,
        *,
        stop_at_first_deadlock: bool = False,
        target: Optional[Callable[[Term], bool]] = None,
        stop_at_target: bool = False,
    ) -> ExplorationResult:
        """Explore from the system root (BFS unless a strategy was given).

        Args:
            stop_at_first_deadlock: return as soon as a deadlock is found
                (shortest counterexample); the result then has
                ``completed=False`` unless the space was exhausted anyway.
            target: optional predicate on states; matches are collected in
                ``target_states``.
            stop_at_target: stop as soon as the predicate matches.
        """
        return explore(
            self.system,
            strategy=self.strategy,
            prioritized=self.prioritized,
            budget=self.budget(),
            store_transitions=self.store_transitions,
            stop_at_first_deadlock=stop_at_first_deadlock,
            target=target,
            stop_at_target=stop_at_target,
            observers=self.observers,
        )
