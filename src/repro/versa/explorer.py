"""Breadth-first state-space exploration with deadlock detection.

The explorer walks the (by default prioritized) transition relation of a
:class:`~repro.acsr.definitions.ClosedSystem` from its root term.  States
are ACSR terms; because terms are hash-consed, the visited set is a plain
identity-keyed dict and state comparison is pointer equality -- this is the
single most important performance property of the engine (the HPC guides'
"optimize the measured bottleneck": state dedup dominates exploration).

BFS (rather than DFS) is used so that the first deadlock found yields a
*shortest* counterexample trace, which makes the raised AADL scenarios
minimal and readable.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExplorationLimitError
from repro.acsr.definitions import ClosedSystem
from repro.acsr.terms import Term
from repro.versa.traces import Step, Trace


class ExplorationResult:
    """Outcome of a state-space exploration.

    Attributes:
        initial: the root state.
        num_states: states discovered (including the initial one).
        num_transitions: transitions traversed.
        deadlock_states: states with no outgoing (prioritized) transition.
        target_states: states satisfying the optional target predicate.
        completed: True when the full reachable space was explored (i.e.
            the search was not stopped early by a budget, a first-deadlock
            request, or a target hit).
        elapsed: wall-clock seconds.
    """

    def __init__(
        self,
        initial: Term,
        *,
        num_states: int,
        num_transitions: int,
        deadlock_states: List[Term],
        target_states: List[Term],
        completed: bool,
        elapsed: float,
        parent: Dict[Term, Tuple[Optional[Term], Optional[object]]],
        transitions: Optional[Dict[Term, Tuple[Tuple[object, Term], ...]]],
    ) -> None:
        self.initial = initial
        self.num_states = num_states
        self.num_transitions = num_transitions
        self.deadlock_states = deadlock_states
        self.target_states = target_states
        self.completed = completed
        self.elapsed = elapsed
        self._parent = parent
        self._transitions = transitions

    @property
    def deadlock_free(self) -> bool:
        """True when the explored space contains no deadlock.

        Only meaningful when :attr:`completed` is True (or a first-deadlock
        search returned no deadlock and completed).
        """
        return not self.deadlock_states

    def trace_to(self, state: Term) -> Trace:
        """Shortest trace (along the BFS tree) from the initial state."""
        if state not in self._parent:
            raise KeyError(f"state was not discovered: {state!r}")
        steps: List[Step] = []
        current: Optional[Term] = state
        while current is not None:
            parent, label = self._parent[current]
            if parent is None:
                break
            steps.append(Step(label, current))
            current = parent
        steps.reverse()
        return Trace(self.initial, steps)

    def first_deadlock_trace(self) -> Optional[Trace]:
        """Trace to the first (shallowest) deadlock, if any."""
        if not self.deadlock_states:
            return None
        return self.trace_to(self.deadlock_states[0])

    def transitions_of(self, state: Term) -> Tuple[Tuple[object, Term], ...]:
        """Outgoing transitions of an explored state (requires the explorer
        to have been run with ``store_transitions=True``)."""
        if self._transitions is None:
            raise ValueError(
                "exploration did not store transitions; "
                "pass store_transitions=True"
            )
        return self._transitions[state]

    @property
    def stored_transitions(
        self,
    ) -> Optional[Dict[Term, Tuple[Tuple[object, Term], ...]]]:
        return self._transitions

    def states(self) -> List[Term]:
        """All discovered states, in BFS discovery order."""
        return list(self._parent)

    def __repr__(self) -> str:
        return (
            f"ExplorationResult(states={self.num_states}, "
            f"transitions={self.num_transitions}, "
            f"deadlocks={len(self.deadlock_states)}, "
            f"completed={self.completed})"
        )


class Explorer:
    """State-space explorer over a closed ACSR system.

    Args:
        system: the closed system to explore.
        prioritized: explore the prioritized transition relation (the
            paper's semantics) or, for ablation, the unprioritized one.
        max_states: state budget; exceeding it raises
            :class:`~repro.errors.ExplorationLimitError` unless
            ``on_limit="truncate"``.
        max_seconds: optional wall-clock budget, same policy.
        store_transitions: keep the full transition table (needed for LTS
            export and minimization; costs memory).
        on_limit: ``"raise"`` (default) or ``"truncate"`` -- truncation
            returns a result with ``completed=False``.
    """

    def __init__(
        self,
        system: ClosedSystem,
        *,
        prioritized: bool = True,
        max_states: int = 1_000_000,
        max_seconds: Optional[float] = None,
        store_transitions: bool = False,
        on_limit: str = "raise",
    ) -> None:
        if on_limit not in ("raise", "truncate"):
            raise ValueError("on_limit must be 'raise' or 'truncate'")
        self.system = system
        self.prioritized = prioritized
        self.max_states = max_states
        self.max_seconds = max_seconds
        self.store_transitions = store_transitions
        self.on_limit = on_limit

    def _steps(self, state: Term) -> Tuple[Tuple[object, Term], ...]:
        if self.prioritized:
            return self.system.prioritized_steps(state)
        return self.system.steps(state)

    def run(
        self,
        *,
        stop_at_first_deadlock: bool = False,
        target: Optional[Callable[[Term], bool]] = None,
        stop_at_target: bool = False,
    ) -> ExplorationResult:
        """Explore breadth-first from the system root.

        Args:
            stop_at_first_deadlock: return as soon as a deadlock is found
                (shortest counterexample); the result then has
                ``completed=False`` unless the space was exhausted anyway.
            target: optional predicate on states; matches are collected in
                ``target_states``.
            stop_at_target: stop as soon as the predicate matches.
        """
        start = time.perf_counter()
        initial = self.system.root
        parent: Dict[Term, Tuple[Optional[Term], Optional[object]]] = {
            initial: (None, None)
        }
        transitions: Optional[Dict[Term, Tuple[Tuple[object, Term], ...]]] = (
            {} if self.store_transitions else None
        )
        deadlocks: List[Term] = []
        targets: List[Term] = []
        num_transitions = 0
        stopped_early = False

        queue: deque = deque((initial,))
        if target is not None and target(initial):
            targets.append(initial)
            if stop_at_target:
                queue.clear()
                stopped_early = True

        while queue:
            if self.max_seconds is not None and (
                time.perf_counter() - start > self.max_seconds
            ):
                if self.on_limit == "raise":
                    raise ExplorationLimitError(
                        f"time budget {self.max_seconds}s exhausted after "
                        f"{len(parent)} states",
                        states_explored=len(parent),
                    )
                stopped_early = True
                break
            state = queue.popleft()
            steps = self._steps(state)
            if transitions is not None:
                transitions[state] = steps
            if not steps:
                deadlocks.append(state)
                if stop_at_first_deadlock:
                    stopped_early = True
                    break
                continue
            num_transitions += len(steps)
            for label, successor in steps:
                if successor not in parent:
                    if len(parent) >= self.max_states:
                        if self.on_limit == "raise":
                            raise ExplorationLimitError(
                                f"state budget {self.max_states} exhausted",
                                states_explored=len(parent),
                            )
                        stopped_early = True
                        queue.clear()
                        break
                    parent[successor] = (state, label)
                    if target is not None and target(successor):
                        targets.append(successor)
                        if stop_at_target:
                            stopped_early = True
                            queue.clear()
                            break
                    queue.append(successor)
            else:
                continue
            break

        completed = not stopped_early and not queue
        return ExplorationResult(
            initial,
            num_states=len(parent),
            num_transitions=num_transitions,
            deadlock_states=deadlocks,
            target_states=targets,
            completed=completed,
            elapsed=time.perf_counter() - start,
            parent=parent,
            transitions=transitions,
        )
