"""Random and guided walks through an ACSR system.

VERSA offered interactive execution alongside exhaustive search; walks
are the scripted equivalent -- useful for sanity-checking a model's
behaviour, generating example schedules, and statistical smoke tests
where the full space is too large.  A walk is *one* behaviour; only the
explorer's verdicts are exhaustive.

The walk itself is the engine's
:class:`~repro.engine.strategies.RandomWalk` search strategy: this
module keeps the trace-producing API and the transition-choice
policies, and drives :func:`repro.engine.explore` underneath, so walks
share the transition cache, budgets and observer hooks with every
other search.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.budget import Budget
from repro.engine.core import explore
from repro.engine.strategies import RandomWalk
from repro.acsr.definitions import ClosedSystem
from repro.acsr.terms import Term
from repro.versa.traces import Step, Trace

#: A walk policy picks one transition among the enabled ones.
Policy = Callable[[Sequence[Tuple[object, Term]], np.random.Generator], int]


def uniform_policy(
    steps: Sequence[Tuple[object, Term]], rng: np.random.Generator
) -> int:
    """Choose uniformly among enabled transitions."""
    return int(rng.integers(len(steps)))


def event_first_policy(
    steps: Sequence[Tuple[object, Term]], rng: np.random.Generator
) -> int:
    """Drain pending events before letting time pass (mirrors the maximal-
    progress intuition; among events, uniform)."""
    from repro.acsr.events import EventLabel

    events = [
        index
        for index, (label, _) in enumerate(steps)
        if isinstance(label, EventLabel)
    ]
    pool = events if events else list(range(len(steps)))
    return int(pool[rng.integers(len(pool))])


#: A walk seed: an int, a SeedSequence (multi_walk hands spawned
#: children straight through), or None for fresh entropy.
Seed = Optional[object]


def random_walk(
    system: ClosedSystem,
    *,
    max_steps: int = 100,
    seed: Seed = None,
    policy: Policy = uniform_policy,
    prioritized: bool = True,
) -> Trace:
    """Walk ``max_steps`` transitions from the root (or until deadlock).

    Returns the trace actually taken.  ``trace.deadlocked`` is always
    filled in: the engine expands the walk's final state, so a deadlock
    is detected even when it is reached on exactly the ``max_steps``-th
    transition (where ``len(trace) < max_steps`` would miss it).
    ``seed`` accepts an int or a :class:`numpy.random.SeedSequence`.
    """
    from repro.obs.tracer import current_tracer

    with current_tracer().span("versa.walk", max_steps=max_steps) as span:
        strategy = RandomWalk(
            max_steps=max_steps, seed=seed, policy=policy
        )
        result = explore(
            system,
            strategy=strategy,
            prioritized=prioritized,
            budget=Budget(max_states=None),
        )
        # The only states the walk expands lie on its path, and the walk
        # stops at the first successor-less one -- so any recorded
        # deadlock is the final state's.
        trace = Trace(
            system.root,
            [Step(label, state) for label, state in strategy.path],
            deadlocked=bool(result.deadlock_states),
        )
        span.set(deadlocked=trace.deadlocked).incr("steps", len(trace))
    return trace


def multi_walk(
    system: ClosedSystem,
    *,
    walks: int = 20,
    max_steps: int = 200,
    seed: Seed = None,
    policy: Policy = uniform_policy,
    prioritized: bool = True,
) -> List[Trace]:
    """``walks`` independent random walks, reproducibly seeded.

    Child seeds come from ``np.random.SeedSequence(seed).spawn(walks)``,
    which guarantees statistically independent, collision-free child
    streams -- drawing raw integers from one generator (the previous
    scheme) can collide on small seed spaces.  A fixed ``seed`` makes
    the whole batch -- every trace, byte for byte -- deterministic; the
    differential oracle and the statistical smoke tests both rely on
    that determinism (pinned by ``tests/test_versa_walk_weak.py``).
    """
    from repro.obs.tracer import current_tracer

    base = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    children = base.spawn(walks)
    with current_tracer().span("versa.multi_walk", walks=walks):
        return [
            random_walk(
                system,
                max_steps=max_steps,
                seed=child,
                policy=policy,
                prioritized=prioritized,
            )
            for child in children
        ]


def walk_statistics(
    system: ClosedSystem,
    *,
    walks: int = 20,
    max_steps: int = 200,
    seed: Seed = None,
) -> dict:
    """Aggregate several uniform walks: deadlock hit-rate and depths.

    A cheap statistical smoke test: a nonzero ``deadlock_rate`` proves
    unschedulability (witnessed), but zero proves nothing -- use the
    explorer for the real verdict.  Deadlocks are decided by the final
    state's enabled transitions (``trace.deadlocked``), not by the walk
    length: a walk whose shortest deadlock lies exactly ``max_steps``
    deep still counts, and a future early-stop reason cannot be
    miscounted as a deadlock.
    """
    traces = multi_walk(
        system, walks=walks, max_steps=max_steps, seed=seed
    )
    deadlocks = 0
    durations = []
    for trace in traces:
        durations.append(trace.duration)
        if trace.deadlocked:
            deadlocks += 1
    return {
        "walks": walks,
        "deadlocks": deadlocks,
        "deadlock_rate": deadlocks / walks if walks else 0.0,
        "mean_duration": float(np.mean(durations)) if durations else 0.0,
        "max_duration": max(durations, default=0),
    }
