"""Strong-bisimulation minimization of explored transition systems.

Naive partition refinement: start from a single block and split blocks by
the multiset of (label, target-block) signatures until stable.  Complexity
is O(m * n) per round in the worst case -- entirely adequate for the sizes
we minimize (the quotient is a diagnostic/compression device, not part of
the schedulability verdict; deadlock-freedom is invariant under strong
bisimulation, which the tests exploit).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.versa.lts import LTS


def minimized_lts(
    system,
    *,
    max_states: int = 1_000_000,
    prioritized: bool = True,
    strategy=None,
) -> Tuple[LTS, List[int]]:
    """Explore ``system`` through the engine and quotient the result.

    One-stop pipeline for the common diagnostic use: engine exploration
    (``store_transitions=True``) -> LTS -> strong-bisimulation quotient.
    Returns ``(quotient, block_of)`` as :func:`bisimulation_quotient`.
    """
    lts = LTS.explore(
        system,
        max_states=max_states,
        prioritized=prioritized,
        strategy=strategy,
    )
    return bisimulation_quotient(lts)


def bisimulation_quotient(lts: LTS) -> Tuple[LTS, List[int]]:
    """Quotient the LTS by strong bisimilarity.

    Returns ``(quotient, block_of)`` where ``block_of[s]`` is the quotient
    state containing original state ``s``.
    """
    from repro.obs.tracer import current_tracer

    n = lts.num_states
    if n == 0:
        return LTS(0, 0, []), []

    span = current_tracer().span("versa.minimize", states=n)
    # Successor lists come from the LTS's cached adjacency index -- one
    # O(E) build shared with every other query instead of a local scan.
    succs: List[List[Tuple[Hashable, int]]] = [
        lts.successors(state) for state in range(n)
    ]

    rounds = 0
    block_of = [0] * n
    num_blocks = 1
    while True:
        rounds += 1
        signatures: Dict[int, Dict[frozenset, List[int]]] = {}
        for state in range(n):
            sig = frozenset(
                (_label_key(label), block_of[dst]) for label, dst in succs[state]
            )
            signatures.setdefault(block_of[state], {}).setdefault(
                sig, []
            ).append(state)

        new_block_of = [0] * n
        next_block = 0
        changed = False
        for block in sorted(signatures):
            groups = signatures[block]
            if len(groups) > 1:
                changed = True
            for sig in sorted(groups, key=lambda fs: sorted(map(repr, fs))):
                for state in groups[sig]:
                    new_block_of[state] = next_block
                next_block += 1
        block_of = new_block_of
        num_blocks = next_block
        if not changed:
            break

    # Build the quotient: one representative edge set per block.
    edge_set: Dict[Tuple[int, Hashable, int], None] = {}
    for src, label, dst in lts.edges:
        edge_set.setdefault((block_of[src], label, block_of[dst]), None)
    quotient = LTS(
        num_blocks,
        block_of[lts.initial],
        list(edge_set),
    )
    span.incr("rounds", rounds).incr("blocks", num_blocks)
    span.finish()
    return quotient, block_of


def _label_key(label: Hashable) -> Hashable:
    """Labels are already hashable (interned Actions / EventLabels)."""
    return label
