"""High-level analysis queries over closed ACSR systems.

These are the operations the paper's toolchain exposes: deadlock-freedom
(= schedulability after translation, S5), first-deadlock counterexamples,
and reachability of marked states (used for queue-overflow errors and
latency observers).  All of them drive the unified
:func:`repro.engine.explore` loop; the ``strategy`` argument picks the
search order (BFS by default -- shortest counterexamples).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Union

from repro.engine.budget import Budget
from repro.engine.core import explore
from repro.engine.observers import Observer
from repro.engine.result import ExplorationResult
from repro.engine.strategies import SearchStrategy
from repro.acsr.definitions import ClosedSystem
from repro.acsr.terms import ProcRef, Term
from repro.versa.traces import Trace


def deadlock_free(
    system: ClosedSystem,
    *,
    max_states: int = 1_000_000,
    prioritized: bool = True,
    strategy: Union[SearchStrategy, str, None] = None,
) -> bool:
    """Exhaustively check deadlock-freedom of the system."""
    result = explore(
        system,
        strategy=strategy,
        prioritized=prioritized,
        budget=Budget(max_states=max_states),
    )
    return result.deadlock_free


def find_deadlock(
    system: ClosedSystem,
    *,
    max_states: int = 1_000_000,
    prioritized: bool = True,
    strategy: Union[SearchStrategy, str, None] = None,
) -> Optional[Trace]:
    """Shortest trace to a deadlock (under the default BFS), or None when
    the system is deadlock-free."""
    result = explore(
        system,
        strategy=strategy,
        prioritized=prioritized,
        budget=Budget(max_states=max_states),
        stop_at_first_deadlock=True,
    )
    return result.first_deadlock_trace()


def find_reachable(
    system: ClosedSystem,
    predicate: Callable[[Term], bool],
    *,
    max_states: int = 1_000_000,
    prioritized: bool = True,
    strategy: Union[SearchStrategy, str, None] = None,
) -> Optional[Trace]:
    """Shortest trace to a state satisfying ``predicate``, or None."""
    result = explore(
        system,
        strategy=strategy,
        prioritized=prioritized,
        budget=Budget(max_states=max_states),
        target=predicate,
        stop_at_target=True,
    )
    if not result.target_states:
        return None
    return result.trace_to(result.target_states[0])


def reachable_states(
    system: ClosedSystem,
    *,
    max_states: int = 1_000_000,
    prioritized: bool = True,
    strategy: Union[SearchStrategy, str, None] = None,
    observers: Union[Observer, Iterable[Observer], None] = None,
) -> ExplorationResult:
    """Full exploration result (all reachable states)."""
    return explore(
        system,
        strategy=strategy,
        prioritized=prioritized,
        budget=Budget(max_states=max_states),
        observers=observers,
    )


def contains_proc(name: str) -> Callable[[Term], bool]:
    """Predicate factory: does the state contain a reference to process
    ``name``?  Useful for marking error states (e.g. queue overflow)."""

    def predicate(term: Term) -> bool:
        return any(ref.name == name for ref in _proc_refs(term))

    return predicate


def _proc_refs(term: Term) -> List[ProcRef]:
    from repro.acsr.terms import (
        ActionPrefix,
        Choice,
        Close,
        EventPrefix,
        Hide,
        Parallel,
        Restrict,
        Scope,
    )

    refs: List[ProcRef] = []
    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, ProcRef):
            refs.append(node)
        elif isinstance(node, (Choice, Parallel)):
            stack.extend(node.children)
        elif isinstance(node, (Restrict, Close, Hide)):
            stack.append(node.body)
        elif isinstance(node, Scope):
            stack.append(node.body)
        elif isinstance(node, (ActionPrefix, EventPrefix)):
            # Prefix continuations are future behaviour, not part of the
            # current control state; do not descend.
            pass
    return refs
