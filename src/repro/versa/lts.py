"""Explicit labelled transition systems.

An :class:`LTS` is the finite graph produced by a completed exploration
(with ``store_transitions=True``): integer state ids, label objects on
edges, and an initial state.  It supports export to :mod:`networkx` for
graph-algorithmic post-processing and is the input to bisimulation
minimization.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx

from repro.engine.budget import Budget
from repro.engine.core import explore
from repro.engine.result import ExplorationResult
from repro.acsr.printer import format_label, format_term
from repro.acsr.terms import Term


class LTS:
    """A finite labelled transition system with integer state ids."""

    def __init__(
        self,
        num_states: int,
        initial: int,
        edges: Iterable[Tuple[int, Hashable, int]],
        state_names: Optional[Dict[int, str]] = None,
    ) -> None:
        if not (0 <= initial < max(num_states, 1)):
            raise ValueError(f"initial state {initial} out of range")
        self.num_states = num_states
        self.initial = initial
        self.edges: List[Tuple[int, Hashable, int]] = list(edges)
        self.state_names = state_names or {}
        for src, _, dst in self.edges:
            if not (0 <= src < num_states and 0 <= dst < num_states):
                raise ValueError(f"edge ({src},{dst}) out of range")
        # Lazily built adjacency index (state -> outgoing edge list).
        # Edges are never mutated after construction, so it is built at
        # most once and never invalidated.
        self._adjacency: Optional[List[List[Tuple[Hashable, int]]]] = None

    def _index(self) -> List[List[Tuple[Hashable, int]]]:
        if self._adjacency is None:
            adjacency: List[List[Tuple[Hashable, int]]] = [
                [] for _ in range(self.num_states)
            ]
            for src, label, dst in self.edges:
                adjacency[src].append((label, dst))
            self._adjacency = adjacency
        return self._adjacency

    @classmethod
    def from_exploration(cls, result: ExplorationResult) -> "LTS":
        """Build an LTS from a completed exploration that stored its
        transition table."""
        if result.stored_transitions is None:
            raise ValueError(
                "exploration must be run with store_transitions=True"
            )
        from repro.obs.tracer import current_tracer

        with current_tracer().span("versa.lts.build") as span:
            index: Dict[Term, int] = {}
            for state in result.states():
                index[state] = len(index)
            edges: List[Tuple[int, Hashable, int]] = []
            for state, steps in result.stored_transitions.items():
                src = index[state]
                for label, successor in steps:
                    edges.append((src, label, index[successor]))
            names = {
                idx: format_term(state) for state, idx in index.items()
            }
            span.incr("states", len(index)).incr("edges", len(edges))
            return cls(len(index), index[result.initial], edges, names)

    @classmethod
    def explore(
        cls,
        system,
        *,
        max_states: int = 1_000_000,
        prioritized: bool = True,
        strategy=None,
    ) -> "LTS":
        """Explore ``system`` through the engine and build its LTS.

        Convenience for the common export pipeline: one engine run with
        ``store_transitions=True`` (raising on budget exhaustion -- a
        partial graph would be silently misleading) followed by
        :meth:`from_exploration`.
        """
        result = explore(
            system,
            strategy=strategy,
            prioritized=prioritized,
            budget=Budget(max_states=max_states),
            store_transitions=True,
        )
        return cls.from_exploration(result)

    def successors(self, state: int) -> List[Tuple[Hashable, int]]:
        """Outgoing ``(label, target)`` edges of ``state``.

        Served from the cached adjacency index: O(out-degree) per query
        instead of the previous O(E) rescan of ``self.edges``, which
        made any query loop quadratic in the graph size.
        """
        if not (0 <= state < self.num_states):
            raise ValueError(
                f"state {state} out of range [0, {self.num_states})"
            )
        return list(self._index()[state])

    def deadlock_states(self) -> List[int]:
        adjacency = self._index()
        return [s for s in range(self.num_states) if not adjacency[s]]

    def labels(self) -> List[Hashable]:
        """Distinct edge labels."""
        seen: Dict[Hashable, None] = {}
        for _, label, _ in self.edges:
            seen.setdefault(label, None)
        return list(seen)

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a networkx multigraph with ``label`` edge attributes."""
        graph = nx.MultiDiGraph()
        graph.add_nodes_from(range(self.num_states))
        for state, name in self.state_names.items():
            graph.nodes[state]["name"] = name
        for src, label, dst in self.edges:
            graph.add_edge(src, dst, label=format_label(label))
        graph.graph["initial"] = self.initial
        return graph

    def to_dot(self) -> str:
        """Graphviz DOT rendering (labels in VERSA-like syntax)."""
        lines = ["digraph lts {", "  rankdir=LR;"]
        lines.append(
            f'  {self.initial} [shape=doublecircle];'
        )
        deadlocks = set(self.deadlock_states())
        for state in range(self.num_states):
            if state in deadlocks:
                lines.append(f'  {state} [color=red, style=bold];')
        for src, label, dst in self.edges:
            text = format_label(label).replace('"', "'")
            lines.append(f'  {src} -> {dst} [label="{text}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"LTS(states={self.num_states}, edges={len(self.edges)}, "
            f"initial={self.initial})"
        )
