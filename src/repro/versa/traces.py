"""Execution traces (failing scenarios).

A :class:`Trace` is a finite alternating sequence of states and transition
labels starting at the initial state of an exploration.  Traces are what
VERSA reports when it finds a deadlock; :mod:`repro.analysis.raising`
reinterprets them in terms of the source AADL model.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.acsr.events import EventLabel
from repro.acsr.printer import format_label, format_term
from repro.acsr.resources import Action
from repro.acsr.terms import Term


class Step:
    """One transition of a trace: the label taken and the state reached."""

    __slots__ = ("label", "state")

    def __init__(self, label: object, state: Term) -> None:
        self.label = label
        self.state = state

    @property
    def is_timed(self) -> bool:
        """True when the step is a timed action (advances the clock)."""
        return isinstance(self.label, Action)

    @property
    def is_event(self) -> bool:
        return isinstance(self.label, EventLabel)

    def __repr__(self) -> str:
        return f"Step({format_label(self.label)})"


class Trace:
    """A finite execution from the initial state of an exploration.

    ``deadlocked`` records whether the final state is known to have no
    outgoing (prioritized) transition: ``True``/``False`` when the
    producer checked (random walks always do), ``None`` when unknown.
    Length comparisons against a step budget are *not* a substitute --
    a walk can hit a deadlock on exactly its last allowed step.
    """

    __slots__ = ("initial", "steps", "deadlocked")

    def __init__(
        self,
        initial: Term,
        steps: Sequence[Step],
        *,
        deadlocked: Optional[bool] = None,
    ) -> None:
        self.initial = initial
        self.steps = list(steps)
        self.deadlocked = deadlocked

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> Step:
        return self.steps[index]

    @property
    def final_state(self) -> Term:
        """The last state of the trace (the deadlocked state for a
        counterexample)."""
        return self.steps[-1].state if self.steps else self.initial

    @property
    def duration(self) -> int:
        """Number of timed steps, i.e. elapsed quanta along the trace."""
        return sum(1 for step in self.steps if step.is_timed)

    def labels(self) -> List[object]:
        return [step.label for step in self.steps]

    def timed_prefix_times(self) -> List[int]:
        """Clock value *before* each step (timed steps advance the clock)."""
        times: List[int] = []
        clock = 0
        for step in self.steps:
            times.append(clock)
            if step.is_timed:
                clock += 1
        return times

    def format(self, *, show_states: bool = False) -> str:
        """Human-readable rendering: one step per line with clock values."""
        lines: List[str] = []
        clock = 0
        if show_states:
            lines.append(f"  [t={clock}] {format_term(self.initial)}")
        for step in self.steps:
            lines.append(f"  t={clock:<4d} {format_label(step.label)}")
            if step.is_timed:
                clock += 1
            if show_states:
                lines.append(f"  [t={clock}] {format_term(step.state)}")
        if not lines:
            lines.append("  <empty trace>")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Trace(len={len(self.steps)}, duration={self.duration})"

    def __str__(self) -> str:
        return self.format()
