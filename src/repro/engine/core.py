"""The generic exploration loop.

One loop drives every search in the repo: deadlock detection for the
schedulability verdict, full-space enumeration for LTS export and
response-time scans, reachability queries, and bounded random walks.
The loop composes four seams:

* a :class:`~repro.engine.provider.SuccessorProvider` computing (and
  caching) the transition relation;
* a :class:`~repro.engine.strategies.SearchStrategy` owning the
  frontier discipline (BFS / DFS / random walk / future plug-ins);
* a :class:`~repro.engine.budget.Budget` bounding states, transitions
  and wall-clock time with uniform raise-vs-truncate semantics;
* :class:`~repro.engine.observers.Observer` hooks watching the event
  stream (progress, statistics, dumps).

States are hash-consed ACSR terms, so the visited/parent map is an
identity-keyed dict and dedup is pointer equality -- the single most
important performance property of the engine (state dedup dominates
exploration; see DESIGN.md).
"""

from __future__ import annotations

import sys
import time
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.engine.budget import (
    Budget,
    LIMIT_SECONDS,
    LIMIT_STATES,
    LIMIT_TRANSITIONS,
)
from repro.engine.observers import Observer, combine
from repro.engine.provider import SuccessorProvider
from repro.engine.result import ExplorationResult
from repro.engine.stats import EngineStats
from repro.engine.strategies import SearchStrategy, make_strategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acsr.definitions import ClosedSystem
    from repro.acsr.terms import Term
    from repro.engine.reduce import Reduction


def explore(
    system: "ClosedSystem",
    *,
    strategy: Union[SearchStrategy, str, None] = None,
    prioritized: bool = True,
    budget: Optional[Budget] = None,
    store_transitions: bool = False,
    stop_at_first_deadlock: bool = False,
    target: Optional[Callable[["Term"], bool]] = None,
    stop_at_target: bool = False,
    observers: Union[Observer, Iterable[Observer], None] = None,
    provider: Optional[SuccessorProvider] = None,
    reduction: Optional["Reduction"] = None,
) -> ExplorationResult:
    """Explore the state space of ``system`` from its root.

    Args:
        system: the closed ACSR system to explore.
        strategy: a :class:`SearchStrategy` instance or one of
            ``"bfs"`` (default), ``"dfs"``, ``"random-walk"``.
        prioritized: explore the prioritized transition relation (the
            paper's semantics) or, for ablation, the unprioritized one.
            Ignored when an explicit ``provider`` is given.
        budget: state/transition/time bounds; defaults to
            ``Budget()`` (1M states, raise on exhaustion).
        store_transitions: keep the full transition table (needed for
            LTS export and minimization; costs memory).
        stop_at_first_deadlock: return as soon as a deadlock is found;
            under BFS this yields a shortest counterexample.
        target: optional predicate on states; matches are collected in
            ``target_states``.
        stop_at_target: stop as soon as the predicate matches.
        observers: an observer or sequence of observers to notify.
        reduction: optional :class:`~repro.engine.reduce.Reduction`
            pipeline.  States are canonicalized to orbit representatives
            before the visited-set check and step sets pass through the
            ample filter; a nonempty step set never becomes empty, so
            deadlock detection and UNKNOWN-on-truncation semantics are
            preserved exactly.

    Returns:
        An :class:`~repro.engine.result.ExplorationResult` whose
        ``stats`` attribute carries the run's :class:`EngineStats`.

    When a recording tracer is installed (:mod:`repro.obs`), the run is
    wrapped in an ``engine.explore`` span whose annotations come from
    the observer event stream itself -- one
    :class:`~repro.obs.bridge.SpanObserver` joins the observer list, so
    tracing adds no second callback path and the disabled tracer costs
    one attribute read per call.
    """
    from repro.obs.tracer import current_tracer

    tracer = current_tracer()
    if tracer.enabled:
        from repro.obs.bridge import SpanObserver

        with tracer.span("engine.explore") as span:
            result = _explore(
                system,
                strategy=strategy,
                prioritized=prioritized,
                budget=budget,
                store_transitions=store_transitions,
                stop_at_first_deadlock=stop_at_first_deadlock,
                target=target,
                stop_at_target=stop_at_target,
                observers=[combine(observers), SpanObserver(span)],
                provider=provider,
                reduction=reduction,
            )
            if reduction is not None:
                _trace_reduction(tracer, result.stats)
            return result
    return _explore(
        system,
        strategy=strategy,
        prioritized=prioritized,
        budget=budget,
        store_transitions=store_transitions,
        stop_at_first_deadlock=stop_at_first_deadlock,
        target=target,
        stop_at_target=stop_at_target,
        observers=observers,
        provider=provider,
        reduction=reduction,
    )


def _trace_reduction(tracer, stats: EngineStats) -> None:
    """Emit per-pass reduction spans summarizing this run's counters."""
    if stats.states_canonicalized or stats.orbits_merged:
        with tracer.span("reduce.canonicalize") as span:
            span.incr("states_canonicalized", stats.states_canonicalized)
            span.incr("orbits_merged", stats.orbits_merged)
    if stats.por_pruned:
        with tracer.span("reduce.ample") as span:
            span.incr("por_pruned", stats.por_pruned)


def _explore(
    system: "ClosedSystem",
    *,
    strategy: Union[SearchStrategy, str, None],
    prioritized: bool,
    budget: Optional[Budget],
    store_transitions: bool,
    stop_at_first_deadlock: bool,
    target: Optional[Callable[["Term"], bool]],
    stop_at_target: bool,
    observers: Union[Observer, Iterable[Observer], None],
    provider: Optional[SuccessorProvider],
    reduction: Optional["Reduction"] = None,
) -> ExplorationResult:
    search = make_strategy(strategy)
    if provider is None:
        provider = SuccessorProvider(system, prioritized=prioritized)
    if budget is None:
        budget = Budget()
    observer = combine(observers)

    start = time.perf_counter()
    hits0, misses0, evictions0 = provider.cache_counters()
    reduction0 = reduction.counters() if reduction is not None else {}

    initial = provider.root
    if reduction is not None:
        initial = reduction.canonicalize(initial)
    parent: Dict["Term", Tuple[Optional["Term"], Optional[object]]] = {
        initial: (None, None)
    }
    transitions: Optional[
        Dict["Term", Tuple[Tuple[object, "Term"], ...]]
    ] = ({} if store_transitions else None)
    deadlocks: List["Term"] = []
    deadlock_seen: Dict["Term", None] = {}
    targets: List["Term"] = []
    num_transitions = 0
    expanded = 0
    frontier_peak = 1
    stopped_early = False
    limit_hit: Optional[str] = None

    search.reset(initial)
    if observer is not None:
        observer.on_start(initial)
    if target is not None and target(initial):
        targets.append(initial)
        if observer is not None:
            observer.on_target(initial)
        if stop_at_target:
            search.clear()
            stopped_early = True

    while len(search):
        if budget.max_seconds is not None and (
            time.perf_counter() - start > budget.max_seconds
        ):
            if observer is not None:
                observer.on_limit(LIMIT_SECONDS, len(parent))
            if budget.raises:
                raise budget.limit_error(
                    f"time budget {budget.max_seconds}s exhausted after "
                    f"{len(parent)} states",
                    states_explored=len(parent),
                )
            limit_hit = LIMIT_SECONDS
            stopped_early = True
            break

        state = search.pop()
        steps = provider.successors(state)
        if reduction is not None and steps:
            # Ample filter first (it inspects the genuine labels), then
            # map each successor to its orbit representative so the
            # visited map stores one state per equivalence class.  A
            # nonempty step set stays nonempty, so the deadlock check
            # below still sees exactly the states with no transitions.
            steps = reduction.filter(state, steps)
            steps = tuple(
                (label, reduction.canonicalize(successor))
                for label, successor in steps
            )
        expanded += 1
        if observer is not None:
            observer.on_state(state, len(parent))
        if transitions is not None:
            transitions[state] = steps

        if not steps:
            if state not in deadlock_seen:
                deadlock_seen[state] = None
                deadlocks.append(state)
            if observer is not None:
                observer.on_deadlock(state)
            if stop_at_first_deadlock:
                stopped_early = True
                break
            continue

        num_transitions += len(steps)
        if (
            budget.max_transitions is not None
            and num_transitions > budget.max_transitions
        ):
            if observer is not None:
                observer.on_limit(LIMIT_TRANSITIONS, len(parent))
            if budget.raises:
                raise budget.limit_error(
                    f"transition budget {budget.max_transitions} exhausted "
                    f"after {len(parent)} states",
                    states_explored=len(parent),
                )
            limit_hit = LIMIT_TRANSITIONS
            stopped_early = True
            break

        new_flags: List[bool] = []
        halt = False
        for label, successor in steps:
            is_new = successor not in parent
            if is_new:
                if (
                    budget.max_states is not None
                    and len(parent) >= budget.max_states
                ):
                    if observer is not None:
                        observer.on_limit(LIMIT_STATES, len(parent))
                    if budget.raises:
                        raise budget.limit_error(
                            f"state budget {budget.max_states} exhausted",
                            states_explored=len(parent),
                        )
                    limit_hit = LIMIT_STATES
                    stopped_early = True
                    halt = True
                    break
                parent[successor] = (state, label)
                if target is not None and target(successor):
                    targets.append(successor)
                    if observer is not None:
                        observer.on_target(successor)
                    if stop_at_target:
                        stopped_early = True
                        halt = True
            new_flags.append(is_new)
            if observer is not None:
                observer.on_transition(state, label, successor, is_new)
            if halt:
                break
        if halt:
            search.clear()
            break
        search.extend(state, steps, new_flags)
        frontier = len(search)
        if frontier > frontier_peak:
            frontier_peak = frontier

    elapsed = time.perf_counter() - start
    hits1, misses1, evictions1 = provider.cache_counters()
    reduction1 = reduction.counters() if reduction is not None else {}
    stats = EngineStats(
        strategy=search.name,
        states=len(parent),
        transitions=num_transitions,
        expanded=expanded,
        elapsed=elapsed,
        wall_elapsed=elapsed,
        frontier_peak=frontier_peak,
        parent_map_bytes=sys.getsizeof(parent),
        cache_hits=hits1 - hits0,
        cache_misses=misses1 - misses0,
        cache_evictions=evictions1 - evictions0,
        states_canonicalized=(
            reduction1.get("states_canonicalized", 0)
            - reduction0.get("states_canonicalized", 0)
        ),
        orbits_merged=(
            reduction1.get("orbits_merged", 0)
            - reduction0.get("orbits_merged", 0)
        ),
        por_pruned=(
            reduction1.get("por_pruned", 0) - reduction0.get("por_pruned", 0)
        ),
        limit_hit=limit_hit,
    )
    result = ExplorationResult(
        initial,
        num_states=len(parent),
        num_transitions=num_transitions,
        deadlock_states=deadlocks,
        target_states=targets,
        completed=search.exhaustive and not stopped_early and not len(search),
        elapsed=elapsed,
        parent=parent,
        transitions=transitions,
        stats=stats,
        limit_hit=limit_hit,
    )
    if observer is not None:
        observer.on_finish(result)
    return result
