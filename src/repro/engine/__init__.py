"""Unified exploration engine for the versa/analysis stack.

This package is the single exploration substrate of the repo: the
schedulability verdict (deadlock detection), LTS export, reachability
queries, response-time scans and random walks all drive the one generic
:func:`~repro.engine.core.explore` loop, composed from four pluggable
layers:

* :class:`~repro.engine.provider.SuccessorProvider` -- the transition
  relation, with explicit, stat-tracking
  :class:`~repro.engine.cache.TransitionCache` objects behind it;
* :class:`~repro.engine.strategies.SearchStrategy` -- frontier
  discipline (:class:`BreadthFirst`, :class:`DepthFirst`,
  :class:`RandomWalk`, or your own);
* :class:`~repro.engine.budget.Budget` -- state / transition / time
  bounds with uniform raise-vs-truncate semantics;
* :class:`~repro.engine.observers.Observer` -- instrumentation hooks
  over the exploration event stream, summarized per run in an
  :class:`~repro.engine.stats.EngineStats` snapshot;
* :class:`~repro.engine.reduce.Reduction` -- optional state-space
  reduction passes (symmetry canonicalization, partial-order ample
  filtering) applied between the provider and the visited set; see
  ``docs/reduction.md``.

See ``docs/engine.md`` for the architecture and how to add a custom
search strategy.  ``repro.versa.Explorer`` remains as a thin
compatibility shim over this engine.
"""

from repro.engine.budget import (
    Budget,
    LIMIT_SECONDS,
    LIMIT_STATES,
    LIMIT_TRANSITIONS,
)
from repro.engine.cache import TransitionCache
from repro.engine.core import explore
from repro.engine.observers import (
    CompositeObserver,
    Observer,
    ProgressObserver,
    RecordingObserver,
)
from repro.engine.provider import SuccessorProvider
from repro.engine.reduce import (
    PartialOrderReduction,
    Reduction,
    ReductionPass,
    SymmetryReduction,
    build_reduction,
    detect_replica_classes,
    parse_reduction_spec,
    reduction_token,
)
from repro.engine.result import (
    ExplorationResult,
    IncompleteExplorationWarning,
)
from repro.engine.stats import EngineStats
from repro.engine.strategies import (
    BreadthFirst,
    DepthFirst,
    RandomWalk,
    SearchStrategy,
    make_strategy,
)

__all__ = [
    "Budget",
    "BreadthFirst",
    "CompositeObserver",
    "DepthFirst",
    "EngineStats",
    "ExplorationResult",
    "IncompleteExplorationWarning",
    "LIMIT_SECONDS",
    "LIMIT_STATES",
    "LIMIT_TRANSITIONS",
    "Observer",
    "PartialOrderReduction",
    "ProgressObserver",
    "RandomWalk",
    "RecordingObserver",
    "Reduction",
    "ReductionPass",
    "SearchStrategy",
    "SuccessorProvider",
    "SymmetryReduction",
    "TransitionCache",
    "build_reduction",
    "detect_replica_classes",
    "explore",
    "make_strategy",
    "parse_reduction_spec",
    "reduction_token",
]
