"""Pluggable search strategies for the exploration engine.

A :class:`SearchStrategy` owns the frontier discipline of the generic
:func:`~repro.engine.core.explore` loop: which discovered state is
expanded next, and which successors of an expansion enter the frontier.
Everything else -- dedup against the visited set, budgets, observers,
deadlock/target bookkeeping -- lives in the loop, so a new search order
(priority-guided, sharded, parallel) is a strategy plug-in rather than
a rewrite.

Built in:

* :class:`BreadthFirst` -- FIFO frontier; the first deadlock found lies
  on a *shortest* path, which keeps raised AADL counterexamples minimal
  and readable.  This is the paper's (and the ``Explorer`` shim's)
  default.
* :class:`DepthFirst` -- LIFO frontier; same discovered set on a full
  exploration, much smaller frontier on deep spaces; counterexamples
  are not minimal.
* :class:`RandomWalk` -- a bounded single-path walk (folds the old
  ``versa.walk`` driver into the engine): at each expansion one enabled
  transition is chosen by a policy; visited states may be re-entered.
  One walk is *one* behaviour -- only exhaustive strategies prove
  deadlock-freedom, so ``exhaustive`` is False and results always read
  as incomplete.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError

#: A walk policy picks one transition index among the enabled ones.
Policy = Callable[[Sequence[Tuple[object, object]], object], int]


class SearchStrategy:
    """Frontier discipline of the generic explore loop.

    Subclasses implement :meth:`reset`, :meth:`pop`, :meth:`extend` and
    ``__len__``.  ``exhaustive`` declares whether draining the frontier
    means the full reachable space was covered (True for BFS/DFS, False
    for sampling strategies like the random walk); the engine uses it to
    compute ``ExplorationResult.completed``.
    """

    #: strategy name used in stats and CLI output
    name: str = "abstract"
    #: does an empty frontier imply full coverage?
    exhaustive: bool = True

    def reset(self, initial) -> None:
        """Start a fresh search from ``initial``."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Current frontier size (0 ends the search)."""
        raise NotImplementedError

    def pop(self):
        """Remove and return the next state to expand."""
        raise NotImplementedError

    def extend(
        self,
        state,
        steps: Sequence[Tuple[object, object]],
        new_flags: Sequence[bool],
    ) -> None:
        """Admit successors of an expansion into the frontier.

        ``steps`` are the ``(label, successor)`` pairs of ``state``;
        ``new_flags[i]`` is True when ``steps[i]`` discovered its
        successor for the first time.
        """
        raise NotImplementedError

    def clear(self) -> None:
        """Drop the frontier (used when the engine stops a search early)."""
        raise NotImplementedError


class BreadthFirst(SearchStrategy):
    """FIFO frontier: level order, shortest counterexamples."""

    name = "bfs"
    exhaustive = True

    def __init__(self) -> None:
        self._queue: deque = deque()

    def reset(self, initial) -> None:
        self._queue = deque((initial,))

    def __len__(self) -> int:
        return len(self._queue)

    def pop(self):
        return self._queue.popleft()

    def extend(self, state, steps, new_flags) -> None:
        queue = self._queue
        for (label, successor), is_new in zip(steps, new_flags):
            if is_new:
                queue.append(successor)

    def clear(self) -> None:
        self._queue.clear()


class DepthFirst(SearchStrategy):
    """LIFO frontier: dives deep, small frontier, non-minimal traces."""

    name = "dfs"
    exhaustive = True

    def __init__(self) -> None:
        self._stack: List = []

    def reset(self, initial) -> None:
        self._stack = [initial]

    def __len__(self) -> int:
        return len(self._stack)

    def pop(self):
        return self._stack.pop()

    def extend(self, state, steps, new_flags) -> None:
        stack = self._stack
        for (label, successor), is_new in zip(steps, new_flags):
            if is_new:
                stack.append(successor)

    def clear(self) -> None:
        self._stack.clear()


def uniform_choice(steps, rng) -> int:
    """Default walk policy: choose uniformly among enabled transitions."""
    return int(rng.integers(len(steps)))


class RandomWalk(SearchStrategy):
    """Bounded single-path walk driven by a transition-choice policy.

    Args:
        max_steps: number of transitions to take (the walk also ends at
            a deadlock).
        seed: seed for the numpy generator handed to the policy (an
            int, a ``numpy.random.SeedSequence`` -- e.g. one spawned
            per child by ``versa.multi_walk`` -- or None).
        policy: ``policy(steps, rng) -> index`` choosing one enabled
            transition; defaults to uniform.

    After a run, :attr:`path` holds the ``(label, state)`` sequence
    actually taken -- including revisits, which the engine's parent map
    cannot represent.
    """

    name = "random-walk"
    exhaustive = False

    def __init__(
        self,
        *,
        max_steps: int = 100,
        seed: Optional[object] = None,
        policy: Optional[Policy] = None,
    ) -> None:
        if max_steps < 0:
            raise AnalysisError("max_steps must be non-negative")
        import numpy as np

        self.max_steps = max_steps
        self.policy = policy or uniform_choice
        self._rng = np.random.default_rng(seed)
        self._slot: List = []
        self.remaining = max_steps
        #: the (label, state) steps actually taken, in order
        self.path: List[Tuple[object, object]] = []

    def reset(self, initial) -> None:
        self._slot = [initial]
        self.remaining = self.max_steps
        self.path = []

    def __len__(self) -> int:
        return len(self._slot)

    def pop(self):
        return self._slot.pop()

    def extend(self, state, steps, new_flags) -> None:
        if self.remaining <= 0 or not steps:
            return
        index = self.policy(steps, self._rng)
        if not (0 <= index < len(steps)):
            raise AnalysisError(
                f"walk policy returned out-of-range index {index}"
            )
        label, successor = steps[index]
        self.path.append((label, successor))
        self.remaining -= 1
        self._slot = [successor]

    def clear(self) -> None:
        self._slot.clear()


_STRATEGY_FACTORIES = {
    "bfs": BreadthFirst,
    "dfs": DepthFirst,
    "random-walk": RandomWalk,
}


def make_strategy(spec) -> SearchStrategy:
    """Resolve a strategy spec: an instance, a name, or None (BFS)."""
    if spec is None:
        return BreadthFirst()
    if isinstance(spec, SearchStrategy):
        return spec
    if isinstance(spec, str):
        try:
            return _STRATEGY_FACTORIES[spec]()
        except KeyError:
            raise ValueError(
                f"unknown search strategy {spec!r}; "
                f"choose from {sorted(_STRATEGY_FACTORIES)}"
            ) from None
    raise TypeError(f"not a search strategy: {spec!r}")
