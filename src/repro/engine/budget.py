"""Exploration budgets with uniform raise-vs-truncate semantics.

Every driver of the exploration core (schedulability verdicts, LTS
export, response-time scans, the CLI) bounds its search somehow; before
the engine existed each caller re-implemented its own mix of
``max_states`` / ``max_seconds`` checks with subtly different behaviour
at the boundary.  :class:`Budget` centralizes the three limits (states,
transitions, wall-clock seconds) and the single policy switch:

* ``on_limit="raise"`` -- exceeding any limit raises
  :class:`~repro.errors.ExplorationLimitError` (the historical
  ``Explorer`` default, right for tests and scripted pipelines);
* ``on_limit="truncate"`` -- the search stops and returns a result with
  ``completed=False`` and ``limit_hit`` naming the exhausted budget
  (right for interactive use and the UNKNOWN verdict).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExplorationLimitError

RAISE = "raise"
TRUNCATE = "truncate"

#: Budget dimensions, used as ``ExplorationResult.limit_hit`` values and
#: passed to ``Observer.on_limit``.
LIMIT_STATES = "states"
LIMIT_TRANSITIONS = "transitions"
LIMIT_SECONDS = "seconds"


class Budget:
    """Bounds for one exploration run.

    Args:
        max_states: maximum number of *discovered* states (including the
            initial one); ``None`` for unlimited.
        max_transitions: maximum number of transitions enumerated;
            ``None`` for unlimited.
        max_seconds: wall-clock bound; ``None`` for unlimited.
        on_limit: ``"raise"`` or ``"truncate"`` (see module docstring).
    """

    __slots__ = ("max_states", "max_transitions", "max_seconds", "on_limit")

    def __init__(
        self,
        *,
        max_states: Optional[int] = 1_000_000,
        max_transitions: Optional[int] = None,
        max_seconds: Optional[float] = None,
        on_limit: str = RAISE,
    ) -> None:
        if on_limit not in (RAISE, TRUNCATE):
            raise ValueError("on_limit must be 'raise' or 'truncate'")
        if max_states is not None and max_states < 1:
            raise ValueError(f"max_states must be positive: {max_states}")
        if max_transitions is not None and max_transitions < 0:
            raise ValueError(
                f"max_transitions must be non-negative: {max_transitions}"
            )
        self.max_states = max_states
        self.max_transitions = max_transitions
        self.max_seconds = max_seconds
        self.on_limit = on_limit

    @property
    def raises(self) -> bool:
        return self.on_limit == RAISE

    def limit_error(
        self, message: str, *, states_explored: int
    ) -> ExplorationLimitError:
        """The error raised when a limit is hit under the raise policy."""
        return ExplorationLimitError(message, states_explored=states_explored)

    def __repr__(self) -> str:
        parts = []
        if self.max_states is not None:
            parts.append(f"states={self.max_states}")
        if self.max_transitions is not None:
            parts.append(f"transitions={self.max_transitions}")
        if self.max_seconds is not None:
            parts.append(f"seconds={self.max_seconds}")
        parts.append(self.on_limit)
        return f"Budget({', '.join(parts)})"
