"""Exploration results: the verdict-bearing output of the engine.

:class:`ExplorationResult` is the one result type shared by every
search strategy and every driver (``versa.Explorer`` compatibility
shim, queries, LTS export, schedulability analysis, CLI).  Besides the
historical surface (states, transitions, deadlocks, traces) it carries
the :class:`~repro.engine.stats.EngineStats` snapshot of the run and an
explicit ``limit_hit`` marker naming the exhausted budget, if any.
"""

from __future__ import annotations

import warnings
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acsr.terms import Term
    from repro.engine.stats import EngineStats
    from repro.versa.traces import Trace


class IncompleteExplorationWarning(UserWarning):
    """A truncated exploration is being read as if it were exhaustive.

    Emitted when ``deadlock_free`` is consulted on a result whose search
    stopped at a budget without finding a deadlock: absence of evidence
    from a partial search is not a deadlock-freedom proof.
    """


class ExplorationResult:
    """Outcome of a state-space exploration.

    Attributes:
        initial: the root state.
        num_states: states discovered (including the initial one).
        num_transitions: transitions traversed.
        deadlock_states: states with no outgoing (prioritized) transition.
        target_states: states satisfying the optional target predicate.
        completed: True when the full reachable space was explored (i.e.
            the search strategy is exhaustive and was not stopped early
            by a budget, a first-deadlock request, or a target hit).
        elapsed: wall-clock seconds.
        stats: the :class:`~repro.engine.stats.EngineStats` snapshot of
            the run (``None`` only for hand-built results).
        limit_hit: which budget stopped the run (``"states"``,
            ``"transitions"``, ``"seconds"``) or ``None``.
    """

    def __init__(
        self,
        initial: "Term",
        *,
        num_states: int,
        num_transitions: int,
        deadlock_states: List["Term"],
        target_states: List["Term"],
        completed: bool,
        elapsed: float,
        parent: Dict["Term", Tuple[Optional["Term"], Optional[object]]],
        transitions: Optional[
            Dict["Term", Tuple[Tuple[object, "Term"], ...]]
        ],
        stats: Optional["EngineStats"] = None,
        limit_hit: Optional[str] = None,
    ) -> None:
        self.initial = initial
        self.num_states = num_states
        self.num_transitions = num_transitions
        self.deadlock_states = deadlock_states
        self.target_states = target_states
        self.completed = completed
        self.elapsed = elapsed
        self.stats = stats
        self.limit_hit = limit_hit
        self._parent = parent
        self._transitions = transitions

    @property
    def deadlock_free(self) -> bool:
        """True when the *explored* space contains no deadlock.

        Deadlock-freedom of the full system is only established when
        :attr:`completed` is True.  Reading this property on a
        truncated, deadlock-less run emits
        :class:`~repro.errors.IncompleteExplorationWarning`, because a
        budget-capped search that found nothing proves nothing -- the
        schedulability driver maps that case to the UNKNOWN verdict
        instead.  (A truncated run that *did* find a deadlock is still
        a definitive counterexample, so no warning fires.)
        """
        if not self.deadlock_states and not self.completed:
            warnings.warn(
                "exploration was truncated before covering the reachable "
                "space (limit_hit={!r}); the absence of deadlocks is not "
                "a deadlock-freedom proof".format(self.limit_hit),
                IncompleteExplorationWarning,
                stacklevel=2,
            )
        return not self.deadlock_states

    def trace_to(self, state: "Term") -> "Trace":
        """Shortest trace (along the search tree) from the initial state."""
        from repro.versa.traces import Step, Trace

        if state not in self._parent:
            raise KeyError(f"state was not discovered: {state!r}")
        steps: List[Step] = []
        current: Optional["Term"] = state
        while current is not None:
            parent, label = self._parent[current]
            if parent is None:
                break
            steps.append(Step(label, current))
            current = parent
        steps.reverse()
        return Trace(self.initial, steps)

    def first_deadlock_trace(self) -> Optional["Trace"]:
        """Trace to the first deadlock found, if any (shortest under BFS)."""
        if not self.deadlock_states:
            return None
        return self.trace_to(self.deadlock_states[0])

    def transitions_of(
        self, state: "Term"
    ) -> Tuple[Tuple[object, "Term"], ...]:
        """Outgoing transitions of an explored state.

        Requires the exploration to have been run with
        ``store_transitions=True``; raises :class:`ValueError` otherwise.
        Raises :class:`KeyError` with a message distinguishing a state
        that was never discovered from one that was discovered but not
        expanded before the search stopped.
        """
        if self._transitions is None:
            raise ValueError(
                "exploration did not store transitions; "
                "pass store_transitions=True"
            )
        try:
            return self._transitions[state]
        except KeyError:
            pass
        if state not in self._parent:
            raise KeyError(
                f"state was never discovered by this exploration: {state!r}"
            )
        raise KeyError(
            f"state was discovered but not expanded before the search "
            f"stopped (completed={self.completed}, "
            f"limit_hit={self.limit_hit!r}); its transitions were not "
            f"stored: {state!r}"
        )

    @property
    def stored_transitions(
        self,
    ) -> Optional[Dict["Term", Tuple[Tuple[object, "Term"], ...]]]:
        return self._transitions

    def states(self) -> List["Term"]:
        """All discovered states, in discovery order."""
        return list(self._parent)

    def __repr__(self) -> str:
        return (
            f"ExplorationResult(states={self.num_states}, "
            f"transitions={self.num_transitions}, "
            f"deadlocks={len(self.deadlock_states)}, "
            f"completed={self.completed})"
        )
