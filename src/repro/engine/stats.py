"""Engine statistics: the observable health of an exploration run.

Mature model-checking backends expose state-space statistics (states per
second, frontier depth, cache effectiveness) because they are the only
way to reason about why an analysis is slow or large.  The engine
captures them in one :class:`EngineStats` snapshot attached to every
:class:`~repro.engine.result.ExplorationResult` and rendered by the CLI
``--stats`` flag and the scaling benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional


class EngineStats:
    """Snapshot of one exploration run.

    Attributes:
        strategy: name of the search strategy used (``"aggregate"`` for
            a merged multi-run snapshot, see :meth:`aggregate`).
        states: distinct states discovered (including the initial one).
        transitions: transitions enumerated.
        expanded: states whose successor set was computed (a random walk
            may expand fewer -- or, revisiting, more -- than it
            discovers).
        elapsed: engine-loop seconds.  Additive under :meth:`aggregate`,
            which makes it a *CPU-time sum* for a parallel batch, not a
            wall-clock reading -- see ``wall_elapsed``.
        wall_elapsed: honest wall-clock seconds.  Equals ``elapsed`` for
            a single run; for an aggregate the pool sets it from a real
            wall-clock measurement (summing per-worker ``elapsed``
            across parallel workers would overstate the wall time by up
            to the worker count).
        states_per_second: discovery throughput, computed from
            ``wall_elapsed`` (0.0 for instant runs).
        frontier_peak: largest frontier size observed.
        parent_map_bytes: memory footprint of the parent (BFS-tree) map
            itself, excluding the interned terms it references.
        cache_hits / cache_misses / cache_evictions: aggregated over the
            provider's step, prioritization and semantics caches for
            the duration of this run only.
        verdict_cache_hits / verdict_cache_misses: persistent
            verdict-cache lookups (:mod:`repro.batch`); a hit means a
            whole analysis was skipped, so ``states``/``elapsed`` only
            account for the misses.  Zero outside batch runs.
        tier_attempts / tier_hits: portfolio-tier counters
            (:mod:`repro.portfolio`): how often each analytic tier was
            consulted and how often it decided the verdict, keyed by
            tier name.  A hit means the state space was never touched.
            Empty outside portfolio runs.
        tier_escalations: verdicts that fell through every analytic
            tier into exhaustive exploration.
        states_canonicalized: distinct states mapped to their orbit
            representative by symmetry reduction
            (:mod:`repro.engine.reduce`).  Zero outside reduced runs.
        orbits_merged: canonicalizations that actually changed the
            state -- each one is a visited-set entry saved by merging
            an orbit.
        por_pruned: transitions dropped by the partial-order (ample)
            filter.
        hier_partitions_checked: virtual-processor partitions checked
            against their BDR interface (:mod:`repro.hier`).  Zero
            outside hierarchical runs.
        hier_interface_hits: partitions the analytic demand-vs-supply
            check settled (no flattened simulation needed).
        hier_sim_escalations: partitions that fell through to the
            supply-aware flattened simulation.
        modal_transitions_checked: mode transitions whose transient was
            analyzed (:mod:`repro.modal`).  Zero outside modal runs.
        modal_transient_escalations: transitions the analytic union
            test could not settle, escalated to switch-phasing
            transient simulation.
        limit_hit: which budget stopped the run (``"states"``,
            ``"transitions"``, ``"seconds"``) or ``None``.
    """

    __slots__ = (
        "strategy",
        "states",
        "transitions",
        "expanded",
        "elapsed",
        "wall_elapsed",
        "frontier_peak",
        "parent_map_bytes",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "verdict_cache_hits",
        "verdict_cache_misses",
        "tier_attempts",
        "tier_hits",
        "tier_escalations",
        "states_canonicalized",
        "orbits_merged",
        "por_pruned",
        "hier_partitions_checked",
        "hier_interface_hits",
        "hier_sim_escalations",
        "modal_transitions_checked",
        "modal_transient_escalations",
        "limit_hit",
    )

    def __init__(
        self,
        *,
        strategy: str,
        states: int,
        transitions: int,
        expanded: int,
        elapsed: float,
        frontier_peak: int,
        parent_map_bytes: int,
        cache_hits: int,
        cache_misses: int,
        cache_evictions: int,
        limit_hit: Optional[str],
        verdict_cache_hits: int = 0,
        verdict_cache_misses: int = 0,
        wall_elapsed: Optional[float] = None,
        tier_attempts: Optional[Dict[str, int]] = None,
        tier_hits: Optional[Dict[str, int]] = None,
        tier_escalations: int = 0,
        states_canonicalized: int = 0,
        orbits_merged: int = 0,
        por_pruned: int = 0,
        hier_partitions_checked: int = 0,
        hier_interface_hits: int = 0,
        hier_sim_escalations: int = 0,
        modal_transitions_checked: int = 0,
        modal_transient_escalations: int = 0,
    ) -> None:
        self.strategy = strategy
        self.states = states
        self.transitions = transitions
        self.expanded = expanded
        self.elapsed = elapsed
        #: None is only a constructor convenience: a single run's wall
        #: clock IS its loop time.
        self.wall_elapsed = elapsed if wall_elapsed is None else wall_elapsed
        self.frontier_peak = frontier_peak
        self.parent_map_bytes = parent_map_bytes
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self.cache_evictions = cache_evictions
        self.verdict_cache_hits = verdict_cache_hits
        self.verdict_cache_misses = verdict_cache_misses
        self.tier_attempts = dict(tier_attempts or {})
        self.tier_hits = dict(tier_hits or {})
        self.tier_escalations = tier_escalations
        self.states_canonicalized = states_canonicalized
        self.orbits_merged = orbits_merged
        self.por_pruned = por_pruned
        self.hier_partitions_checked = hier_partitions_checked
        self.hier_interface_hits = hier_interface_hits
        self.hier_sim_escalations = hier_sim_escalations
        self.modal_transitions_checked = modal_transitions_checked
        self.modal_transient_escalations = modal_transient_escalations
        self.limit_hit = limit_hit

    @property
    def states_per_second(self) -> float:
        """Throughput over the honest denominator: wall clock, never the
        per-worker CPU sum (which would understate a parallel batch)."""
        return (
            self.states / self.wall_elapsed if self.wall_elapsed > 0 else 0.0
        )

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def verdict_cache_hit_rate(self) -> float:
        total = self.verdict_cache_hits + self.verdict_cache_misses
        return self.verdict_cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "states": self.states,
            "transitions": self.transitions,
            "expanded": self.expanded,
            "elapsed": self.elapsed,
            "wall_elapsed": self.wall_elapsed,
            "states_per_second": self.states_per_second,
            "frontier_peak": self.frontier_peak,
            "parent_map_bytes": self.parent_map_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": self.cache_hit_rate,
            "verdict_cache_hits": self.verdict_cache_hits,
            "verdict_cache_misses": self.verdict_cache_misses,
            "tier_attempts": dict(self.tier_attempts),
            "tier_hits": dict(self.tier_hits),
            "tier_escalations": self.tier_escalations,
            "states_canonicalized": self.states_canonicalized,
            "orbits_merged": self.orbits_merged,
            "por_pruned": self.por_pruned,
            "hier_partitions_checked": self.hier_partitions_checked,
            "hier_interface_hits": self.hier_interface_hits,
            "hier_sim_escalations": self.hier_sim_escalations,
            "modal_transitions_checked": self.modal_transitions_checked,
            "modal_transient_escalations": self.modal_transient_escalations,
            "limit_hit": self.limit_hit,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EngineStats":
        """Rebuild a snapshot serialized with :meth:`as_dict` (derived
        rate fields are recomputed, unknown keys ignored)."""
        return cls(
            strategy=data.get("strategy", "unknown"),
            states=data.get("states", 0),
            transitions=data.get("transitions", 0),
            expanded=data.get("expanded", 0),
            elapsed=data.get("elapsed", 0.0),
            wall_elapsed=data.get("wall_elapsed"),
            frontier_peak=data.get("frontier_peak", 0),
            parent_map_bytes=data.get("parent_map_bytes", 0),
            cache_hits=data.get("cache_hits", 0),
            cache_misses=data.get("cache_misses", 0),
            cache_evictions=data.get("cache_evictions", 0),
            verdict_cache_hits=data.get("verdict_cache_hits", 0),
            verdict_cache_misses=data.get("verdict_cache_misses", 0),
            tier_attempts=data.get("tier_attempts"),
            tier_hits=data.get("tier_hits"),
            tier_escalations=data.get("tier_escalations", 0),
            states_canonicalized=data.get("states_canonicalized", 0),
            orbits_merged=data.get("orbits_merged", 0),
            por_pruned=data.get("por_pruned", 0),
            hier_partitions_checked=data.get("hier_partitions_checked", 0),
            hier_interface_hits=data.get("hier_interface_hits", 0),
            hier_sim_escalations=data.get("hier_sim_escalations", 0),
            modal_transitions_checked=data.get(
                "modal_transitions_checked", 0
            ),
            modal_transient_escalations=data.get(
                "modal_transient_escalations", 0
            ),
            limit_hit=data.get("limit_hit"),
        )

    @classmethod
    def aggregate(
        cls,
        snapshots: Iterable["EngineStats"],
        *,
        strategy: str = "aggregate",
        wall_elapsed: Optional[float] = None,
    ) -> "EngineStats":
        """Merge several run snapshots into one additive aggregate.

        Counters sum; ``frontier_peak`` takes the maximum; ``limit_hit``
        is dropped (per-run budgets do not compose into one).  This is
        how :mod:`repro.batch` folds per-worker statistics into one
        campaign-level snapshot.

        ``elapsed`` stays the additive CPU-time sum.  ``wall_elapsed``
        must come from a real wall-clock measurement when the runs
        overlapped in time -- the pool passes its own ``perf_counter``
        delta here (or assigns the attribute afterwards); without one,
        the sum is used, which is only honest for sequential runs.
        Summing per-worker loop times and calling it wall clock is
        exactly the bug this field exists to fix: after ``batch run
        --jobs N`` it inflated ``elapsed:`` and deflated
        ``states_per_second`` by up to a factor of N.
        """
        total = cls(
            strategy=strategy,
            states=0,
            transitions=0,
            expanded=0,
            elapsed=0.0,
            wall_elapsed=0.0,
            frontier_peak=0,
            parent_map_bytes=0,
            cache_hits=0,
            cache_misses=0,
            cache_evictions=0,
            limit_hit=None,
        )
        for snap in snapshots:
            if snap is None:
                continue
            total.states += snap.states
            total.transitions += snap.transitions
            total.expanded += snap.expanded
            total.elapsed += snap.elapsed
            total.frontier_peak = max(total.frontier_peak, snap.frontier_peak)
            total.parent_map_bytes += snap.parent_map_bytes
            total.cache_hits += snap.cache_hits
            total.cache_misses += snap.cache_misses
            total.cache_evictions += snap.cache_evictions
            total.verdict_cache_hits += snap.verdict_cache_hits
            total.verdict_cache_misses += snap.verdict_cache_misses
            for name, count in snap.tier_attempts.items():
                total.tier_attempts[name] = (
                    total.tier_attempts.get(name, 0) + count
                )
            for name, count in snap.tier_hits.items():
                total.tier_hits[name] = total.tier_hits.get(name, 0) + count
            total.tier_escalations += snap.tier_escalations
            total.states_canonicalized += snap.states_canonicalized
            total.orbits_merged += snap.orbits_merged
            total.por_pruned += snap.por_pruned
            total.hier_partitions_checked += snap.hier_partitions_checked
            total.hier_interface_hits += snap.hier_interface_hits
            total.hier_sim_escalations += snap.hier_sim_escalations
            total.modal_transitions_checked += snap.modal_transitions_checked
            total.modal_transient_escalations += (
                snap.modal_transient_escalations
            )
        total.wall_elapsed = (
            wall_elapsed if wall_elapsed is not None else total.elapsed
        )
        return total

    def format(self) -> str:
        """Multi-line rendering for the CLI."""
        if self.wall_elapsed != self.elapsed:
            elapsed_line = (
                f"elapsed: {self.elapsed:.3f}s cpu, "
                f"{self.wall_elapsed:.3f}s wall  "
                f"({self.states_per_second:,.0f} states/s)"
            )
        else:
            elapsed_line = (
                f"elapsed: {self.elapsed:.3f}s  "
                f"({self.states_per_second:,.0f} states/s)"
            )
        lines = [
            f"strategy: {self.strategy}",
            f"states: {self.states}  transitions: {self.transitions}  "
            f"expanded: {self.expanded}",
            elapsed_line,
            f"frontier peak: {self.frontier_peak}  "
            f"parent map: {self.parent_map_bytes / 1024:.1f} KiB",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.cache_hit_rate:.1%} hit rate, "
            f"{self.cache_evictions} evictions)",
        ]
        if self.verdict_cache_hits or self.verdict_cache_misses:
            lines.append(
                f"verdict cache: {self.verdict_cache_hits} hits / "
                f"{self.verdict_cache_misses} misses "
                f"({self.verdict_cache_hit_rate:.1%} hit rate)"
            )
        if self.tier_attempts or self.tier_escalations:
            lines.append("portfolio tiers:")
            for name in self.tier_attempts:
                hits = self.tier_hits.get(name, 0)
                lines.append(
                    f"  {name}: {self.tier_attempts[name]} attempt(s), "
                    f"{hits} hit(s)"
                )
            lines.append(
                f"  escalated to exploration: {self.tier_escalations}"
            )
        if self.hier_partitions_checked:
            lines.append(
                f"hier: {self.hier_partitions_checked} partition(s) "
                f"checked, {self.hier_interface_hits} settled by the "
                f"interface, {self.hier_sim_escalations} escalated to "
                f"flattened simulation"
            )
        if self.modal_transitions_checked:
            lines.append(
                f"modal: {self.modal_transitions_checked} transition(s) "
                f"checked, {self.modal_transient_escalations} escalated "
                f"to transient simulation"
            )
        if self.states_canonicalized or self.orbits_merged or self.por_pruned:
            lines.append(
                f"reduction: {self.states_canonicalized} states "
                f"canonicalized, {self.orbits_merged} orbits merged, "
                f"{self.por_pruned} transitions pruned"
            )
        if self.limit_hit is not None:
            lines.append(f"budget exhausted: {self.limit_hit}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"EngineStats(strategy={self.strategy!r}, states={self.states}, "
            f"transitions={self.transitions}, "
            f"states_per_second={self.states_per_second:.0f}, "
            f"cache_hit_rate={self.cache_hit_rate:.3f})"
        )
