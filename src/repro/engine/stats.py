"""Engine statistics: the observable health of an exploration run.

Mature model-checking backends expose state-space statistics (states per
second, frontier depth, cache effectiveness) because they are the only
way to reason about why an analysis is slow or large.  The engine
captures them in one :class:`EngineStats` snapshot attached to every
:class:`~repro.engine.result.ExplorationResult` and rendered by the CLI
``--stats`` flag and the scaling benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class EngineStats:
    """Snapshot of one exploration run.

    Attributes:
        strategy: name of the search strategy used.
        states: distinct states discovered (including the initial one).
        transitions: transitions enumerated.
        expanded: states whose successor set was computed (a random walk
            may expand fewer -- or, revisiting, more -- than it
            discovers).
        elapsed: wall-clock seconds.
        states_per_second: discovery throughput (0.0 for instant runs).
        frontier_peak: largest frontier size observed.
        parent_map_bytes: memory footprint of the parent (BFS-tree) map
            itself, excluding the interned terms it references.
        cache_hits / cache_misses / cache_evictions: aggregated over the
            provider's step, prioritization and semantics caches for
            the duration of this run only.
        limit_hit: which budget stopped the run (``"states"``,
            ``"transitions"``, ``"seconds"``) or ``None``.
    """

    __slots__ = (
        "strategy",
        "states",
        "transitions",
        "expanded",
        "elapsed",
        "frontier_peak",
        "parent_map_bytes",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "limit_hit",
    )

    def __init__(
        self,
        *,
        strategy: str,
        states: int,
        transitions: int,
        expanded: int,
        elapsed: float,
        frontier_peak: int,
        parent_map_bytes: int,
        cache_hits: int,
        cache_misses: int,
        cache_evictions: int,
        limit_hit: Optional[str],
    ) -> None:
        self.strategy = strategy
        self.states = states
        self.transitions = transitions
        self.expanded = expanded
        self.elapsed = elapsed
        self.frontier_peak = frontier_peak
        self.parent_map_bytes = parent_map_bytes
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self.cache_evictions = cache_evictions
        self.limit_hit = limit_hit

    @property
    def states_per_second(self) -> float:
        return self.states / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "states": self.states,
            "transitions": self.transitions,
            "expanded": self.expanded,
            "elapsed": self.elapsed,
            "states_per_second": self.states_per_second,
            "frontier_peak": self.frontier_peak,
            "parent_map_bytes": self.parent_map_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": self.cache_hit_rate,
            "limit_hit": self.limit_hit,
        }

    def format(self) -> str:
        """Multi-line rendering for the CLI."""
        lines = [
            f"strategy: {self.strategy}",
            f"states: {self.states}  transitions: {self.transitions}  "
            f"expanded: {self.expanded}",
            f"elapsed: {self.elapsed:.3f}s  "
            f"({self.states_per_second:,.0f} states/s)",
            f"frontier peak: {self.frontier_peak}  "
            f"parent map: {self.parent_map_bytes / 1024:.1f} KiB",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.cache_hit_rate:.1%} hit rate, "
            f"{self.cache_evictions} evictions)",
        ]
        if self.limit_hit is not None:
            lines.append(f"budget exhausted: {self.limit_hit}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"EngineStats(strategy={self.strategy!r}, states={self.states}, "
            f"transitions={self.transitions}, "
            f"states_per_second={self.states_per_second:.0f}, "
            f"cache_hit_rate={self.cache_hit_rate:.3f})"
        )
