"""State-space reduction passes: symmetry and partial-order.

Two pluggable :class:`ReductionPass`es sit between the
:class:`~repro.engine.provider.SuccessorProvider` and the visited set of
:func:`repro.engine.core.explore`:

* **Symmetry reduction** (:class:`SymmetryReduction`) -- replicated
  identical threads (and whole replicated processors) are detected at
  translation time by comparing their generated ACSR *definitions modulo
  renaming*: two units are interchangeable exactly when renaming one
  unit's process/event/resource names to the other's maps every
  definition onto the other's, term for term.  Each detected class
  yields a permutation group over unit name lists; states are
  canonicalized to their orbit representative before hash-consing, so
  the visited map stores one state per equivalence class.

* **Partial-order reduction** (:class:`PartialOrderReduction`) -- an
  ample-set style filter over instantaneous steps.  Threads are grouped
  into *clusters* (connected components over queued connections and
  latency flows -- the same coupling facts :mod:`repro.compose` uses to
  certify island independence, at thread rather than processor
  granularity).  Event steps are strictly cluster-local: an event
  synchronizes a sender and receiver inside one cluster and leaves every
  other top-level component untouched.  At a state where *all*
  prioritized steps are instantaneous and owned by known clusters, and
  at least two clusters offer steps, only the lowest-indexed cluster's
  steps are expanded.

Both passes preserve deadlock reachability exactly (see
``docs/reduction.md`` for the soundness arguments), so the verdict --
including honest UNKNOWN on truncation -- is unchanged; the seeded
oracle relation :mod:`repro.oracle.reduce` gates this end to end.

Fault injection: ``build_reduction(..., fault="overeager-sym")``
deliberately skips the definition-equality verification when pairing
replica units, merging threads that merely *look* alike (same name-kind
pattern) while differing in offset, priority or WCET.  That reduction is
unsound and the oracle campaign must catch it.  (The literal "drop one
permutation generator" fault would only coarsen the group -- a coarser
symmetry reduction is still sound and therefore verdict-invisible --
so the injected fault errs in the catchable direction instead.)
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import AnalysisError
from repro.acsr.events import TAU, EventLabel
from repro.acsr.resources import make_action
from repro.acsr.terms import (
    ActionPrefix,
    Choice,
    Close,
    EventPrefix,
    Guard,
    Hide,
    Nil,
    Parallel,
    ProcRef,
    Restrict,
    Scope,
    Term,
    choice,
    parallel,
)

#: Canonical pass order (also the canonical spec-token order): symmetry
#: canonicalization first, then the ample filter over canonical states.
PASS_NAMES = ("sym", "por")

#: Registered reduction fault-injection modes (oracle self-tests).
REDUCTION_FAULTS = {
    "overeager-sym": (
        "pair replica units by name-kind pattern alone, skipping the "
        "definition-equality verification -- merges threads that differ "
        "in offset/priority/WCET (unsound; the oracle must catch it)"
    ),
}

_BAIL = -1  # sentinel: a child spans two units of one class


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


def parse_reduction_spec(
    spec: Union[str, Sequence[str], None],
) -> Tuple[str, ...]:
    """Normalize a reduction spec to an ordered tuple of pass names.

    Accepts ``None`` / ``""`` / ``"none"`` (no reduction), a comma token
    like ``"sym,por"``, or a sequence of names.  Order is normalized to
    :data:`PASS_NAMES` order regardless of input order.
    """
    if spec is None:
        return ()
    if isinstance(spec, str):
        parts = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        parts = [str(part).strip() for part in spec]
    if parts == ["none"]:
        return ()
    unknown = sorted(set(parts) - set(PASS_NAMES))
    if unknown:
        raise AnalysisError(
            f"unknown reduction pass(es): {', '.join(unknown)}; "
            f"choose from {', '.join(PASS_NAMES)} (or 'none')"
        )
    return tuple(name for name in PASS_NAMES if name in parts)


def reduction_token(spec: Union[str, Sequence[str], None]) -> Optional[str]:
    """The canonical spec token (``"sym,por"``-style) or ``None``.

    This is what rides in batch-job options, so cache keys distinguish
    reduced from unreduced runs (and every distinct pass combination).
    """
    parsed = parse_reduction_spec(spec)
    return ",".join(parsed) if parsed else None


# ---------------------------------------------------------------------------
# Term renaming
# ---------------------------------------------------------------------------


def rename_term(
    term: Term,
    mapping: Dict[str, str],
    cache: Optional[Dict[Term, Term]] = None,
) -> Term:
    """Apply a name permutation to events, resources and process names.

    Rebuilds through the smart constructors, so the result is interned
    and canonically ordered; renamed-equal terms compare by identity.
    The mapping must be injective (a partial permutation); names outside
    it are fixed.  Works on open definition bodies as well as closed
    states (guards and expressions carry no names and pass through).
    """
    if not mapping:
        return term
    if cache is None:
        cache = {}
    return _rename(term, mapping, cache)


def _rename(term: Term, mapping: Dict[str, str], cache: Dict[Term, Term]) -> Term:
    cached = cache.get(term)
    if cached is not None:
        return cached
    if isinstance(term, Nil):
        result: Term = term
    elif isinstance(term, ActionPrefix):
        pairs = [
            (mapping.get(resource, resource), priority)
            for resource, priority in term.action.pairs
        ]
        result = ActionPrefix(
            make_action(pairs), _rename(term.continuation, mapping, cache)
        )
    elif isinstance(term, EventPrefix):
        result = EventPrefix(
            _rename_label(term.label, mapping),
            _rename(term.continuation, mapping, cache),
        )
    elif isinstance(term, Choice):
        result = choice(
            *(_rename(child, mapping, cache) for child in term.children)
        )
    elif isinstance(term, Parallel):
        result = parallel(
            *(_rename(child, mapping, cache) for child in term.children)
        )
    elif isinstance(term, Restrict):
        result = Restrict(
            _rename(term.body, mapping, cache),
            frozenset(mapping.get(name, name) for name in term.names),
        )
    elif isinstance(term, Close):
        result = Close(
            _rename(term.body, mapping, cache),
            frozenset(mapping.get(name, name) for name in term.resources),
        )
    elif isinstance(term, Hide):
        result = Hide(
            _rename(term.body, mapping, cache),
            frozenset(mapping.get(name, name) for name in term.resources),
        )
    elif isinstance(term, Scope):
        exception = term.exception
        result = Scope(
            _rename(term.body, mapping, cache),
            term.bound,
            mapping.get(exception, exception) if exception else exception,
            _rename(term.success, mapping, cache),
            _rename(term.timeout, mapping, cache),
            _rename(term.interrupt, mapping, cache),
        )
    elif isinstance(term, Guard):
        result = Guard(term.condition, _rename(term.body, mapping, cache))
    elif isinstance(term, ProcRef):
        result = ProcRef(mapping.get(term.name, term.name), term.args)
    else:  # pragma: no cover - future term classes
        raise AnalysisError(f"rename_term: unsupported term {type(term).__name__}")
    cache[term] = result
    return result


def _rename_label(label: EventLabel, mapping: Dict[str, str]) -> EventLabel:
    if label.is_tau:
        via = label.via
        if via is None or via not in mapping:
            return label
        return EventLabel(TAU, "", label.priority, mapping[via])
    name = label.name
    if name not in mapping:
        return label
    return EventLabel(mapping[name], label.direction, label.priority)


def mentioned_names(
    term: Term, cache: Optional[Dict[Term, FrozenSet[str]]] = None
) -> FrozenSet[str]:
    """Every event, resource and process name the term touches."""
    if cache is None:
        cache = _MENTIONED_CACHE
    cached = cache.get(term)
    if cached is not None:
        return cached
    names: set = set()
    if isinstance(term, ActionPrefix):
        names |= term.action.resources
        names |= mentioned_names(term.continuation, cache)
    elif isinstance(term, EventPrefix):
        label = term.label
        if label.is_tau:
            if label.via is not None:
                names.add(label.via)
        else:
            names.add(label.name)
        names |= mentioned_names(term.continuation, cache)
    elif isinstance(term, (Choice, Parallel)):
        for child in term.children:
            names |= mentioned_names(child, cache)
    elif isinstance(term, Restrict):
        names |= term.names
        names |= mentioned_names(term.body, cache)
    elif isinstance(term, (Close, Hide)):
        names |= term.resources
        names |= mentioned_names(term.body, cache)
    elif isinstance(term, Scope):
        if term.exception:
            names.add(term.exception)
        for part in (term.body, term.success, term.timeout, term.interrupt):
            names |= mentioned_names(part, cache)
    elif isinstance(term, Guard):
        names |= mentioned_names(term.body, cache)
    elif isinstance(term, ProcRef):
        names.add(term.name)
    result = frozenset(names)
    cache[term] = result
    return result


#: Process-global memo: terms are interned, so mentioned-name sets are
#: shared across reductions (and across analyses in one process).
_MENTIONED_CACHE: Dict[Term, FrozenSet[str]] = {}


# ---------------------------------------------------------------------------
# Replica-class detection (symmetry)
# ---------------------------------------------------------------------------


class ReplicaUnit:
    """One interchangeable unit: an ordered name list plus its kinds.

    A *thread unit* lists the thread's skeleton/dispatcher process names
    and its dispatch/done events; a *processor unit* prepends the
    processor's cpu resource and concatenates its threads' lists.  Two
    units pair up positionally, so equal kind sequences are required
    before a rename map is even attempted.
    """

    __slots__ = ("label", "kinds", "names")

    def __init__(
        self, label: str, kinds: Sequence[str], names: Sequence[str]
    ) -> None:
        self.label = label
        self.kinds = tuple(kinds)
        self.names = tuple(names)

    def __repr__(self) -> str:
        return f"ReplicaUnit({self.label!r}, {len(self.names)} names)"


class ReplicaClass:
    """A set of >= 2 interchangeable units with precomputed rename maps."""

    __slots__ = (
        "kind",
        "units",
        "to_rep",
        "from_rep",
        "name_sets",
        "_rename_caches",
    )

    def __init__(self, kind: str, units: Sequence[ReplicaUnit]) -> None:
        self.kind = kind
        self.units = tuple(units)
        self.to_rep: List[Dict[str, str]] = []
        self.from_rep: List[Dict[str, str]] = []
        rep = self.units[0]
        for unit in self.units:
            if unit is rep:
                self.to_rep.append({})
                self.from_rep.append({})
            else:
                self.to_rep.append(dict(zip(unit.names, rep.names)))
                self.from_rep.append(dict(zip(rep.names, unit.names)))
        self.name_sets = [frozenset(unit.names) for unit in self.units]
        self._rename_caches: Dict[Tuple[str, int], Dict[Term, Term]] = {}

    def rename_cache(self, direction: str, index: int) -> Dict[Term, Term]:
        return self._rename_caches.setdefault((direction, index), {})

    @property
    def size(self) -> int:
        return len(self.units)

    def __repr__(self) -> str:
        labels = ", ".join(unit.label for unit in self.units)
        return f"ReplicaClass({self.kind}: {labels})"


def _unit_map(a: ReplicaUnit, b: ReplicaUnit) -> Optional[Dict[str, str]]:
    if a.kinds != b.kinds or len(a.names) != len(b.names):
        return None
    return dict(zip(a.names, b.names))


def _verify_unit_map(env, mapping: Dict[str, str]) -> bool:
    """Exact symmetry check: every definition of the left unit must map
    onto the corresponding definition of the right unit, term for term."""
    cache: Dict[Term, Term] = {}
    for name, image in mapping.items():
        if name not in env:
            if image in env:
                return False
            continue
        if image not in env:
            return False
        left, right = env[name], env[image]
        if left.params != right.params:
            return False
        if rename_term(left.body, mapping, cache) is not right.body:
            return False
    return True


def _timing_key(timing) -> tuple:
    period = timing.period if timing.period is not None else -1
    return (period, timing.cmin, timing.cmax, timing.deadline, timing.offset)


def _priority_key(priority) -> tuple:
    kind = type(priority).__name__
    values = tuple(
        getattr(priority, slot) for slot in getattr(priority, "__slots__", ())
    )
    return (kind, values)


def _group_units(
    units: List[ReplicaUnit],
    env,
    *,
    verify: bool,
) -> List[List[ReplicaUnit]]:
    """Greedy partition into groups of pairwise-interchangeable units."""
    groups: List[List[ReplicaUnit]] = []
    remaining = list(units)
    while remaining:
        rep = remaining.pop(0)
        group = [rep]
        kept: List[ReplicaUnit] = []
        for other in remaining:
            mapping = _unit_map(rep, other)
            if mapping is not None and (
                not verify or _verify_unit_map(env, mapping)
            ):
                group.append(other)
            else:
                kept.append(other)
        remaining = kept
        if len(group) >= 2:
            groups.append(group)
    return groups


def _class_is_isolated(env, cls: ReplicaClass) -> bool:
    """No definition outside the class may touch a class-owned name
    (otherwise permuting the class would not be a system automorphism)."""
    domain = frozenset().union(*cls.name_sets)
    owned_procs = {name for name in domain if name in env}
    for definition in env:
        if definition.name in owned_procs:
            continue
        if mentioned_names(definition.body) & domain:
            return False
    return True


def _restriction_invariant(
    restricted: FrozenSet[str], cls: ReplicaClass
) -> bool:
    for mapping in cls.to_rep:
        for name, image in mapping.items():
            if (name in restricted) != (image in restricted):
                return False
    return True


def detect_replica_classes(
    translation, *, overeager: bool = False
) -> List[ReplicaClass]:
    """Find replicated-thread and replicated-processor classes.

    Intra-processor thread classes come first (equal-priority ties, e.g.
    explicit HPF priorities), then whole-processor classes (the common
    case: per-processor RM/DM assignment gives replicated processors
    pairwise-equal priority vectors).  Detection is exact unless
    ``overeager`` injects the ``overeager-sym`` fault (see module doc).
    """
    table = translation.names
    env = translation.env
    restricted = frozenset(translation.restricted_events)

    thread_units: Dict[str, ReplicaUnit] = {}
    by_processor: Dict[str, List[str]] = {}
    for qual, thread in sorted(translation.threads.items()):
        entries = sorted(table.entries_for(qual))
        thread_units[qual] = ReplicaUnit(
            qual,
            [kind for kind, _ in entries],
            [name for _, name in entries],
        )
        by_processor.setdefault(thread.processor_qual, []).append(qual)

    classes: List[ReplicaClass] = []

    # Intra-processor thread classes.
    for proc_qual in sorted(by_processor):
        units = [thread_units[qual] for qual in sorted(by_processor[proc_qual])]
        for group in _group_units(units, env, verify=not overeager):
            classes.append(ReplicaClass("threads", group))

    # Cross-processor (whole-processor) classes.
    processor_units: List[ReplicaUnit] = []
    for proc_qual in sorted(by_processor):
        cpu_entries = sorted(table.entries_for(proc_qual))
        kinds = [kind for kind, _ in cpu_entries]
        names = [name for _, name in cpu_entries]
        ordered = sorted(
            by_processor[proc_qual],
            key=lambda qual: (
                thread_units[qual].kinds,
                () if overeager else _timing_key(
                    translation.threads[qual].timing
                ),
                () if overeager else _priority_key(
                    translation.threads[qual].priority
                ),
                qual,
            ),
        )
        for qual in ordered:
            unit = thread_units[qual]
            kinds.extend(unit.kinds)
            names.extend(unit.names)
        processor_units.append(ReplicaUnit(proc_qual, kinds, names))
    for group in _group_units(processor_units, env, verify=not overeager):
        classes.append(ReplicaClass("processors", group))

    return [
        cls
        for cls in classes
        if _restriction_invariant(restricted, cls)
        and (overeager or _class_is_isolated(env, cls))
    ]


# ---------------------------------------------------------------------------
# The passes
# ---------------------------------------------------------------------------


class ReductionPass:
    """Protocol for one reduction pass.

    ``canonicalize`` maps a state to its equivalence-class
    representative (identity by default); ``filter`` shrinks a
    nonempty step tuple to a nonempty subset (identity by default).
    """

    name = "identity"

    def canonicalize(self, state: Term) -> Term:
        return state

    def filter(self, state: Term, steps: tuple) -> tuple:
        return steps

    def counters(self) -> Dict[str, int]:
        return {}


class SymmetryReduction(ReductionPass):
    """Canonicalize states to orbit representatives.

    Per class, in order: assign the top-level parallel children to units
    by the names they mention, rename every unit's children to the
    representative unit's names (``locals``), sort units by their local
    term identity, and rename the k-th smallest local back into the k-th
    unit's names.  The wrapper restriction sets are invariant under
    every class permutation (checked at detection time), so they are
    reused verbatim.  Canonicalization is idempotent and constant on
    orbits; hash-consing makes both checks pointer comparisons.
    """

    name = "sym"

    def __init__(self, classes: Sequence[ReplicaClass]) -> None:
        self.classes = tuple(classes)
        # name -> unit index, one map per class (a name may belong to a
        # thread class and its processor class simultaneously).
        self._owners: List[Dict[str, int]] = []
        for cls in self.classes:
            owner: Dict[str, int] = {}
            for index, names in enumerate(cls.name_sets):
                for name in names:
                    owner[name] = index
            self._owners.append(owner)
        self._touch_caches: List[Dict[Term, Optional[int]]] = [
            {} for _ in self.classes
        ]
        self._canon_cache: Dict[Term, Term] = {}
        self.states_canonicalized = 0
        self.orbits_merged = 0

    def counters(self) -> Dict[str, int]:
        return {
            "states_canonicalized": self.states_canonicalized,
            "orbits_merged": self.orbits_merged,
        }

    def canonicalize(self, state: Term) -> Term:
        cached = self._canon_cache.get(state)
        if cached is not None:
            return cached
        result = self._canonicalize(state)
        self._canon_cache[state] = result
        self.states_canonicalized += 1
        if result is not state:
            self.orbits_merged += 1
            # A representative is a fixed point (idempotence), so seed it.
            self._canon_cache.setdefault(result, result)
        return result

    def _canonicalize(self, state: Term) -> Term:
        wrappers: List[Term] = []
        body = state
        while isinstance(body, (Restrict, Close, Hide)):
            wrappers.append(body)
            body = body.body
        if not isinstance(body, Parallel):
            return state
        children: Sequence[Term] = body.children
        for index, cls in enumerate(self.classes):
            updated = self._apply_class(index, cls, children)
            if updated is None:
                return state
            children = updated
        result = parallel(*children)
        for wrapper in reversed(wrappers):
            if isinstance(wrapper, Restrict):
                result = Restrict(result, wrapper.names)
            elif isinstance(wrapper, Close):
                result = Close(result, wrapper.resources)
            else:
                result = Hide(result, wrapper.resources)
        return result

    def _apply_class(
        self, index: int, cls: ReplicaClass, children: Sequence[Term]
    ) -> Optional[Sequence[Term]]:
        fixed: List[Term] = []
        buckets: List[List[Term]] = [[] for _ in cls.units]
        for child in children:
            unit = self._touched(index, child)
            if unit == _BAIL:
                return None
            if unit is None:
                fixed.append(child)
            else:
                buckets[unit].append(child)
        if not any(buckets):
            return children
        locals_: List[Tuple[Term, ...]] = []
        for unit, kids in enumerate(buckets):
            mapping = cls.to_rep[unit]
            cache = cls.rename_cache("to", unit)
            locals_.append(
                tuple(
                    sorted(
                        (rename_term(kid, mapping, cache) for kid in kids),
                        key=lambda t: t._id,
                    )
                )
            )
        order = sorted(
            range(len(cls.units)),
            key=lambda unit: tuple(t._id for t in locals_[unit]),
        )
        if order == list(range(len(cls.units))):
            return children
        out = fixed
        for rank, source in enumerate(order):
            mapping = cls.from_rep[rank]
            cache = cls.rename_cache("from", rank)
            out.extend(
                rename_term(term, mapping, cache) for term in locals_[source]
            )
        return out

    def _touched(self, index: int, child: Term) -> Optional[int]:
        cache = self._touch_caches[index]
        if child in cache:
            return cache[child]
        owner = self._owners[index]
        units = {
            owner[name]
            for name in mentioned_names(child)
            if name in owner
        }
        if len(units) > 1:
            value: Optional[int] = _BAIL
        elif units:
            value = units.pop()
        else:
            value = None
        cache[child] = value
        return value


class ClusterMap:
    """Thread-cluster ownership of event names (POR independence units).

    Clusters are connected components over threads, merged along queued
    connections (source thread/device -- queue -- destination thread)
    and latency flows (source -- observer -- destination).  Every
    restricted event name resolves to the cluster whose components
    synchronize on it; event steps therefore never cross clusters.
    """

    __slots__ = ("owner", "n_clusters")

    def __init__(self, owner: Dict[str, int], n_clusters: int) -> None:
        self.owner = owner
        self.n_clusters = n_clusters


def build_cluster_map(translation) -> ClusterMap:
    parent: Dict[str, str] = {}

    def find(key: str) -> str:
        parent.setdefault(key, key)
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    for qual in translation.threads:
        find(qual)
    queued = set(translation.queues)
    for conn in translation.instance.connections:
        conn_qual = conn.qualified_name
        if conn_qual not in queued:
            continue
        find(conn_qual)
        union(conn_qual, conn.source.component.qualified_name)
        union(conn_qual, conn.destination.component.qualified_name)
    for flow in translation.options.latency_flows:
        find(flow.flow_id)
        union(flow.flow_id, flow.source_qual)
        union(flow.flow_id, flow.destination_qual)

    roots = sorted({find(key) for key in list(parent)})
    index = {root: i for i, root in enumerate(roots)}

    table = translation.names
    owner: Dict[str, int] = {}
    for element in list(parent):
        cluster = index[find(element)]
        for _, name in table.entries_for(element):
            owner[name] = cluster
    return ClusterMap(owner, len(roots))


class PartialOrderReduction(ReductionPass):
    """Expand one representative cluster when several commute.

    Fires only at states whose prioritized steps are *all*
    instantaneous and all owned by known clusters; when two or more
    clusters offer steps, only the lowest-indexed cluster's steps
    survive.  A timed step, an unowned label, or a single active
    cluster disables pruning for that state, so the filter never turns
    a live state into a false deadlock (it always keeps at least one
    full cluster of steps).
    """

    name = "por"

    def __init__(self, clusters: ClusterMap) -> None:
        self.clusters = clusters
        self.por_pruned = 0

    def counters(self) -> Dict[str, int]:
        return {"por_pruned": self.por_pruned}

    def filter(self, state: Term, steps: tuple) -> tuple:
        if len(steps) < 2:
            return steps
        owner = self.clusters.owner
        owners: List[int] = []
        for label, _successor in steps:
            if not isinstance(label, EventLabel):
                return steps  # a timed step: not a pure event burst
            name = label.via if label.is_tau else label.name
            if name is None:
                return steps
            cluster = owner.get(name)
            if cluster is None:
                return steps
            owners.append(cluster)
        distinct = set(owners)
        if len(distinct) < 2:
            return steps
        keep = min(distinct)
        filtered = tuple(
            step for step, cluster in zip(steps, owners) if cluster == keep
        )
        self.por_pruned += len(steps) - len(filtered)
        return filtered


class Reduction:
    """An ordered pipeline of reduction passes, consumed by ``explore``."""

    __slots__ = ("passes",)

    def __init__(self, passes: Sequence[ReductionPass]) -> None:
        self.passes = tuple(passes)

    def __bool__(self) -> bool:
        return bool(self.passes)

    @property
    def pass_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def canonicalize(self, state: Term) -> Term:
        for reduction_pass in self.passes:
            state = reduction_pass.canonicalize(state)
        return state

    def filter(self, state: Term, steps: tuple) -> tuple:
        for reduction_pass in self.passes:
            steps = reduction_pass.filter(state, steps)
        return steps

    def counters(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for reduction_pass in self.passes:
            merged.update(reduction_pass.counters())
        return merged


def build_reduction(
    translation,
    spec: Union[str, Sequence[str], None],
    *,
    fault: Optional[str] = None,
) -> Optional[Reduction]:
    """Build the reduction pipeline for one translated model.

    Returns ``None`` when the spec is empty or no pass applies to this
    model (no replica classes for ``sym``, fewer than two clusters for
    ``por``) -- exploration then runs exactly as without reduction.
    """
    if fault is not None and fault not in REDUCTION_FAULTS:
        raise AnalysisError(
            f"unknown reduction fault {fault!r}; "
            f"choose from {', '.join(sorted(REDUCTION_FAULTS))}"
        )
    names = parse_reduction_spec(spec)
    if not names:
        return None
    passes: List[ReductionPass] = []
    if "sym" in names:
        classes = detect_replica_classes(
            translation, overeager=fault == "overeager-sym"
        )
        if classes:
            passes.append(SymmetryReduction(classes))
    if "por" in names:
        clusters = build_cluster_map(translation)
        if clusters.n_clusters >= 2:
            passes.append(PartialOrderReduction(clusters))
    return Reduction(passes) if passes else None
