"""Successor provision: the engine's view of a transition relation.

A :class:`SuccessorProvider` is the single seam between the search loop
and the ACSR semantics.  It selects the prioritized or unprioritized
relation of a :class:`~repro.acsr.definitions.ClosedSystem`, counts how
often it is consulted, and owns access to the system's transition
caches (explicit :class:`~repro.engine.cache.TransitionCache` objects
-- see ``ClosedSystem.cache_stats()`` / ``clear_cache()``).

Because the provider is an object rather than a bound method, future
backends -- sharded successor servers, precomputed LTS replay, fault
injection for tests -- implement the same two-method surface
(``successors``, ``cache_stats``) without touching the search loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acsr.definitions import ClosedSystem
    from repro.acsr.terms import Term


class SuccessorProvider:
    """Successor function over a closed system.

    Args:
        system: the closed ACSR system to explore.
        prioritized: use the prioritized transition relation (the
            paper's semantics) or, for ablations, the unprioritized one.
    """

    __slots__ = ("system", "prioritized", "calls", "_successors")

    def __init__(
        self, system: "ClosedSystem", *, prioritized: bool = True
    ) -> None:
        self.system = system
        self.prioritized = prioritized
        self.calls = 0
        # Bind once: the per-call branch was measurable on hot loops.
        self._successors = (
            system.prioritized_steps if prioritized else system.steps
        )

    @property
    def root(self) -> "Term":
        return self.system.root

    def successors(self, state: "Term") -> Tuple:
        """Outgoing ``(label, successor)`` pairs of ``state``."""
        self.calls += 1
        return self._successors(state)

    def cache_stats(self) -> Dict[str, Any]:
        """Statistics of the system's transition caches."""
        return self.system.cache_stats()

    def cache_counters(self) -> Tuple[int, int, int]:
        """Aggregated (hits, misses, evictions) over the system caches.

        Used by the engine to attribute cache traffic to a single run:
        the caches persist across runs (that persistence *is* the warm
        re-exploration speedup), so per-run rates are deltas of these
        counters.
        """
        hits = misses = evictions = 0
        for cache in self.system.caches():
            hits += cache.hits
            misses += cache.misses
            evictions += cache.evictions
        return hits, misses, evictions

    def clear_cache(self) -> None:
        """Drop the system's memo tables (long-lived session hygiene)."""
        self.system.clear_cache()

    def __repr__(self) -> str:
        relation = "prioritized" if self.prioritized else "unprioritized"
        return f"SuccessorProvider({relation}, calls={self.calls})"
