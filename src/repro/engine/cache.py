"""Explicit, bounded, stat-tracking transition caches.

Transition memoization is the measured hot path of the whole analysis
(see DESIGN.md): during exploration the same component subterms recur
under thousands of parent states, and a cache turns the structural
semantics into an amortized table lookup.  Historically the memo lived
as a monkey-patched ``env._trans_memo`` dict; :class:`TransitionCache`
makes it a first-class object with observable statistics (hits, misses,
evictions, size) and an optional bound so long-lived sessions do not
grow memory without limit.

Keys are hash-consed terms, so lookups are identity-hash dict
operations -- the cheapest thing Python can do.  The unbounded
configuration (the default, and the right choice for one-shot analyses)
adds only two counter increments to the old raw-dict behaviour; the
bounded configuration maintains LRU order by re-inserting on hit and
evicting the least recently used entry when full.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional


class TransitionCache:
    """A bounded memo table with hit/miss/eviction accounting.

    Args:
        maxsize: maximum number of entries, or ``None`` (default) for an
            unbounded cache.  When bounded, the least recently used
            entry is evicted to make room.
        name: diagnostic label used in :meth:`stats` output.
    """

    __slots__ = ("name", "maxsize", "hits", "misses", "evictions", "_data")

    def __init__(
        self, maxsize: Optional[int] = None, *, name: str = "cache"
    ) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be positive or None: {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: Dict[Hashable, Any] = {}

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or a miss."""
        data = self._data
        try:
            value = data[key]
        except KeyError:
            self.misses += 1
            return default
        self.hits += 1
        if self.maxsize is not None:
            # Maintain LRU order: move the hit entry to the young end.
            del data[key]
            data[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the LRU entry when full."""
        data = self._data
        if key not in data and (
            self.maxsize is not None and len(data) >= self.maxsize
        ):
            data.pop(next(iter(data)))
            self.evictions += 1
        data[key] = value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop every entry (statistics counters are kept)."""
        self._data.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Snapshot of the cache counters."""
        return {
            "name": self.name,
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        bound = "unbounded" if self.maxsize is None else f"max={self.maxsize}"
        return (
            f"TransitionCache({self.name!r}, {bound}, size={len(self._data)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
