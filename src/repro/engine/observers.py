"""Instrumentation hooks for the exploration engine.

Observers let callers watch a search without forking the search loop:
progress reporting, statistics collection, state-space dumps, abort
buttons -- anything that reads the stream of exploration events.  The
engine invokes the hooks synchronously; observers must be cheap (the
default :class:`Observer` base is all no-ops, so subclasses pay only
for the hooks they override).

Events, in order of occurrence:

* ``on_start(initial)`` -- once, before the first expansion;
* ``on_state(state, discovered)`` -- a state is *expanded* (popped from
  the frontier and its successors computed); ``discovered`` is the
  number of distinct states known so far;
* ``on_transition(state, label, successor, is_new)`` -- one outgoing
  transition of the expanded state; ``is_new`` marks first discovery of
  the successor;
* ``on_deadlock(state)`` -- the expanded state has no successors;
* ``on_target(state)`` -- the state satisfied the target predicate;
* ``on_limit(kind, states_explored)`` -- a budget was exhausted
  (``kind`` is ``"states"``, ``"transitions"`` or ``"seconds"``); fires
  under both the raise and the truncate policies, before the error is
  raised in the former;
* ``on_finish(result)`` -- once, with the final
  :class:`~repro.engine.result.ExplorationResult` (not called when a
  budget raises).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Iterable, Optional, Sequence


class Observer:
    """Base observer: every hook is a no-op; override what you need."""

    def on_start(self, initial) -> None:  # pragma: no cover - trivial
        pass

    def on_state(self, state, discovered: int) -> None:
        pass

    def on_transition(self, state, label, successor, is_new: bool) -> None:
        pass

    def on_deadlock(self, state) -> None:
        pass

    def on_target(self, state) -> None:
        pass

    def on_limit(self, kind: str, states_explored: int) -> None:
        pass

    def on_finish(self, result) -> None:
        pass


class CompositeObserver(Observer):
    """Fan one event stream out to several observers, in order."""

    def __init__(self, observers: Sequence[Observer]) -> None:
        self.observers = list(observers)

    def on_start(self, initial) -> None:
        for obs in self.observers:
            obs.on_start(initial)

    def on_state(self, state, discovered: int) -> None:
        for obs in self.observers:
            obs.on_state(state, discovered)

    def on_transition(self, state, label, successor, is_new: bool) -> None:
        for obs in self.observers:
            obs.on_transition(state, label, successor, is_new)

    def on_deadlock(self, state) -> None:
        for obs in self.observers:
            obs.on_deadlock(state)

    def on_target(self, state) -> None:
        for obs in self.observers:
            obs.on_target(state)

    def on_limit(self, kind: str, states_explored: int) -> None:
        for obs in self.observers:
            obs.on_limit(kind, states_explored)

    def on_finish(self, result) -> None:
        for obs in self.observers:
            obs.on_finish(result)


class ProgressObserver(Observer):
    """Periodic progress callbacks (every N expansions and/or T seconds).

    Args:
        every_states: invoke the callback every this many expansions
            (``None`` disables the count trigger).
        every_seconds: minimum seconds between callbacks (``None``
            disables the time trigger).
        callback: ``callback(expanded, discovered, elapsed)``; defaults
            to a single status line on stderr.
    """

    def __init__(
        self,
        *,
        every_states: Optional[int] = 10_000,
        every_seconds: Optional[float] = None,
        callback: Optional[Callable[[int, int, float], None]] = None,
    ) -> None:
        if every_states is None and every_seconds is None:
            raise ValueError(
                "at least one of every_states / every_seconds is required"
            )
        self.every_states = every_states
        self.every_seconds = every_seconds
        self.callback = callback or self._default_callback
        self._expanded = 0
        self._start = 0.0
        self._last_report = 0.0

    @staticmethod
    def _default_callback(
        expanded: int, discovered: int, elapsed: float
    ) -> None:
        rate = discovered / elapsed if elapsed > 0 else 0.0
        print(
            f"  ... {discovered} states ({expanded} expanded, "
            f"{rate:,.0f} states/s)",
            file=sys.stderr,
        )

    def on_start(self, initial) -> None:
        self._expanded = 0
        self._start = time.perf_counter()
        self._last_report = self._start

    def on_state(self, state, discovered: int) -> None:
        self._expanded += 1
        now = time.perf_counter()
        due = (
            self.every_states is not None
            and self._expanded % self.every_states == 0
        ) or (
            self.every_seconds is not None
            and now - self._last_report >= self.every_seconds
        )
        if due:
            self._last_report = now
            self.callback(self._expanded, discovered, now - self._start)


class RecordingObserver(Observer):
    """Record every event as ``(name, payload)`` tuples (tests, debugging)."""

    def __init__(self) -> None:
        self.events: list = []

    def on_start(self, initial) -> None:
        self.events.append(("start", initial))

    def on_state(self, state, discovered: int) -> None:
        self.events.append(("state", state, discovered))

    def on_transition(self, state, label, successor, is_new: bool) -> None:
        self.events.append(("transition", state, label, successor, is_new))

    def on_deadlock(self, state) -> None:
        self.events.append(("deadlock", state))

    def on_target(self, state) -> None:
        self.events.append(("target", state))

    def on_limit(self, kind: str, states_explored: int) -> None:
        self.events.append(("limit", kind, states_explored))

    def on_finish(self, result) -> None:
        self.events.append(("finish", result))

    def of_kind(self, name: str) -> list:
        return [event for event in self.events if event[0] == name]


def combine(
    observers: Optional[Iterable[Observer]],
) -> Optional[Observer]:
    """Normalize an observer collection to a single observer (or None)."""
    if observers is None:
        return None
    if isinstance(observers, Observer):
        return observers
    observers = [obs for obs in observers if obs is not None]
    if not observers:
        return None
    if len(observers) == 1:
        return observers[0]
    return CompositeObserver(observers)
