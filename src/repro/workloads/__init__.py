"""Synthetic workload generation for benchmarks and property tests."""

from repro.workloads.uunifast import uunifast, integer_task_set
from repro.workloads.generators import (
    chain_system,
    multiprocessor_system,
    random_periodic_system,
    task_set_to_system,
)

__all__ = [
    "chain_system",
    "integer_task_set",
    "multiprocessor_system",
    "random_periodic_system",
    "task_set_to_system",
    "uunifast",
]
