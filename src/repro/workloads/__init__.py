"""Synthetic workload generation for benchmarks and property tests."""

from repro.workloads.uunifast import uunifast, integer_task_set
from repro.workloads.taskgen import (
    GENERATORS,
    constrained_deadline_task_set,
    generate_task_set,
    harmonic_task_set,
    offset_task_set,
)
from repro.workloads.generators import (
    chain_system,
    faulty_modal_system,
    multiprocessor_system,
    partitioned_system,
    random_periodic_system,
    replicated_system,
    sweep_task_sets,
    task_set_builder,
    task_set_to_system,
)

__all__ = [
    "GENERATORS",
    "chain_system",
    "constrained_deadline_task_set",
    "faulty_modal_system",
    "generate_task_set",
    "harmonic_task_set",
    "integer_task_set",
    "multiprocessor_system",
    "offset_task_set",
    "partitioned_system",
    "random_periodic_system",
    "replicated_system",
    "sweep_task_sets",
    "task_set_builder",
    "task_set_to_system",
    "uunifast",
]
