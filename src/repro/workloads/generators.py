"""Synthetic AADL system generators for scaling and agreement benchmarks."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.aadl.builder import SystemBuilder
from repro.aadl.instance import SystemInstance
from repro.aadl.properties import (
    DispatchProtocol,
    OverflowHandlingProtocol,
    SchedulingProtocol,
    ms,
)
from repro.sched.taskmodel import TaskSet
from repro.workloads.uunifast import integer_task_set


def task_set_builder(
    tasks: TaskSet,
    *,
    scheduling: SchedulingProtocol = SchedulingProtocol.RATE_MONOTONIC,
    name: str = "Synthetic",
) -> SystemBuilder:
    """A builder wrapping a task set as a single-processor AADL system
    (1 ms quantum); exposed separately so callers can also reach the
    declarative model (e.g. the oracle's repro bundles persist its AADL
    text)."""
    builder = SystemBuilder(name)
    cpu = builder.processor("cpu", scheduling=scheduling)
    for task in tasks:
        builder.thread(
            task.name,
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(task.period),
            compute_time=(ms(task.bcet), ms(task.wcet)),
            deadline=ms(task.deadline),
            processor=cpu,
            priority=task.priority,
            offset=ms(task.offset) if task.offset else None,
        )
    return builder


def task_set_to_system(
    tasks: TaskSet,
    *,
    scheduling: SchedulingProtocol = SchedulingProtocol.RATE_MONOTONIC,
    name: str = "Synthetic",
) -> SystemInstance:
    """Wrap a task set as a single-processor AADL system (1 ms quantum)."""
    return task_set_builder(
        tasks, scheduling=scheduling, name=name
    ).instantiate()


def random_periodic_system(
    n_threads: int,
    total_utilization: float,
    *,
    scheduling: SchedulingProtocol = SchedulingProtocol.RATE_MONOTONIC,
    periods: Sequence[int] = (4, 8, 12, 24),
    rng: Optional[np.random.Generator] = None,
) -> SystemInstance:
    """Random single-processor periodic system at a target utilization."""
    tasks = integer_task_set(
        n_threads, total_utilization, periods=periods, rng=rng
    )
    return task_set_to_system(tasks, scheduling=scheduling)


def sweep_task_sets(
    n_threads: int,
    utilizations: Sequence[float],
    *,
    generator: str = "uniform",
    periods: Optional[Sequence[int]] = None,
    base_seed: int = 0,
    **params,
):
    """Deterministic ``(label, TaskSet)`` pairs over a utilization grid.

    One task set per utilization point, each drawn from the named
    :data:`~repro.workloads.taskgen.GENERATORS` entry with its own seed
    (``base_seed + index``) -- the unit of work for batch workload
    sweeps (:mod:`repro.batch.sweeps`) and scaling studies.
    """
    from repro.workloads.taskgen import generate_task_set

    if periods is not None:
        params = {"periods": tuple(periods), **params}
    pairs = []
    for index, utilization in enumerate(utilizations):
        tasks = generate_task_set(
            generator,
            n_threads,
            float(utilization),
            rng=np.random.default_rng(base_seed + index),
            **params,
        )
        pairs.append((f"{generator}-u{float(utilization):.3f}", tasks))
    return pairs


def chain_system(
    n_stages: int,
    *,
    period: int = 8,
    wcet: int = 1,
    stage_deadline: int = 4,
    queue_size: int = 1,
    overflow: OverflowHandlingProtocol = OverflowHandlingProtocol.DROP_NEWEST,
) -> SystemInstance:
    """A periodic source driving a pipeline of sporadic stages through
    event connections -- the "complex patterns of interaction" regime
    where classical analysis does not apply but the ACSR translation does.
    """
    if n_stages < 1:
        raise ValueError("need at least one stage")
    builder = SystemBuilder("Chain")
    cpu = builder.processor(
        "cpu", scheduling=SchedulingProtocol.DEADLINE_MONOTONIC
    )
    source = builder.thread(
        "source",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(period),
        compute_time=(ms(wcet), ms(wcet)),
        deadline=ms(period),
        processor=cpu,
    )
    source.out_event_port("out")
    previous = source
    for index in range(n_stages):
        stage = builder.thread(
            f"stage{index}",
            dispatch=DispatchProtocol.SPORADIC,
            period=ms(period),
            compute_time=(ms(wcet), ms(wcet)),
            deadline=ms(stage_deadline),
            processor=cpu,
        )
        stage.in_event_port("inp", queue_size=queue_size, overflow=overflow)
        if index < n_stages - 1:
            stage.out_event_port("out")
        builder.connect(previous, "out", stage, "inp")
        previous = stage
    return builder.instantiate()


def replicated_system(
    n_replicas: int,
    threads_per_replica: int,
    *,
    utilization_per_replica: float = 0.5,
    scheduling: SchedulingProtocol = SchedulingProtocol.RATE_MONOTONIC,
    periods: Sequence[int] = (4, 8),
    offset_jitter: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> SystemInstance:
    """One task set drawn once and instantiated on ``n_replicas``
    identical, independent processors -- the symmetric regime the
    symmetry reduction (:mod:`repro.engine.reduce`) targets: every
    replica processor is interchangeable with every other.

    ``offset_jitter=True`` gives replica ``p``'s first thread a dispatch
    offset of ``p`` ms: the replicas stay near-identical but become
    distinguishable, so symmetry detection must *not* fire (the
    ``overeager-sym`` fault merges them anyway, which is what the oracle
    campaign catches).
    """
    rng = rng or np.random.default_rng()
    tasks = integer_task_set(
        threads_per_replica,
        utilization_per_replica,
        periods=periods,
        rng=rng,
        name_prefix="t",
    )
    builder = SystemBuilder("Replicated")
    for p in range(n_replicas):
        cpu = builder.processor(f"cpu{p}", scheduling=scheduling)
        for index, task in enumerate(tasks):
            builder.thread(
                f"r{p}{task.name}",
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(task.period),
                compute_time=(ms(task.wcet), ms(task.wcet)),
                deadline=ms(task.deadline),
                processor=cpu,
                offset=(
                    ms(p) if offset_jitter and index == 0 and p > 0 else None
                ),
            )
    return builder.instantiate()


def partitioned_system(
    n_partitions: int,
    threads_per_partition: int,
    *,
    utilization_per_partition: float = 0.4,
    supply_factor: Union[float, Tuple[float, float]] = 1.5,
    server_periods: Sequence[int] = (10, 20),
    periods: Sequence[int] = (40, 80, 160),
    edf_fraction: float = 0.0,
    scheduling: SchedulingProtocol = SchedulingProtocol.RATE_MONOTONIC,
    rng: Optional[np.random.Generator] = None,
) -> SystemInstance:
    """An ARINC-653 shape: one host processor carved into
    ``n_partitions`` virtual-processor partitions, each a periodic
    server with its own thread set -- the regime the hierarchical
    (BDR-interface) analysis targets.

    Each partition's server bandwidth is its drawn task-set demand
    times ``supply_factor`` (a ``(lo, hi)`` tuple draws the factor per
    partition): factors below 1 under-provision the partition, so a
    campaign over this generator exercises both verdicts.
    ``edf_fraction`` makes that fraction of partitions EDF-scheduled
    (the rest use ``scheduling``), covering both analytic checks.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    rng = rng or np.random.default_rng()
    builder = SystemBuilder("Partitioned")
    cpu = builder.processor("cpu", scheduling=scheduling)
    for p in range(n_partitions):
        tasks = integer_task_set(
            threads_per_partition,
            utilization_per_partition,
            periods=periods,
            rng=rng,
            name_prefix=f"p{p}t",
        )
        demand = sum(t.wcet / t.period for t in tasks)
        if isinstance(supply_factor, tuple):
            factor = float(rng.uniform(*supply_factor))
        else:
            factor = float(supply_factor)
        server_period = int(rng.choice(list(server_periods)))
        budget = int(round(server_period * demand * factor))
        budget = max(1, min(server_period, budget))
        protocol = (
            SchedulingProtocol.EARLIEST_DEADLINE_FIRST
            if rng.random() < edf_fraction
            else scheduling
        )
        partition = builder.virtual_processor(
            f"part{p}",
            period=ms(server_period),
            budget=ms(budget),
            scheduling=protocol,
            processor=cpu,
        )
        for task in tasks:
            builder.thread(
                task.name,
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(task.period),
                compute_time=(ms(task.wcet), ms(task.wcet)),
                deadline=ms(task.deadline),
                processor=partition,
            )
    return builder.instantiate()


def multiprocessor_system(
    n_processors: int,
    threads_per_processor: int,
    *,
    utilization_per_processor: float = 0.5,
    shared_bus: bool = True,
    scheduling: SchedulingProtocol = SchedulingProtocol.RATE_MONOTONIC,
    periods: Sequence[int] = (4, 8),
    rng: Optional[np.random.Generator] = None,
) -> SystemInstance:
    """Several processors, each with its own thread set; optionally every
    processor's first thread sends over one shared bus (cross-processor
    contention as in Figure 1)."""
    rng = rng or np.random.default_rng()
    builder = SystemBuilder("Multi")
    bus = builder.bus("net") if shared_bus else None
    sink_cpu = builder.processor("sink_cpu", scheduling=scheduling)
    sink = builder.thread(
        "sink",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(max(periods)),
        compute_time=(ms(1), ms(1)),
        deadline=ms(max(periods)),
        processor=sink_cpu,
    )
    for p in range(n_processors):
        cpu = builder.processor(f"cpu{p}", scheduling=scheduling)
        tasks = integer_task_set(
            threads_per_processor,
            utilization_per_processor,
            periods=periods,
            rng=rng,
            name_prefix=f"p{p}t",
        )
        for index, task in enumerate(tasks):
            thread = builder.thread(
                task.name,
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(task.period),
                compute_time=(ms(task.wcet), ms(task.wcet)),
                deadline=ms(task.deadline),
                processor=cpu,
            )
            if shared_bus and index == 0:
                thread.out_data_port("out")
                sink.in_data_port(f"in_p{p}")
                builder.connect(thread, "out", sink, f"in_p{p}", bus=bus)
    return builder.instantiate()


def faulty_modal_system(
    n_modes: int = 3,
    threads_per_mode: int = 2,
    *,
    utilization: Union[float, Tuple[float, float]] = (0.35, 0.85),
    shared_utilization: Union[float, Tuple[float, float]] = (0.05, 0.25),
    shared_threads: int = 1,
    periods: Sequence[int] = (4, 8, 16),
    scheduling: SchedulingProtocol = SchedulingProtocol.RATE_MONOTONIC,
    include_orphan: bool = False,
    rng: Optional[np.random.Generator] = None,
):
    """A fault/recovery modal system: the scenario family of
    :mod:`repro.modal`.

    One processor, a mode cycle ``nominal -> error -> recovery -> ...
    -> nominal`` driven by event ports of an always-active ``monitor``
    thread, ``shared_threads`` threads active in every mode (they carry
    jobs across a switch) and ``threads_per_mode`` mode-local threads
    each.  Per-mode utilization is drawn from ``utilization`` (a
    ``(lo, hi)`` tuple draws per mode), so a seed campaign covers modes
    that are schedulable alone while their transition transient
    overloads -- exactly the regime where the asynchronous protocol's
    escalated simulation earns its keep.  ``include_orphan`` adds an
    overloaded ``maintenance`` mode no transition reaches, exercising
    reachability skipping.

    Returns the **declarative model** (root ``FaultyModal.impl``), not
    an instance: transition-aware analysis re-instantiates per mode.
    """
    if n_modes < 2:
        raise ValueError("need at least two modes to have a transition")
    rng = rng or np.random.default_rng()
    builder = SystemBuilder("FaultyModal")
    cpu = builder.processor("cpu", scheduling=scheduling)

    base_names = ["nominal", "error", "recovery"]
    names = [
        base_names[i] if i < len(base_names) else f"degraded{i}"
        for i in range(n_modes)
    ]
    for index, name in enumerate(names):
        builder.mode(name, initial=index == 0)
    trigger_names = ["fault", "recover", "cleared"]
    monitor = builder.thread(
        "monitor",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(2 * max(periods)),
        compute_time=(ms(1), ms(1)),
        deadline=ms(2 * max(periods)),
        processor=cpu,
    )
    for index, name in enumerate(names):
        trigger = (
            trigger_names[index]
            if index < len(trigger_names)
            else f"ev{index}"
        )
        monitor.out_event_port(trigger)
        builder.mode_transition(
            name, f"monitor.{trigger}", names[(index + 1) % n_modes]
        )

    def _draw(spec) -> float:
        if isinstance(spec, tuple):
            return float(rng.uniform(*spec))
        return float(spec)

    for task in integer_task_set(
        shared_threads, _draw(shared_utilization),
        periods=periods, rng=rng, name_prefix="shared",
    ):
        builder.thread(
            task.name,
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(task.period),
            compute_time=(ms(task.wcet), ms(task.wcet)),
            deadline=ms(task.deadline),
            processor=cpu,
        )
    for index, name in enumerate(names):
        for task in integer_task_set(
            threads_per_mode, _draw(utilization),
            periods=periods, rng=rng, name_prefix=f"m{index}t",
        ):
            builder.thread(
                task.name,
                dispatch=DispatchProtocol.PERIODIC,
                period=ms(task.period),
                compute_time=(ms(task.wcet), ms(task.wcet)),
                deadline=ms(task.deadline),
                processor=cpu,
                in_modes=(name,),
            )
    if include_orphan:
        builder.mode("maintenance")
        builder.thread(
            "sweeper",
            dispatch=DispatchProtocol.PERIODIC,
            period=ms(min(periods)),
            compute_time=(ms(min(periods)), ms(min(periods))),
            deadline=ms(min(periods)),
            processor=cpu,
            in_modes=("maintenance",),
        )
    return builder.declarative()
