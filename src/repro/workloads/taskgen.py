"""Parameterized random task-set generators for differential testing.

The oracle campaigns (:mod:`repro.oracle`) need workload families that
probe *different* corners of the schedulability landscape, each with a
known relationship to the classical analyses:

* ``uniform`` -- :func:`repro.workloads.uunifast.integer_task_set`:
  implicit deadlines, synchronous release.  RTA / the EDF demand
  criterion / one simulated hyperperiod are all *exact* here.
* ``harmonic`` -- periods form a divisibility chain, where RM is
  optimal (schedulable iff U <= 1) and full-utilization boundary cases
  are common rather than exceptional.
* ``constrained`` -- deadlines drawn uniformly in ``[C, T]``; the
  utilization bounds no longer apply, RTA under deadline-monotonic
  ordering and the demand criterion stay exact.
* ``offset`` -- release offsets drawn in ``[0, T)``; the synchronous
  analyses (RTA, demand) become *sufficient only* (the critical-instant
  worst case may never occur), and a simulated ``O_max + 2H`` window is
  the exact reference.

Every generator is a pure function of an explicit numpy generator, so a
``(generator name, seed, params)`` triple reproduces its task set
byte-for-byte -- the contract the oracle's repro bundles rely on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchedError
from repro.sched.taskmodel import PeriodicTask, TaskSet
from repro.workloads.uunifast import DEFAULT_PERIODS, integer_task_set, uunifast

#: Default harmonic chain: every period divides every larger one, so the
#: hyperperiod equals the largest period.
HARMONIC_PERIODS: Tuple[int, ...] = (4, 8, 16)

#: Generator signature shared by every entry in :data:`GENERATORS`.
GeneratorFn = Callable[..., TaskSet]


def harmonic_task_set(
    n: int,
    total_utilization: float,
    *,
    periods: Sequence[int] = HARMONIC_PERIODS,
    rng: Optional[np.random.Generator] = None,
    name_prefix: str = "t",
) -> TaskSet:
    """Integer task set over a harmonic period chain.

    ``periods`` must form a divisibility chain (each divides the next);
    RM is an optimal priority assignment on such sets, so schedulable
    boundary cases sit exactly at U = 1.
    """
    ordered = sorted(periods)
    for small, large in zip(ordered, ordered[1:]):
        if large % small != 0:
            raise SchedError(
                f"harmonic period pool must form a divisibility chain, "
                f"got {small} and {large}"
            )
    return integer_task_set(
        n,
        total_utilization,
        periods=ordered,
        rng=rng or np.random.default_rng(),
        name_prefix=name_prefix,
    )


def constrained_deadline_task_set(
    n: int,
    total_utilization: float,
    *,
    periods: Sequence[int] = DEFAULT_PERIODS,
    rng: Optional[np.random.Generator] = None,
    name_prefix: str = "t",
) -> TaskSet:
    """Integer task set with deadlines drawn uniformly in ``[C, T]``.

    Exercises the constrained-deadline regime where the utilization
    bounds are inapplicable and deadline-monotonic ordering (not RM) is
    the optimal fixed-priority assignment.
    """
    rng = rng or np.random.default_rng()
    base = integer_task_set(
        n, total_utilization, periods=periods, rng=rng,
        name_prefix=name_prefix,
    )
    tasks: List[PeriodicTask] = []
    for task in base:
        deadline = int(rng.integers(task.wcet, task.period + 1))
        tasks.append(
            PeriodicTask(
                task.name,
                wcet=task.wcet,
                period=task.period,
                deadline=deadline,
            )
        )
    return TaskSet(tasks)


def offset_task_set(
    n: int,
    total_utilization: float,
    *,
    periods: Sequence[int] = DEFAULT_PERIODS,
    rng: Optional[np.random.Generator] = None,
    name_prefix: str = "t",
) -> TaskSet:
    """Integer task set with release offsets drawn uniformly in ``[0, T)``.

    Offsets break the synchronous critical instant: RTA and the demand
    criterion become sufficient-only, and a simulation over
    ``max(offset) + 2 * hyperperiod`` is the exact reference.
    """
    rng = rng or np.random.default_rng()
    base = integer_task_set(
        n, total_utilization, periods=periods, rng=rng,
        name_prefix=name_prefix,
    )
    tasks: List[PeriodicTask] = []
    for task in base:
        offset = int(rng.integers(0, task.period))
        tasks.append(
            PeriodicTask(
                task.name,
                wcet=task.wcet,
                period=task.period,
                offset=offset,
            )
        )
    return TaskSet(tasks)


#: Registry keyed by the names used in oracle campaigns and repro bundles.
GENERATORS: Dict[str, GeneratorFn] = {
    "uniform": integer_task_set,
    "harmonic": harmonic_task_set,
    "constrained": constrained_deadline_task_set,
    "offset": offset_task_set,
}


def generate_task_set(
    generator: str,
    n: int,
    total_utilization: float,
    *,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    **params,
) -> TaskSet:
    """Draw a task set from a named generator.

    Either ``seed`` or an explicit ``rng`` fixes the draw; a given
    ``(generator, seed, n, total_utilization, params)`` tuple is fully
    reproducible.
    """
    try:
        fn = GENERATORS[generator]
    except KeyError:
        raise SchedError(
            f"unknown task-set generator {generator!r}; "
            f"choose from {sorted(GENERATORS)}"
        ) from None
    if rng is None:
        rng = np.random.default_rng(seed)
    return fn(n, total_utilization, rng=rng, **params)
