"""UUniFast utilization sampling (Bini & Buttazzo 2005).

Draws task utilizations uniformly from the simplex ``sum(U_i) = U``,
avoiding the bias of naive normalization.  On top of it,
:func:`integer_task_set` produces integer ``(C, T)`` pairs suitable for
the quantized analyses (small periods keep hyperperiods -- and ACSR state
spaces -- tractable).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchedError
from repro.sched.taskmodel import PeriodicTask, TaskSet

#: Default period pool: pairwise-divisible values keep hyperperiods small.
DEFAULT_PERIODS: Tuple[int, ...] = (4, 8, 12, 24)


def uunifast(
    n: int,
    total_utilization: float,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """n utilizations summing to ``total_utilization`` (UUniFast)."""
    if n < 1:
        raise SchedError(f"need at least one task, got {n}")
    if total_utilization <= 0:
        raise SchedError(
            f"total utilization must be positive, got {total_utilization}"
        )
    rng = rng or np.random.default_rng()
    utilizations: List[float] = []
    remaining = total_utilization
    for i in range(n - 1):
        next_remaining = remaining * float(rng.random()) ** (1.0 / (n - i - 1))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def integer_task_set(
    n: int,
    total_utilization: float,
    *,
    periods: Sequence[int] = DEFAULT_PERIODS,
    rng: Optional[np.random.Generator] = None,
    name_prefix: str = "t",
) -> TaskSet:
    """Integer task set approximating a UUniFast draw.

    Each task gets a period from ``periods`` and
    ``C = clamp(round(U * T), 1, T)``; the realized utilization therefore
    deviates slightly from the target (the deviation shrinks with larger
    periods).  Implicit deadlines.
    """
    rng = rng or np.random.default_rng()
    utilizations = uunifast(n, total_utilization, rng)
    tasks: List[PeriodicTask] = []
    for index, u in enumerate(utilizations):
        period = int(rng.choice(np.asarray(periods)))
        wcet = int(np.clip(round(u * period), 1, period))
        tasks.append(
            PeriodicTask(f"{name_prefix}{index}", wcet=wcet, period=period)
        )
    return TaskSet(tasks)
