"""repro: schedulability analysis of AADL models via ACSR.

A from-scratch reproduction of *Schedulability Analysis of AADL Models*
(Sokolsky, Lee & Clarke, IPDPS 2006).  The library provides:

* :mod:`repro.aadl` -- an AADL object model, textual parser, instantiation
  and binding resolution;
* :mod:`repro.acsr` -- the ACSR real-time process algebra with prioritized
  operational semantics;
* :mod:`repro.engine` -- the unified exploration engine: pluggable
  search strategies (BFS/DFS/random walk), explicit transition caches,
  budgets and observer instrumentation (see ``docs/engine.md``);
* :mod:`repro.versa` -- the VERSA-style analysis surface over the engine:
  deadlock detection, counterexample traces, LTS export, minimization;
* :mod:`repro.translate` -- the paper's Algorithm 1 translation of AADL
  models into ACSR;
* :mod:`repro.sched` -- classical schedulability baselines (utilization
  bounds, response-time analysis, EDF demand analysis, discrete-event
  simulation);
* :mod:`repro.analysis` -- the user-facing front end: translate, explore,
  raise failing scenarios back to AADL terms.

Quickstart::

    from repro import analyze_model
    from repro.aadl import parse_model

    model = parse_model(open("system.aadl").read())
    result = analyze_model(model)
    print(result.verdict, result.scenario)
"""

from repro._version import __version__

__all__ = ["__version__", "analyze_model"]


def analyze_model(*args, **kwargs):
    """Lazy wrapper for :func:`repro.analysis.schedulability.analyze_model`."""
    from repro.analysis.schedulability import analyze_model as _impl

    return _impl(*args, **kwargs)
