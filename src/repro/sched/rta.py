"""Response-time analysis for fixed-priority preemptive scheduling.

Joseph & Pandya / Audsley et al.: the worst-case response time of task i
(with higher-priority set hp(i)) is the least fixed point of

    R = C_i + sum_{j in hp(i)} ceil(R / T_j) * C_j

computed by iteration from R = C_i.  The set is schedulable iff
R_i <= D_i for all i.

Exactness is conditional: the fixed point is the true worst case only
under *synchronous* release, where t = 0 is the critical instant.  Once
any task carries a nonzero offset the synchronous analysis is merely an
upper bound -- a "False" cannot prove unschedulability, because the
offsets may keep the critical instant from ever occurring.
:func:`rta_exactness` makes that demotion explicit; every consumer
(oracle relations, the portfolio RTA tier) asks it before drawing an
UNSCHEDULABLE conclusion.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import SchedError
from repro.sched.taskmodel import PeriodicTask, TaskSet


def response_time(
    task: PeriodicTask,
    higher_priority: Sequence[PeriodicTask],
    *,
    limit: Optional[int] = None,
) -> Optional[int]:
    """Worst-case synchronous response time, or None when iteration
    exceeds ``limit`` (divergence: the response exceeds any bound up to
    ``limit``).

    ``limit`` defaults to the task's deadline -- adequate for a
    schedulability verdict, where "diverged past the deadline" and
    "misses the deadline" coincide.  Callers that need the actual
    response of a deadline-missing task (witness synthesis, reports)
    pass a larger limit; see :func:`response_times`."""
    limit = task.deadline if limit is None else limit
    response = task.wcet
    while True:
        interference = sum(
            math.ceil(response / other.period) * other.wcet
            for other in higher_priority
        )
        next_response = task.wcet + interference
        if next_response == response:
            return response
        if next_response > limit:
            return None
        response = next_response


def rta_exactness(tasks: TaskSet) -> str:
    """How the synchronous RTA verdict relates to the true one.

    ``"exact"`` when every task releases at t = 0 (the synchronous
    pattern is the critical instant); ``"sufficient"`` when any task has
    a nonzero offset -- then a passing RTA still proves schedulability
    (the synchronous response upper-bounds every offset pattern), but a
    failing RTA proves nothing, mirroring the oracle's demotion of
    offset-bearing cases."""
    synchronous = all(task.offset == 0 for task in tasks)
    return "exact" if synchronous else "sufficient"


def rta_schedulable(tasks: TaskSet, *, ordering: str = "rate") -> bool:
    """Fixed-priority verdict from the synchronous critical instant.

    Exact for synchronous constrained-deadline periodic task sets; for
    offset-bearing sets the verdict is sufficient-only (``True`` is
    sound, ``False`` is inconclusive) -- consult :func:`rta_exactness`
    before concluding unschedulability.

    ``ordering``: ``"rate"`` (RM), ``"deadline"`` (DM) or ``"explicit"``
    (the Priority property).
    """
    ordered = _ordered(tasks, ordering)
    for index, task in enumerate(ordered):
        response = response_time(task, ordered[:index])
        if response is None or response > task.deadline:
            return False
    return True


def response_times(
    tasks: TaskSet, *, ordering: str = "rate", limit: Optional[int] = None
) -> Dict[str, Optional[int]]:
    """Per-task worst-case synchronous response times.

    A computed response is returned even when it exceeds the deadline --
    callers compare against ``task.deadline`` themselves, so a report
    can show *by how much* a task misses.  ``None`` is reserved for
    genuine divergence: the iteration escaped ``limit`` without reaching
    a fixed point.  ``limit`` defaults to the task set's hyperperiod
    (the level-i busy period cannot extend past it while U <= 1; an
    over-utilized set diverges, and ``None`` is the honest answer).

    Previously both "diverged" and "exceeds the deadline" collapsed to
    ``None``, which made a 1-quantum miss indistinguishable from an
    unbounded backlog.
    """
    if limit is None:
        limit = max(
            tasks.hyperperiod, max(task.deadline for task in tasks)
        )
    ordered = _ordered(tasks, ordering)
    result: Dict[str, Optional[int]] = {}
    for index, task in enumerate(ordered):
        result[task.name] = response_time(
            task, ordered[:index], limit=limit
        )
    return result


def _ordered(tasks: TaskSet, ordering: str) -> List[PeriodicTask]:
    if ordering == "rate":
        return tasks.by_rate_monotonic()
    if ordering == "deadline":
        return tasks.by_deadline_monotonic()
    if ordering == "explicit":
        return tasks.by_explicit_priority()
    raise SchedError(f"unknown priority ordering {ordering!r}")
