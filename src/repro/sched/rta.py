"""Exact response-time analysis for fixed-priority preemptive scheduling.

Joseph & Pandya / Audsley et al.: the worst-case response time of task i
(with higher-priority set hp(i)) is the least fixed point of

    R = C_i + sum_{j in hp(i)} ceil(R / T_j) * C_j

computed by iteration from R = C_i.  The set is schedulable iff
R_i <= D_i for all i.  Exact for synchronous constrained-deadline
periodic task sets -- which is precisely the regime in which the ACSR
verdict must agree with it (cross-validated in tests and benches).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import SchedError
from repro.sched.taskmodel import PeriodicTask, TaskSet


def response_time(
    task: PeriodicTask,
    higher_priority: Sequence[PeriodicTask],
    *,
    limit: Optional[int] = None,
) -> Optional[int]:
    """Worst-case response time, or None when iteration exceeds ``limit``
    (divergence: the task is unschedulable at any bound >= limit).

    ``limit`` defaults to the task's deadline -- adequate for a
    schedulability verdict."""
    limit = task.deadline if limit is None else limit
    response = task.wcet
    while True:
        interference = sum(
            math.ceil(response / other.period) * other.wcet
            for other in higher_priority
        )
        next_response = task.wcet + interference
        if next_response == response:
            return response
        if next_response > limit:
            return None
        response = next_response


def rta_schedulable(tasks: TaskSet, *, ordering: str = "rate") -> bool:
    """Exact fixed-priority verdict.

    ``ordering``: ``"rate"`` (RM), ``"deadline"`` (DM) or ``"explicit"``
    (the Priority property).
    """
    ordered = _ordered(tasks, ordering)
    for index, task in enumerate(ordered):
        response = response_time(task, ordered[:index])
        if response is None or response > task.deadline:
            return False
    return True


def response_times(
    tasks: TaskSet, *, ordering: str = "rate"
) -> Dict[str, Optional[int]]:
    """Per-task worst-case response times (None = exceeds deadline)."""
    ordered = _ordered(tasks, ordering)
    result: Dict[str, Optional[int]] = {}
    for index, task in enumerate(ordered):
        response = response_time(task, ordered[:index])
        result[task.name] = (
            response if response is not None and response <= task.deadline
            else None
        )
    return result


def _ordered(tasks: TaskSet, ordering: str) -> List[PeriodicTask]:
    if ordering == "rate":
        return tasks.by_rate_monotonic()
    if ordering == "deadline":
        return tasks.by_deadline_monotonic()
    if ordering == "explicit":
        return tasks.by_explicit_priority()
    raise SchedError(f"unknown priority ordering {ordering!r}")
