"""Processor-demand analysis for EDF (exact for synchronous sets).

Baruah, Rosier & Howell: a synchronous constrained-deadline periodic task
set is EDF-schedulable iff U <= 1 and for every absolute deadline
``t`` up to the hyperperiod (bounded further by the standard L* bound)

    dbf(t) = sum_i max(0, floor((t - D_i) / T_i) + 1) * C_i  <=  t.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.errors import SchedError
from repro.sched.taskmodel import TaskSet


def demand_bound_function(tasks: TaskSet, t: int) -> int:
    """Total execution demand of jobs released and due within [0, t]."""
    demand = 0
    for task in tasks:
        if t >= task.deadline:
            demand += ((t - task.deadline) // task.period + 1) * task.wcet
    return demand


def _check_points(tasks: TaskSet, horizon: int) -> Iterable[int]:
    points: Set[int] = set()
    for task in tasks:
        deadline = task.deadline
        while deadline <= horizon:
            points.add(deadline)
            deadline += task.period
    return sorted(points)


def edf_schedulable(tasks: TaskSet) -> bool:
    """Exact EDF verdict for a synchronous constrained-deadline set."""
    if len(tasks) == 0:
        raise SchedError("empty task set")
    total_u = tasks.utilization
    if total_u > 1.0 + 1e-12:
        return False
    horizon = tasks.hyperperiod
    if total_u < 1.0 - 1e-12:
        # L* bound: busy periods cannot extend past this point.
        lstar = sum(
            (task.period - task.deadline) * task.utilization
            for task in tasks
        ) / (1.0 - total_u)
        horizon = min(horizon, max(1, int(lstar) + 1))
    for t in _check_points(tasks, horizon):
        if demand_bound_function(tasks, t) > t:
            return False
    return True
