"""Cheddar-style discrete-time scheduler simulation (paper S6).

Simulates one synchronous run of a periodic task set over the
hyperperiod under a preemptive scheduling policy.  For deterministic
synchronous periodic sets this single run is the worst case and the
verdict is exact; with execution-time uncertainty or event-driven
dispatching it is only *one* behaviour -- the contrast the paper draws
against exhaustive state-space exploration ("exploring the state space
of a formal executable model offers exhaustive analysis of all possible
behaviors").

The simulator also produces a per-quantum schedule usable as a Gantt
chart, mirroring the timeline view of the analysis front end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedError
from repro.sched.taskmodel import PeriodicTask, TaskSet

#: Utilization comparisons tolerate float rounding, matching the
#: portfolio tiers and the oracle relations.
_EPSILON = 1e-12


def exact_simulation_horizon(tasks: TaskSet) -> Optional[int]:
    """The window over which one worst-case run decides exactly.

    One hyperperiod for synchronous sets; ``O_max + 2H`` for
    offset-bearing ones (Leung & Merrill: the schedule repeats from
    ``O_max + H`` on, so any miss shows up inside ``O_max + 2H``).
    Returns None when ``U > 1`` -- backlog then grows without bound and
    may defer the first miss past any fixed window, so no finite
    horizon is exact (the utilization cap already decides those sets).
    """
    max_offset = max(task.offset for task in tasks)
    if max_offset == 0:
        return tasks.hyperperiod
    if tasks.utilization > 1.0 + _EPSILON:
        return None
    return max_offset + 2 * tasks.hyperperiod


class _Job:
    __slots__ = ("task", "release", "deadline", "remaining")

    def __init__(self, task: PeriodicTask, release: int) -> None:
        self.task = task
        self.release = release
        self.deadline = release + task.deadline
        self.remaining = task.wcet


class SimulationResult:
    """Outcome of one simulated run."""

    def __init__(
        self,
        horizon: int,
        schedule: List[Optional[str]],
        misses: List[Tuple[str, int]],
        response_times: Dict[str, Optional[int]],
    ) -> None:
        self.horizon = horizon
        #: task name executing in each quantum (None = idle)
        self.schedule = schedule
        #: (task name, absolute time) of each deadline miss
        self.misses = misses
        #: observed worst-case response time per task; None for tasks
        #: with no completed job in the window (every job missed and
        #: was abandoned, or none finished before the horizon) -- a 0
        #: here used to masquerade as a perfect response
        self.response_times = response_times

    @property
    def schedulable(self) -> bool:
        return not self.misses

    def gantt(self, tasks: Sequence[str]) -> str:
        """ASCII Gantt chart, one row per task."""
        lines = []
        width = max((len(name) for name in tasks), default=0)
        for name in tasks:
            row = "".join(
                "#" if slot == name else "." for slot in self.schedule
            )
            lines.append(f"{name:<{width}} |{row}|")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SimulationResult(horizon={self.horizon}, "
            f"misses={len(self.misses)})"
        )


def simulate(
    tasks: TaskSet,
    *,
    policy: str = "rate",
    horizon: Optional[int] = None,
    stop_at_first_miss: bool = False,
) -> SimulationResult:
    """Simulate a synchronous run under ``policy``.

    Policies: ``"rate"`` (RM), ``"deadline"`` (DM), ``"explicit"``
    (Priority property), ``"edf"``, ``"llf"``.
    """
    if len(tasks) == 0:
        raise SchedError("empty task set")
    if horizon is None:
        horizon = exact_simulation_horizon(tasks)
        if horizon is None:
            # Over-utilized: no finite window is exact anyway, so keep
            # the cheap one-hyperperiod sweep (plus the offset lead-in)
            # as a best-effort miss hunt.
            horizon = tasks.hyperperiod + max(
                task.offset for task in tasks
            )

    static_rank: Dict[str, int] = {}
    if policy in ("rate", "deadline", "explicit"):
        if policy == "rate":
            ordered = tasks.by_rate_monotonic()
        elif policy == "deadline":
            ordered = tasks.by_deadline_monotonic()
        else:
            ordered = tasks.by_explicit_priority()
        static_rank = {task.name: idx for idx, task in enumerate(ordered)}
    elif policy not in ("edf", "llf"):
        raise SchedError(f"unknown policy {policy!r}")

    ready: List[_Job] = []
    schedule: List[Optional[str]] = []
    misses: List[Tuple[str, int]] = []
    response: Dict[str, Optional[int]] = {task.name: None for task in tasks}

    for now in range(horizon):
        for task in tasks:
            if now >= task.offset and (now - task.offset) % task.period == 0:
                ready.append(_Job(task, now))

        # Deadline misses: jobs still pending at their absolute deadline.
        still_ready: List[_Job] = []
        for job in ready:
            if job.remaining > 0 and now >= job.deadline:
                misses.append((job.task.name, job.deadline))
                if stop_at_first_miss:
                    return SimulationResult(
                        now, schedule, misses, response
                    )
                # Abandon the late job (the ACSR model deadlocks here; the
                # simulator keeps going to report all misses).
                continue
            still_ready.append(job)
        ready = still_ready

        running = _pick(ready, policy, static_rank, now)
        if running is None:
            schedule.append(None)
            continue
        schedule.append(running.task.name)
        running.remaining -= 1
        if running.remaining == 0:
            finish = now + 1 - running.release
            seen = response[running.task.name]
            response[running.task.name] = (
                finish if seen is None else max(seen, finish)
            )
            ready.remove(running)

    # Jobs unfinished at the horizon with deadlines inside it are misses.
    for job in ready:
        if job.remaining > 0 and job.deadline <= horizon:
            misses.append((job.task.name, job.deadline))
    return SimulationResult(horizon, schedule, misses, response)


def _pick(
    ready: List[_Job],
    policy: str,
    static_rank: Dict[str, int],
    now: int,
) -> Optional[_Job]:
    pending = [job for job in ready if job.remaining > 0]
    if not pending:
        return None
    if policy in ("rate", "deadline", "explicit"):
        return min(
            pending, key=lambda job: (static_rank[job.task.name], job.release)
        )
    if policy == "edf":
        return min(pending, key=lambda job: (job.deadline, job.task.name))
    # LLF: laxity = time-to-deadline minus remaining work.
    return min(
        pending,
        key=lambda job: (job.deadline - now - job.remaining, job.task.name),
    )
