"""Classical schedulability baselines.

The paper positions exhaustive ACSR exploration against "more traditional
schedulability analysis algorithms" (S1) and simulation-based tools like
Cheddar (S6).  This subpackage implements those comparators:

* :mod:`~repro.sched.taskmodel` -- extraction of a periodic/sporadic task
  set abstraction from an AADL instance;
* :mod:`~repro.sched.utilization` -- Liu & Layland and hyperbolic
  utilization bounds (sufficient tests);
* :mod:`~repro.sched.rta` -- exact response-time analysis for
  fixed-priority preemptive scheduling;
* :mod:`~repro.sched.demand` -- the processor-demand criterion for EDF
  (exact for synchronous constrained-deadline task sets);
* :mod:`~repro.sched.simulation` -- a Cheddar-style discrete-time
  scheduler simulation over the hyperperiod (exact for deterministic
  synchronous periodic sets; a *single run*, unlike the exhaustive ACSR
  exploration).

These serve both as benchmark baselines (who wins, where) and as
cross-validation oracles for the ACSR verdicts.
"""

from repro.sched.taskmodel import PeriodicTask, TaskSet, extract_task_set
from repro.sched.utilization import (
    hyperbolic_bound_test,
    liu_layland_bound,
    liu_layland_test,
    utilization,
)
from repro.sched.rta import (
    response_time,
    response_times,
    rta_exactness,
    rta_schedulable,
)
from repro.sched.demand import demand_bound_function, edf_schedulable
from repro.sched.simulation import SimulationResult, simulate

__all__ = [
    "PeriodicTask",
    "SimulationResult",
    "TaskSet",
    "demand_bound_function",
    "edf_schedulable",
    "extract_task_set",
    "hyperbolic_bound_test",
    "liu_layland_bound",
    "liu_layland_test",
    "response_time",
    "response_times",
    "rta_exactness",
    "rta_schedulable",
    "simulate",
    "utilization",
]
