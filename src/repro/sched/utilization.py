"""Utilization-bound schedulability tests (sufficient, not necessary).

* Liu & Layland (1973): a set of n implicit-deadline periodic tasks is
  RM-schedulable if U <= n(2^(1/n) - 1).
* Hyperbolic bound (Bini, Buttazzo & Buttazzo 2003): schedulable if
  prod(U_i + 1) <= 2 -- strictly dominates the LL bound.

These are the "traditional schedulability analysis algorithms" the paper
contrasts with: fast, but inapplicable once the model has complex
interaction patterns, and pessimistic even where they apply.
"""

from __future__ import annotations

from typing import Union

from repro.errors import SchedError
from repro.sched.taskmodel import TaskSet


def utilization(tasks: TaskSet) -> float:
    """Total processor utilization sum(C_i / T_i)."""
    return tasks.utilization


def liu_layland_bound(n: int) -> float:
    """The RM utilization bound for n tasks; ln 2 as n -> infinity."""
    if n < 1:
        raise SchedError(f"need at least one task, got {n}")
    return n * (2.0 ** (1.0 / n) - 1.0)


def liu_layland_test(tasks: TaskSet) -> bool:
    """Sufficient RM test: U <= n(2^(1/n)-1).

    Requires implicit deadlines (D == T); raises otherwise, because the
    bound is not valid for constrained deadlines.
    """
    _require_implicit_deadlines(tasks)
    return tasks.utilization <= liu_layland_bound(len(tasks)) + 1e-12


def hyperbolic_bound_test(tasks: TaskSet) -> bool:
    """Sufficient RM test: prod(U_i + 1) <= 2 (implicit deadlines)."""
    _require_implicit_deadlines(tasks)
    product = 1.0
    for task in tasks:
        product *= task.utilization + 1.0
    return product <= 2.0 + 1e-12


def _require_implicit_deadlines(tasks: TaskSet) -> None:
    if len(tasks) == 0:
        raise SchedError("empty task set")
    for task in tasks:
        if task.deadline != task.period:
            raise SchedError(
                f"task {task.name}: utilization bounds require implicit "
                f"deadlines (D == T), got D={task.deadline}, T={task.period}"
            )
