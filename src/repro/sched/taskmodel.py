"""Periodic task-set abstraction of an AADL model.

Classical schedulability theory works on task tuples ``(C, T, D)``; this
module extracts them from a bound AADL instance (worst-case execution
times, quantized) so the baselines and the ACSR verdict can be compared
on the same inputs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import SchedError
from repro.aadl.instance import ComponentInstance, SystemInstance
from repro.aadl.properties import (
    DISPATCH_PROTOCOL,
    PRIORITY,
    DispatchProtocol,
)
from repro.translate.quantum import TimingQuantizer


class PeriodicTask:
    """One periodic (or sporadic, treated as its worst case) task."""

    __slots__ = (
        "name", "wcet", "period", "deadline", "priority", "bcet", "offset",
    )

    def __init__(
        self,
        name: str,
        wcet: int,
        period: int,
        deadline: Optional[int] = None,
        priority: Optional[int] = None,
        bcet: Optional[int] = None,
        offset: int = 0,
    ) -> None:
        if wcet < 1:
            raise SchedError(f"task {name}: WCET must be >= 1, got {wcet}")
        if period < 1:
            raise SchedError(f"task {name}: period must be >= 1, got {period}")
        deadline = period if deadline is None else deadline
        if deadline < wcet:
            raise SchedError(
                f"task {name}: deadline {deadline} < WCET {wcet}"
            )
        if deadline > period:
            raise SchedError(
                f"task {name}: deadline {deadline} > period {period} "
                f"(constrained deadlines required)"
            )
        bcet = wcet if bcet is None else bcet
        if not (1 <= bcet <= wcet):
            raise SchedError(
                f"task {name}: BCET {bcet} out of range [1, {wcet}]"
            )
        if not (0 <= offset < period):
            raise SchedError(
                f"task {name}: offset {offset} out of range [0, {period})"
            )
        self.offset = offset
        self.name = name
        self.wcet = wcet
        self.period = period
        self.deadline = deadline
        self.priority = priority
        self.bcet = bcet

    @property
    def utilization(self) -> float:
        return self.wcet / self.period

    def __repr__(self) -> str:
        return (
            f"PeriodicTask({self.name!r}, C={self.wcet}, T={self.period}, "
            f"D={self.deadline})"
        )


class TaskSet:
    """An ordered collection of periodic tasks on one processor."""

    def __init__(self, tasks: Sequence[PeriodicTask]) -> None:
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise SchedError("duplicate task names in task set")
        self.tasks: List[PeriodicTask] = list(tasks)

    def __iter__(self) -> Iterator[PeriodicTask]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __getitem__(self, index: int) -> PeriodicTask:
        return self.tasks[index]

    @property
    def utilization(self) -> float:
        return sum(task.utilization for task in self.tasks)

    @property
    def hyperperiod(self) -> int:
        result = 1
        for task in self.tasks:
            result = result * task.period // math.gcd(result, task.period)
        return result

    def by_rate_monotonic(self) -> List[PeriodicTask]:
        """Tasks ordered highest-priority-first under RM."""
        return sorted(self.tasks, key=lambda t: (t.period, t.name))

    def by_deadline_monotonic(self) -> List[PeriodicTask]:
        """Tasks ordered highest-priority-first under DM."""
        return sorted(self.tasks, key=lambda t: (t.deadline, t.name))

    def by_explicit_priority(self) -> List[PeriodicTask]:
        """Tasks ordered highest-priority-first by the Priority property
        (larger value = higher priority)."""
        for task in self.tasks:
            if task.priority is None:
                raise SchedError(
                    f"task {task.name} has no explicit priority"
                )
        return sorted(self.tasks, key=lambda t: (-t.priority, t.name))

    def __repr__(self) -> str:
        return f"TaskSet({self.tasks!r})"


def extract_task_set(
    instance: SystemInstance,
    processor: ComponentInstance,
    quantizer: Optional[TimingQuantizer] = None,
) -> TaskSet:
    """Task-set abstraction of the periodic/sporadic threads bound to one
    processor, in quanta.

    Aperiodic and background threads have no period and are skipped (the
    classical tests do not apply to them); the exhaustive ACSR analysis
    is the tool that covers them.
    """
    quantizer = quantizer or TimingQuantizer.natural(instance)
    tasks: List[PeriodicTask] = []
    for thread in instance.threads():
        if thread.bound_processor is not processor:
            continue
        protocol = thread.property(DISPATCH_PROTOCOL)
        if protocol not in (
            DispatchProtocol.PERIODIC,
            DispatchProtocol.SPORADIC,
        ):
            continue
        timing = quantizer.thread_timing(thread)
        if timing.period is None:
            raise SchedError(
                f"{thread.qualified_name}: periodic/sporadic thread "
                f"without a period"
            )
        tasks.append(
            PeriodicTask(
                thread.qualified_name,
                wcet=timing.cmax,
                period=timing.period,
                deadline=timing.deadline,
                priority=thread.property_int(PRIORITY),
                bcet=timing.cmin,
                offset=timing.offset,
            )
        )
    return TaskSet(tasks)
