"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-hierarchies mirror the
package layout: AADL modelling errors, ACSR semantic errors, translation
errors and analysis errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# AADL substrate
# ---------------------------------------------------------------------------


class AadlError(ReproError):
    """Base class for errors in the AADL object model."""


class AadlSyntaxError(AadlError):
    """Raised by the textual AADL parser on malformed input."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class AadlNameError(AadlError):
    """Unknown or duplicate declaration name."""


class AadlPropertyError(AadlError):
    """Missing, ill-typed, or out-of-range property association."""


class AadlInstantiationError(AadlError):
    """Raised when a declarative model cannot be instantiated."""


class AadlLegalityError(AadlError):
    """Violation of an AADL legality rule or a translation assumption (paper S4.1)."""


# ---------------------------------------------------------------------------
# ACSR substrate
# ---------------------------------------------------------------------------


class AcsrError(ReproError):
    """Base class for errors in the ACSR process algebra."""


class AcsrSyntaxError(AcsrError):
    """Raised by the textual ACSR parser on malformed input."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class AcsrSemanticsError(AcsrError):
    """Ill-formed term encountered while computing transitions."""


class AcsrDefinitionError(AcsrError):
    """Unknown process name, arity mismatch, or unbounded parameter."""


class AcsrEvaluationError(AcsrError):
    """Expression evaluation failed (unbound parameter, division by zero...)."""


# ---------------------------------------------------------------------------
# Translation and analysis
# ---------------------------------------------------------------------------


class TranslationError(ReproError):
    """AADL model cannot be translated to ACSR."""


class QuantizationError(TranslationError):
    """A time value cannot be represented with the chosen quantum."""


class AnalysisError(ReproError):
    """State-space exploration or verdict computation failed."""


class ExplorationLimitError(AnalysisError):
    """State or transition budget exhausted before the search finished."""

    def __init__(self, message: str, states_explored: int = 0) -> None:
        self.states_explored = states_explored
        super().__init__(message)


class SchedError(ReproError):
    """Errors in the classical schedulability baselines."""


class BatchError(ReproError):
    """Malformed batch job, manifest, or verdict-cache entry."""


class ComposeError(ReproError):
    """Compositional analysis cannot proceed (malformed partition,
    island slice referencing unknown components, ...)."""


class HierError(ReproError):
    """Hierarchical (BDR-interface) analysis cannot proceed (missing
    server parameters, degenerate budget, unsupported protocol...)."""


class ServeError(ReproError):
    """Malformed analysis-service request (missing source, ill-typed
    option, unknown job id...)."""


class BackpressureError(ServeError):
    """The service's bounded job queue is full; the request was
    rejected rather than accepted beyond capacity (HTTP 429)."""
