"""The portfolio driver: analytic fast path, exploration as escalation.

:class:`PortfolioAnalyzer` runs the tier chain over the per-processor
analytic units.  Units proven schedulable accumulate across tiers (a
utilization bound may settle one processor while RTA settles another);
the first UNSCHEDULABLE unit short-circuits the whole model, carrying
its synthesized witness.  When units remain undecided after the last
tier -- or the model falls outside the classical fragment entirely --
:func:`analyze_portfolio` escalates to the exhaustive ACSR exploration
and stamps the result accordingly.

Analytic verdicts are packaged as ordinary
:class:`~repro.analysis.schedulability.AnalysisResult` objects with a
synthetic zero-state :class:`~repro.engine.result.ExplorationResult`, so
the CLI, batch pool, compose runner and oracle all consume them
unchanged; ``decided_by`` and the per-tier counters on
:class:`~repro.engine.stats.EngineStats` record who did the work.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.aadl.components import DeclarativeModel
from repro.aadl.instance import SystemInstance, instantiate
from repro.aadl.properties import TimeValue
from repro.analysis.raising import AadlScenario
from repro.analysis.schedulability import (
    AnalysisResult,
    Verdict,
    analyze_model,
)
from repro.engine.result import ExplorationResult
from repro.engine.stats import EngineStats
from repro.portfolio.context import PortfolioContext, build_context
from repro.portfolio.tiers import (
    DEFAULT_MAX_HORIZON,
    Soundness,
    Tier,
    default_tiers,
)
from repro.translate.quantum import TimingQuantizer


class PortfolioAnalyzer:
    """Runs the analytic tier chain over a model."""

    def __init__(
        self,
        tiers: Optional[Iterable[Tier]] = None,
        *,
        max_horizon: int = DEFAULT_MAX_HORIZON,
    ) -> None:
        self.tiers: List[Tier] = (
            list(tiers)
            if tiers is not None
            else default_tiers(max_horizon=max_horizon)
        )

    @property
    def config_token(self) -> str:
        """Stable name of the tier chain, for verdict-cache keys: two
        runs disagreeing on the chain must never share a cache entry."""
        return "+".join(tier.name for tier in self.tiers)

    def try_analytic(
        self,
        instance: SystemInstance,
        *,
        quantizer: Optional[TimingQuantizer] = None,
        steady_mode: bool = False,
    ) -> Optional[AnalysisResult]:
        """An analytic verdict for ``instance``, or None when the tiers
        cannot decide and the caller must explore."""
        result, _, _ = self.screen(
            instance, quantizer=quantizer, steady_mode=steady_mode
        )
        return result

    def screen(
        self,
        instance: SystemInstance,
        *,
        quantizer: Optional[TimingQuantizer] = None,
        steady_mode: bool = False,
    ) -> Tuple[Optional[AnalysisResult], Dict[str, int], List[str]]:
        """Run the tier chain; returns ``(result, attempts, trail)``.

        ``result`` is None when undecided; ``attempts`` counts tiers
        consulted (for the escalation path to fold into its stats) and
        ``trail`` narrates each tier's contribution.  ``steady_mode``
        waives the multi-modal applicability bar for instances pinned
        to one mode (see :func:`repro.portfolio.context.build_context`).
        """
        from repro.obs.tracer import current_tracer

        tracer = current_tracer()
        start = time.perf_counter()
        attempts: Dict[str, int] = {}
        trail: List[str] = []

        context = build_context(
            instance, quantizer=quantizer, steady_mode=steady_mode
        )
        if not context.applicable:
            trail.append(f"inapplicable: {context.inapplicable}")
            return None, attempts, trail

        pending = list(context.units)
        for tier in self.tiers:
            # Partition units (those carrying a BDR supply interface)
            # may only meet interface-aware tiers: a full-supply tier
            # would over-promise a partition's processor share.
            units = [
                unit
                for unit in pending
                if tier.interface_aware == (unit.interface is not None)
                and tier.applicable(unit)
            ]
            if not units:
                continue
            with tracer.span(f"portfolio.tier.{tier.name}") as span:
                attempts[tier.name] = attempts.get(tier.name, 0) + 1
                span.set(units=len(units))
                decided = []
                for unit in units:
                    decision = tier.decide(unit)
                    if decision is None:
                        continue
                    if not decision.schedulable:
                        if tier.soundness is Soundness.SUFFICIENT:
                            # A sufficient test failing proves nothing.
                            continue
                        trail.append(
                            f"{tier.name}: {unit.processor} unschedulable "
                            f"({decision.detail})"
                        )
                        span.set(verdict=Verdict.UNSCHEDULABLE.value)
                        result = self._analytic_result(
                            Verdict.UNSCHEDULABLE,
                            tier.name,
                            decision.scenario,
                            context,
                            attempts,
                            trail,
                            start,
                        )
                        return result, attempts, trail
                    if tier.soundness is Soundness.NECESSARY:
                        # A necessary test passing proves nothing.
                        continue
                    decided.append(unit)
                    trail.append(
                        f"{tier.name}: {unit.processor} schedulable "
                        f"({decision.detail})"
                    )
                for unit in decided:
                    pending.remove(unit)
                span.incr("decided", len(decided))
                if not pending:
                    span.set(verdict=Verdict.SCHEDULABLE.value)
                    result = self._analytic_result(
                        Verdict.SCHEDULABLE,
                        tier.name,
                        None,
                        context,
                        attempts,
                        trail,
                        start,
                    )
                    return result, attempts, trail
        trail.append(
            f"undecided after {len(self.tiers)} tier(s): "
            f"{len(pending)} unit(s) remain"
        )
        return None, attempts, trail

    def _analytic_result(
        self,
        verdict: Verdict,
        tier_name: str,
        scenario: Optional[AadlScenario],
        context: PortfolioContext,
        attempts: Dict[str, int],
        trail: List[str],
        start: float,
    ) -> AnalysisResult:
        elapsed = time.perf_counter() - start
        stats = EngineStats(
            strategy="portfolio",
            states=0,
            transitions=0,
            expanded=0,
            elapsed=elapsed,
            frontier_peak=0,
            parent_map_bytes=0,
            cache_hits=0,
            cache_misses=0,
            cache_evictions=0,
            limit_hit=None,
            tier_attempts=attempts,
            tier_hits={tier_name: 1},
        )
        exploration = ExplorationResult(
            None,  # type: ignore[arg-type]
            num_states=0,
            num_transitions=0,
            deadlock_states=[],
            target_states=[],
            completed=True,
            elapsed=elapsed,
            parent={},
            transitions=None,
            stats=stats,
        )
        return AnalysisResult(
            verdict,
            None,
            exploration,
            scenario,
            decided_by=tier_name,
            tier_trail=trail,
            quantizer=context.quantizer,
        )


def analyze_portfolio(
    model: Union[SystemInstance, DeclarativeModel],
    *,
    root_impl: Optional[str] = None,
    quantum: Optional[TimeValue] = None,
    options=None,
    max_states: int = 1_000_000,
    max_seconds: Optional[float] = None,
    stop_at_first_deadlock: bool = True,
    strategy=None,
    observers=None,
    analyzer: Optional[PortfolioAnalyzer] = None,
    reduction=None,
    reduction_fault=None,
    steady_mode: bool = False,
) -> AnalysisResult:
    """Tiered analysis: analytic tiers first, exploration on escalation.

    Drop-in for :func:`~repro.analysis.schedulability.analyze_model`
    (same signature plus ``analyzer``); the result's ``decided_by``
    names the deciding tier, or ``"exploration"`` after escalation, and
    the per-tier counters land on the engine stats either way.
    ``reduction`` / ``reduction_fault`` only matter on escalation --
    the analytic tiers never build the state space at all.
    ``steady_mode`` asserts the instance is pinned to one operation
    mode so the analytic tiers may speak for it (per-mode drivers only).
    """
    from repro.obs.tracer import current_tracer

    analyzer = analyzer if analyzer is not None else PortfolioAnalyzer()
    if isinstance(model, DeclarativeModel):
        if root_impl is None:
            raise ValueError(
                "root_impl is required when passing a declarative model"
            )
        instance = instantiate(model, root_impl)
    else:
        instance = model

    effective_quantum = quantum
    if effective_quantum is None and options is not None:
        effective_quantum = options.quantum
    quantizer = (
        TimingQuantizer(effective_quantum)
        if effective_quantum is not None
        else None
    )

    result, attempts, trail = analyzer.screen(
        instance, quantizer=quantizer, steady_mode=steady_mode
    )
    if result is not None:
        return result

    tracer = current_tracer()
    partitioned = any(
        thread.bound_processor is not None
        and thread.bound_processor is not thread.host_processor
        for thread in instance.threads()
    )
    if partitioned:
        # The ACSR translation has no server semantics: flattening a
        # virtual processor into a full one would silently over-supply
        # the partition, so escalation routes to the hierarchical
        # analysis (interface check plus supply-aware flattened
        # simulation) instead of exploration.
        from repro.hier.analysis import analyze_hier

        with tracer.span("portfolio.escalate") as span:
            span.set(reason=trail[-1] if trail else "", hier=True)
            result = analyze_hier(instance, quantizer=quantizer)
        result.tier_trail = trail + [
            "escalated to hierarchical (BDR) analysis"
        ] + list(result.tier_trail or [])
        stats = result.exploration.stats
        if stats is not None:
            for name, count in attempts.items():
                stats.tier_attempts[name] = (
                    stats.tier_attempts.get(name, 0) + count
                )
            stats.tier_escalations += 1
        return result

    with tracer.span("portfolio.escalate") as span:
        span.set(reason=trail[-1] if trail else "")
        result = analyze_model(
            instance,
            quantum=quantum,
            options=options,
            max_states=max_states,
            max_seconds=max_seconds,
            stop_at_first_deadlock=stop_at_first_deadlock,
            strategy=strategy,
            observers=observers,
            reduction=reduction,
            reduction_fault=reduction_fault,
        )
    result.decided_by = "exploration"
    result.tier_trail = trail + ["escalated to exhaustive exploration"]
    stats = result.exploration.stats
    if stats is not None:
        for name, count in attempts.items():
            stats.tier_attempts[name] = (
                stats.tier_attempts.get(name, 0) + count
            )
        stats.tier_escalations += 1
    return result
