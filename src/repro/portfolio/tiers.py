"""The analytic tiers, in escalating cost order.

Each tier is a classical schedulability test wrapped with an explicit
*soundness class* (:class:`Soundness`) that bounds what it may conclude
about the ACSR exploration verdict:

* ``NECESSARY`` -- its failure proves UNSCHEDULABLE; its success proves
  nothing (the ``U <= 1`` cap);
* ``SUFFICIENT`` -- its success proves SCHEDULABLE; its failure proves
  nothing (utilization bounds);
* ``EXACT`` -- both directions, on the tier's own applicability domain
  (RTA on synchronous sets, EDF demand, worst-case simulation).

A tier examines one :class:`~repro.portfolio.context.AnalyticUnit` at a
time and returns a :class:`UnitDecision` or None (inconclusive).  The
:class:`~repro.portfolio.analyzer.PortfolioAnalyzer` runs the chain and
escalates to exhaustive exploration when units remain undecided.  Tiers
self-demote where their exactness is conditional: RTA and EDF demand
draw no UNSCHEDULABLE conclusions from offset-bearing sets (see
:func:`repro.sched.rta.rta_exactness`), mirroring the oracle relations.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.aadl.properties import SchedulingProtocol
from repro.analysis.raising import AadlScenario
from repro.errors import SchedError
from repro.portfolio.context import AnalyticUnit
from repro.portfolio.witness import (
    explanation_witness,
    miss_witness,
    scenario_from_simulation,
)
from repro.sched.demand import edf_schedulable
from repro.sched.rta import response_times
from repro.sched.simulation import exact_simulation_horizon, simulate
from repro.sched.utilization import hyperbolic_bound_test

#: Utilization comparisons tolerate float rounding, like the oracle's.
_EPSILON = 1e-12

#: Default cap on witness-hunt and simulation-tier horizons, in quanta.
DEFAULT_MAX_HORIZON = 1 << 20


class Soundness(enum.Enum):
    """What a tier's verdicts are allowed to mean."""

    EXACT = "exact"
    SUFFICIENT = "sufficient"
    NECESSARY = "necessary"


class UnitDecision:
    """A tier's conclusion about one unit."""

    __slots__ = ("schedulable", "detail", "scenario")

    def __init__(
        self,
        schedulable: bool,
        detail: str = "",
        scenario: Optional[AadlScenario] = None,
    ) -> None:
        self.schedulable = schedulable
        self.detail = detail
        #: synthesized failing scenario (unschedulable decisions only)
        self.scenario = scenario

    def __repr__(self) -> str:
        verdict = "schedulable" if self.schedulable else "unschedulable"
        detail = f" ({self.detail})" if self.detail else ""
        return f"UnitDecision({verdict}{detail})"


class Tier:
    """One analytic test in the portfolio chain."""

    name: str = "?"
    soundness: Soundness = Soundness.EXACT
    #: Whether this tier understands partition units (those carrying a
    #: BDR supply interface).  Full-supply tiers must never see them:
    #: their verdicts assume the whole processor, which over-promises
    #: supply for a partition.  The analyzer enforces the split.
    interface_aware: bool = False

    def applicable(self, unit: AnalyticUnit) -> bool:
        raise NotImplementedError

    def decide(self, unit: AnalyticUnit) -> Optional[UnitDecision]:
        """A verdict for ``unit``, or None when this tier cannot tell."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class UtilizationCapTier(Tier):
    """``U <= 1`` on one processor is necessary: any over-utilized unit
    is unschedulable, full stop.  The witness is hunted by bounded
    simulation (the backlog forces a miss eventually); if the hunt
    horizon runs out, an explanation-only scenario carries the fact."""

    name = "utilization-cap"
    soundness = Soundness.NECESSARY

    def __init__(self, max_horizon: int = DEFAULT_MAX_HORIZON) -> None:
        self.max_horizon = max_horizon

    def applicable(self, unit: AnalyticUnit) -> bool:
        return True

    def decide(self, unit: AnalyticUnit) -> Optional[UnitDecision]:
        utilization = unit.tasks.utilization
        if utilization <= 1.0 + _EPSILON:
            return None
        detail = f"U={utilization:.4f} > 1"
        horizon = min(self.max_horizon, 4 * unit.tasks.hyperperiod)
        scenario = miss_witness(
            unit.tasks, policy=unit.sim_policy, horizon=horizon
        )
        if scenario is None:
            scenario = explanation_witness(
                unit.tasks, f"processor over-utilized: {detail}"
            )
        return UnitDecision(False, detail, scenario)


class UtilizationBoundTier(Tier):
    """Sufficient utilization bounds: the hyperbolic RM bound (which
    dominates Liu & Layland) and EDF's ``U <= 1`` optimality on
    implicit deadlines.  Both hold for arbitrary offsets."""

    name = "utilization-bound"
    soundness = Soundness.SUFFICIENT

    def applicable(self, unit: AnalyticUnit) -> bool:
        return unit.protocol in (
            SchedulingProtocol.RATE_MONOTONIC,
            SchedulingProtocol.EARLIEST_DEADLINE_FIRST,
        )

    def decide(self, unit: AnalyticUnit) -> Optional[UnitDecision]:
        utilization = unit.tasks.utilization
        if unit.protocol is SchedulingProtocol.RATE_MONOTONIC:
            try:
                passed = hyperbolic_bound_test(unit.tasks)
            except SchedError:
                # Constrained deadlines: the bound does not apply.
                return None
            if passed:
                return UnitDecision(
                    True, f"hyperbolic bound, U={utilization:.4f}"
                )
            return None
        # EDF is optimal on implicit-deadline periodic sets: U <= 1 is
        # exact there, independent of offsets; used here one-sidedly.
        implicit = all(
            task.deadline == task.period for task in unit.tasks
        )
        if implicit and utilization <= 1.0 + _EPSILON:
            return UnitDecision(
                True, f"EDF implicit deadlines, U={utilization:.4f} <= 1"
            )
        return None


class RtaTier(Tier):
    """Response-time analysis for fixed-priority units.

    A passing RTA proves schedulability even with offsets (the
    synchronous response upper-bounds every release pattern); a failing
    RTA proves unschedulability only on synchronous sets, where t = 0
    is the critical instant -- offset-bearing failures escalate."""

    name = "rta"
    soundness = Soundness.EXACT

    def applicable(self, unit: AnalyticUnit) -> bool:
        if unit.ordering is None:
            return False
        if unit.ordering == "explicit" and any(
            task.priority is None for task in unit.tasks
        ):
            return False
        return True

    def decide(self, unit: AnalyticUnit) -> Optional[UnitDecision]:
        responses = response_times(unit.tasks, ordering=unit.ordering)
        failing: List[str] = []
        for task in unit.tasks:
            response = responses[task.name]
            if response is None or response > task.deadline:
                failing.append(task.name)
        if not failing:
            worst = max(
                (responses[task.name], task.name) for task in unit.tasks
            )
            return UnitDecision(
                True, f"worst response {worst[1]}: R={worst[0]}"
            )
        if not unit.synchronous:
            # Sufficient-only with offsets: a failure proves nothing.
            return None
        name = failing[0]
        response = responses[name]
        deadline = next(
            task.deadline for task in unit.tasks if task.name == name
        )
        detail = (
            f"{name}: R diverged past {deadline}"
            if response is None
            else f"{name}: R={response} > D={deadline}"
        )
        # The synchronous run realizes the critical instant, so the
        # simulated prefix exhibits the analytically-proven miss.
        scenario = miss_witness(
            unit.tasks,
            policy=unit.ordering,
            horizon=unit.tasks.hyperperiod,
        )
        if scenario is None:
            scenario = explanation_witness(unit.tasks, detail)
        return UnitDecision(False, detail, scenario)


class EdfDemandTier(Tier):
    """The processor-demand criterion for EDF units.

    Exact for synchronous sets; a passing test also covers offset
    patterns (synchronous release maximizes demand), while a failing
    offset-bearing set escalates."""

    name = "edf-demand"
    soundness = Soundness.EXACT

    def applicable(self, unit: AnalyticUnit) -> bool:
        return (
            unit.protocol is SchedulingProtocol.EARLIEST_DEADLINE_FIRST
        )

    def decide(self, unit: AnalyticUnit) -> Optional[UnitDecision]:
        utilization = unit.tasks.utilization
        if edf_schedulable(unit.tasks):
            return UnitDecision(
                True, f"demand bound holds, U={utilization:.4f}"
            )
        if not unit.synchronous:
            return None
        scenario = miss_witness(
            unit.tasks, policy="edf", horizon=unit.tasks.hyperperiod
        )
        detail = f"demand exceeds supply, U={utilization:.4f}"
        if scenario is None:
            scenario = explanation_witness(unit.tasks, detail)
        return UnitDecision(False, detail, scenario)


class SimulationTier(Tier):
    """Worst-case scheduler simulation over the exact window.

    One hyperperiod for synchronous sets, ``O_max + 2H`` for
    offset-bearing ones (Leung & Merrill) -- within that window the
    single worst-case run decides exactly.  LLF is excluded, mirroring
    the oracle (its tie-breaking need not match the ACSR encoding), and
    windows past ``max_horizon`` escalate instead of stalling."""

    name = "simulation"
    soundness = Soundness.EXACT

    def __init__(self, max_horizon: int = DEFAULT_MAX_HORIZON) -> None:
        self.max_horizon = max_horizon

    def applicable(self, unit: AnalyticUnit) -> bool:
        if unit.protocol is SchedulingProtocol.LEAST_LAXITY_FIRST:
            return False
        if unit.ordering == "explicit" and any(
            task.priority is None for task in unit.tasks
        ):
            return False
        return unit.sim_policy is not None

    def decide(self, unit: AnalyticUnit) -> Optional[UnitDecision]:
        horizon = self._exact_horizon(unit)
        if horizon is None or horizon > self.max_horizon:
            return None
        sim = simulate(
            unit.tasks,
            policy=unit.sim_policy,
            horizon=horizon,
            stop_at_first_miss=True,
        )
        if sim.misses:
            name, time = sim.misses[0]
            return UnitDecision(
                False,
                f"{name} misses at t={time} (horizon {horizon})",
                scenario_from_simulation(unit.tasks, sim),
            )
        return UnitDecision(True, f"clean run over horizon {horizon}")

    @staticmethod
    def _exact_horizon(unit: AnalyticUnit) -> Optional[int]:
        # Shared with ``simulate()``'s default window: one hyperperiod
        # synchronous, Leung-Merrill ``O_max + 2H`` with offsets, None
        # when U > 1 (the utilization-cap tier already decided these).
        return exact_simulation_horizon(unit.tasks)


class HierTier(Tier):
    """Demand-vs-supply check of a partition against its BDR interface.

    The only tier allowed to decide partition units.  Sufficient by
    construction: the interface under-promises the server's supply, so
    a pass proves schedulability under the real server while a fail
    only reflects interface conservatism and escalates (to the
    supply-aware flattened simulation, via the hier escalation path).
    """

    name = "hier"
    soundness = Soundness.SUFFICIENT
    interface_aware = True

    def applicable(self, unit: AnalyticUnit) -> bool:
        if unit.interface is None:
            return False
        if unit.ordering == "explicit" and any(
            task.priority is None for task in unit.tasks
        ):
            return False
        return True

    def decide(self, unit: AnalyticUnit) -> Optional[UnitDecision]:
        from repro.hier.check import check_partition

        check = check_partition(
            unit.tasks,
            unit.interface,
            ordering=unit.ordering,
            edf=(
                unit.protocol
                is SchedulingProtocol.EARLIEST_DEADLINE_FIRST
            ),
        )
        if check is None:  # LLF: no analytic partition test
            return None
        return UnitDecision(
            check.ok, f"{unit.interface.token}: {check.detail}"
        )


def default_tiers(
    *, max_horizon: int = DEFAULT_MAX_HORIZON
) -> List[Tier]:
    """The standard chain, cheapest first.  The hier tier leads: it is
    the only one applicable to partition units, and the unit sets are
    disjoint so order against the full-supply tiers is immaterial."""
    return [
        HierTier(),
        UtilizationCapTier(max_horizon),
        UtilizationBoundTier(),
        RtaTier(),
        EdfDemandTier(),
        SimulationTier(max_horizon),
    ]


def tiers_from_token(
    token: Optional[str], *, max_horizon: int = DEFAULT_MAX_HORIZON
) -> List[Tier]:
    """Rebuild a tier chain from its config token (``"+"``-joined tier
    names, the cache-key form).  None or the empty string selects the
    default chain; unknown names raise."""
    if not token:
        return default_tiers(max_horizon=max_horizon)
    factories = {
        HierTier.name: HierTier,
        UtilizationCapTier.name: lambda: UtilizationCapTier(max_horizon),
        UtilizationBoundTier.name: UtilizationBoundTier,
        RtaTier.name: RtaTier,
        EdfDemandTier.name: EdfDemandTier,
        SimulationTier.name: lambda: SimulationTier(max_horizon),
    }
    tiers: List[Tier] = []
    for name in token.split("+"):
        factory = factories.get(name)
        if factory is None:
            raise SchedError(f"unknown portfolio tier {name!r}")
        tiers.append(factory())
    return tiers
