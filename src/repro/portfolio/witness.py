"""Synthesized counterexamples for analytic UNSCHEDULABLE verdicts.

When an exact or necessary tier rejects a model, the user still deserves
the artifact exploration would have produced: a concrete failing
scenario in AADL terms.  The tiers synthesize one by *running* the
deterministic scheduler simulation up to the first deadline miss and
rendering that prefix as an :class:`~repro.analysis.raising.AadlScenario`
-- the same type the trace raiser produces, so the timeline renderer,
the JSON export and every downstream consumer work unchanged.

For verdicts whose witness search is itself bounded (an over-utilized
unit whose first miss lies beyond the hunt horizon), the fallback is an
*explanation-only* scenario: the analytic fact as a ``deadline_miss``
event with no timeline.  The verdict never depends on finding the
witness -- soundness comes from the tier, the scenario is illustration.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.raising import (
    PREEMPTED,
    RUNNING,
    WAITING,
    AadlScenario,
    ScenarioEvent,
)
from repro.errors import SchedError
from repro.sched.simulation import SimulationResult, simulate
from repro.sched.taskmodel import TaskSet


def scenario_from_simulation(
    tasks: TaskSet, sim: SimulationResult
) -> AadlScenario:
    """Render a simulated run (typically stopped at its first miss) as
    an AADL-level scenario: dispatch/complete events, per-quantum
    activity rows and the deadline-miss instant."""
    duration = len(sim.schedule)
    events: List[ScenarioEvent] = []
    activity = {task.name: [] for task in tasks}
    # name -> [release, absolute deadline, remaining, started]
    jobs: dict = {task.name: None for task in tasks}

    for now in range(duration):
        for task in tasks:
            if now >= task.offset and (now - task.offset) % task.period == 0:
                jobs[task.name] = [now, now + task.deadline, task.wcet, False]
                events.append(ScenarioEvent(now, "dispatch", task.name))
        running = sim.schedule[now]
        for task in tasks:
            job = jobs[task.name]
            if job is not None and job[2] > 0 and now >= job[1]:
                # The simulator abandoned this late job; mirror it.
                jobs[task.name] = job = None
            if running == task.name:
                activity[task.name].append(RUNNING)
                job[2] -= 1
                job[3] = True
                if job[2] == 0:
                    events.append(
                        ScenarioEvent(now + 1, "complete", task.name)
                    )
                    jobs[task.name] = None
            elif job is not None:
                activity[task.name].append(PREEMPTED if job[3] else WAITING)
            else:
                activity[task.name].append(WAITING)

    misses: List[str] = []
    deadlines = {task.name: task.deadline for task in tasks}
    for name, time in sim.misses:
        if name not in misses:
            misses.append(name)
        events.append(
            ScenarioEvent(
                time,
                "deadline_miss",
                name,
                f"deadline {deadlines[name]} quanta",
            )
        )
    events.sort(key=lambda event: event.time)
    return AadlScenario(
        events,
        activity,
        duration,
        deadlocked=bool(misses),
        misses=misses,
        overflows=[],
    )


def miss_witness(
    tasks: TaskSet, *, policy: Optional[str], horizon: int
) -> Optional[AadlScenario]:
    """Hunt for a concrete deadline miss within ``horizon`` quanta.

    Returns None when the policy is unavailable (e.g. missing explicit
    priorities) or no miss shows up inside the window -- the caller
    falls back to :func:`explanation_witness`.
    """
    if policy is None or horizon < 1:
        return None
    try:
        sim = simulate(
            tasks, policy=policy, horizon=horizon, stop_at_first_miss=True
        )
    except SchedError:
        return None
    if not sim.misses:
        return None
    return scenario_from_simulation(tasks, sim)


def explanation_witness(
    tasks: TaskSet, detail: str
) -> AadlScenario:
    """Timeline-less scenario carrying an analytic unschedulability fact.

    Names the longest-period task as the designated casualty (under any
    priority assignment an overloaded processor starves its least urgent
    work first), with the analytic reason in the event detail.
    """
    victim = max(tasks, key=lambda task: (task.period, task.name))
    event = ScenarioEvent(0, "deadline_miss", victim.name, detail)
    return AadlScenario(
        [event],
        {},
        0,
        deadlocked=False,
        misses=[victim.name],
        overflows=[],
    )
