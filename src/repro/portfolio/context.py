"""Applicability screening for the analytic tiers.

The classical tests speak for the ACSR model only on its *classical
fragment*: independent periodic threads statically bound to processors,
with no queued connections, shared data, modes, buses or devices (pure
data-port connections are inert: the translator gives them no queue
process, so they do not perturb the task model).  On that
fragment the translation of each processor's threads is exactly the
periodic task set the textbook algorithms assume -- extracted with the
*same* quantizer the translation itself uses, so the analytic verdict
and the exploration verdict are about the same quantized model.

Anything outside the fragment (event-driven dispatch, communication,
modal behaviour) makes the model's behaviours richer than any task-set
abstraction, and the portfolio must escalate to exhaustive exploration.
:func:`build_context` encodes that boundary in one place and returns
either the per-processor :class:`AnalyticUnit` list or the reason the
tiers must stand aside.
"""

from __future__ import annotations

from typing import List, Optional

from repro.aadl.instance import SystemInstance
from repro.aadl.properties import (
    DISPATCH_PROTOCOL,
    SCHEDULING_PROTOCOL,
    DispatchProtocol,
    SchedulingProtocol,
)
from repro.errors import QuantizationError, SchedError
from repro.sched.taskmodel import TaskSet, extract_task_set
from repro.translate.quantum import TimingQuantizer

#: Fixed-priority protocols and the task ordering each induces.
FIXED_PRIORITY_ORDERING = {
    SchedulingProtocol.RATE_MONOTONIC: "rate",
    SchedulingProtocol.DEADLINE_MONOTONIC: "deadline",
    SchedulingProtocol.HIGHEST_PRIORITY_FIRST: "explicit",
}


class AnalyticUnit:
    """One processor's independent task set, ready for classical tests.

    On the classical fragment processors do not interact, so each unit
    is analyzed on its own and the model-level verdict is the
    conjunction (mirroring the compositional island decomposition).
    """

    __slots__ = ("processor", "tasks", "protocol", "ordering", "synchronous")

    def __init__(
        self,
        processor: str,
        tasks: TaskSet,
        protocol: SchedulingProtocol,
    ) -> None:
        self.processor = processor
        self.tasks = tasks
        self.protocol = protocol
        #: fixed-priority task ordering, or None for dynamic priorities
        self.ordering = FIXED_PRIORITY_ORDERING.get(protocol)
        self.synchronous = all(task.offset == 0 for task in tasks)

    @property
    def sim_policy(self) -> Optional[str]:
        """The :func:`repro.sched.simulation.simulate` policy name."""
        if self.ordering is not None:
            return self.ordering
        if self.protocol is SchedulingProtocol.EARLIEST_DEADLINE_FIRST:
            return "edf"
        if self.protocol is SchedulingProtocol.LEAST_LAXITY_FIRST:
            return "llf"
        return None

    def __repr__(self) -> str:
        return (
            f"AnalyticUnit({self.processor!r}, {self.protocol.value}, "
            f"{len(self.tasks)} tasks)"
        )


class PortfolioContext:
    """The task-model view of an instance, or the reason there is none."""

    __slots__ = ("units", "quantizer", "inapplicable")

    def __init__(
        self,
        units: List[AnalyticUnit],
        quantizer: Optional[TimingQuantizer],
        inapplicable: Optional[str] = None,
    ) -> None:
        self.units = units
        self.quantizer = quantizer
        #: why the analytic tiers cannot speak for this model (None when
        #: they can)
        self.inapplicable = inapplicable

    @property
    def applicable(self) -> bool:
        return self.inapplicable is None

    def __repr__(self) -> str:
        if self.inapplicable is not None:
            return f"PortfolioContext(inapplicable: {self.inapplicable})"
        return f"PortfolioContext({len(self.units)} unit(s))"


def build_context(
    instance: SystemInstance,
    quantizer: Optional[TimingQuantizer] = None,
) -> PortfolioContext:
    """Screen ``instance`` and extract per-processor analytic units.

    ``quantizer`` pins the quantum when the caller will escalate with a
    quantum override; the default is the same exact GCD quantizer the
    translation uses, which keeps the analytic and exploration verdicts
    about the same discrete model.
    """
    reason = _outside_classical_fragment(instance)
    if reason is not None:
        return PortfolioContext([], None, reason)
    try:
        quantizer = quantizer or TimingQuantizer.natural(instance)
    except QuantizationError as exc:
        return PortfolioContext([], None, str(exc))

    units: List[AnalyticUnit] = []
    for processor in instance.processors():
        bound = [
            t for t in instance.threads() if t.bound_processor is processor
        ]
        if not bound:
            continue
        protocol = processor.property(SCHEDULING_PROTOCOL)
        if not isinstance(protocol, SchedulingProtocol):
            return PortfolioContext(
                [],
                None,
                f"processor {processor.qualified_name}: missing or invalid "
                f"Scheduling_Protocol",
            )
        try:
            tasks = extract_task_set(instance, processor, quantizer)
        except (SchedError, QuantizationError) as exc:
            # e.g. a missing period or an infeasible deadline: the
            # exhaustive translation is the tool that judges those.
            return PortfolioContext([], None, str(exc))
        if len(tasks) != len(bound):
            return PortfolioContext(
                [],
                None,
                f"processor {processor.qualified_name}: some bound threads "
                f"fall outside the periodic task model",
            )
        units.append(
            AnalyticUnit(processor.qualified_name, tasks, protocol)
        )
    if not units:
        return PortfolioContext(
            [], None, "no processor-bound periodic threads"
        )
    return PortfolioContext(units, quantizer)


def _outside_classical_fragment(instance: SystemInstance) -> Optional[str]:
    """The reason the classical task model does not cover ``instance``,
    or None when it does."""
    threads = instance.threads()
    if not threads:
        return "model has no threads"
    for thread in threads:
        protocol = thread.property(DISPATCH_PROTOCOL)
        if protocol is not DispatchProtocol.PERIODIC:
            # Sporadic threads translate to event-driven dispatchers
            # whose behaviours the periodic abstraction cannot bound.
            name = getattr(protocol, "value", protocol)
            return (
                f"{thread.qualified_name}: dispatch protocol {name} is "
                f"outside the periodic task model"
            )
        if thread.bound_processor is None:
            return f"{thread.qualified_name}: not bound to a processor"
    # Pure data-port connections into periodic threads get no queue
    # process from the translator (paper S2: periodic threads ignore
    # external events) -- they are semantically inert, exactly as the
    # compositional partitioner treats them.  Anything queued or carried
    # by a bus changes the resource picture and escapes the task model.
    from repro.translate.translator import _needs_queue

    for conn in instance.connections:
        if _needs_queue(conn):
            return (
                f"connection {conn.qualified_name} is queued; classical "
                f"tests assume independent tasks"
            )
        if conn.buses:
            return (
                f"connection {conn.qualified_name} is bus-bound; its "
                f"resource demand is outside the task model"
            )
    if instance.access_connections:
        return "model has shared data access"
    if instance.active_modes:
        return "model has multi-modal components"
    if instance.buses() or instance.devices():
        return "model has buses or devices"
    return None
