"""Applicability screening for the analytic tiers.

The classical tests speak for the ACSR model only on its *classical
fragment*: independent periodic threads statically bound to processors,
with no queued connections, shared data, modes, buses or devices (pure
data-port connections are inert: the translator gives them no queue
process, so they do not perturb the task model).  On that
fragment the translation of each processor's threads is exactly the
periodic task set the textbook algorithms assume -- extracted with the
*same* quantizer the translation itself uses, so the analytic verdict
and the exploration verdict are about the same quantized model.

Anything outside the fragment (event-driven dispatch, communication,
modal behaviour) makes the model's behaviours richer than any task-set
abstraction, and the portfolio must escalate to exhaustive exploration.
:func:`build_context` encodes that boundary in one place and returns
either the per-processor :class:`AnalyticUnit` list or the reason the
tiers must stand aside.
"""

from __future__ import annotations

from typing import List, Optional

from repro.aadl.instance import SystemInstance
from repro.aadl.properties import (
    DISPATCH_PROTOCOL,
    EXECUTION_TIME,
    PERIOD,
    PRIORITY,
    SCHEDULING_PROTOCOL,
    DispatchProtocol,
    SchedulingProtocol,
)
from repro.errors import HierError, QuantizationError, SchedError
from repro.hier.interface import BdrInterface
from repro.sched.taskmodel import PeriodicTask, TaskSet, extract_task_set
from repro.translate.quantum import TimingQuantizer

#: Fixed-priority protocols and the task ordering each induces.
FIXED_PRIORITY_ORDERING = {
    SchedulingProtocol.RATE_MONOTONIC: "rate",
    SchedulingProtocol.DEADLINE_MONOTONIC: "deadline",
    SchedulingProtocol.HIGHEST_PRIORITY_FIRST: "explicit",
}


class AnalyticUnit:
    """One scheduling context's independent task set, ready for tests.

    On the classical fragment processors do not interact, so each unit
    is analyzed on its own and the model-level verdict is the
    conjunction (mirroring the compositional island decomposition).
    Two flavours exist:

    * a *host* unit (``interface is None``): a physical processor's
      directly-bound threads, plus one synthetic server task per
      virtual processor it hosts (period = replenishment, WCET =
      budget, deadline = period) -- the classical tiers then decide
      whether the host can honour every server's contract;
    * a *partition* unit (``interface`` set): a virtual processor's
      bound threads, to be checked against the partition's BDR supply
      interface rather than a full processor.  Only interface-aware
      tiers may decide these -- a full-supply tier passing a partition
      unit would be unsound.
    """

    __slots__ = (
        "processor", "tasks", "protocol", "ordering", "synchronous",
        "interface",
    )

    def __init__(
        self,
        processor: str,
        tasks: TaskSet,
        protocol: SchedulingProtocol,
        interface: Optional[BdrInterface] = None,
    ) -> None:
        self.processor = processor
        self.tasks = tasks
        self.protocol = protocol
        #: fixed-priority task ordering, or None for dynamic priorities
        self.ordering = FIXED_PRIORITY_ORDERING.get(protocol)
        self.synchronous = all(task.offset == 0 for task in tasks)
        #: BDR supply abstraction for partition units; None for hosts
        self.interface = interface

    @property
    def sim_policy(self) -> Optional[str]:
        """The :func:`repro.sched.simulation.simulate` policy name."""
        if self.ordering is not None:
            return self.ordering
        if self.protocol is SchedulingProtocol.EARLIEST_DEADLINE_FIRST:
            return "edf"
        if self.protocol is SchedulingProtocol.LEAST_LAXITY_FIRST:
            return "llf"
        return None

    def __repr__(self) -> str:
        return (
            f"AnalyticUnit({self.processor!r}, {self.protocol.value}, "
            f"{len(self.tasks)} tasks)"
        )


class PortfolioContext:
    """The task-model view of an instance, or the reason there is none."""

    __slots__ = ("units", "quantizer", "inapplicable")

    def __init__(
        self,
        units: List[AnalyticUnit],
        quantizer: Optional[TimingQuantizer],
        inapplicable: Optional[str] = None,
    ) -> None:
        self.units = units
        self.quantizer = quantizer
        #: why the analytic tiers cannot speak for this model (None when
        #: they can)
        self.inapplicable = inapplicable

    @property
    def applicable(self) -> bool:
        return self.inapplicable is None

    def __repr__(self) -> str:
        if self.inapplicable is not None:
            return f"PortfolioContext(inapplicable: {self.inapplicable})"
        return f"PortfolioContext({len(self.units)} unit(s))"


def build_context(
    instance: SystemInstance,
    quantizer: Optional[TimingQuantizer] = None,
    *,
    steady_mode: bool = False,
) -> PortfolioContext:
    """Screen ``instance`` and extract per-processor analytic units.

    ``steady_mode=True`` is the caller's assertion that ``instance``
    was pinned to one system operation mode (``mode_overrides``) and
    the verdict is claimed for that steady mode only; the multi-modal
    applicability bar is then waived, since no mode switch can occur
    within the analyzed behaviour.  Per-mode drivers
    (:func:`repro.analysis.modes.analyze_all_modes`,
    :mod:`repro.modal`) set it; plain whole-model analysis must not.

    ``quantizer`` pins the quantum when the caller will escalate with a
    quantum override; the default is the same exact GCD quantizer the
    translation uses, which keeps the analytic and exploration verdicts
    about the same discrete model.
    """
    reason = _outside_classical_fragment(instance, steady_mode=steady_mode)
    if reason is not None:
        return PortfolioContext([], None, reason)
    try:
        quantizer = quantizer or TimingQuantizer.natural(instance)
    except QuantizationError as exc:
        return PortfolioContext([], None, str(exc))

    threads = instance.threads()
    units: List[AnalyticUnit] = []

    # -- partition units: one per thread-bearing virtual processor,
    #    carrying the BDR interface its server parameters induce.
    partitions = []
    for vproc in instance.virtual_processors():
        bound = [t for t in threads if t.bound_processor is vproc]
        if not bound:
            continue
        name = vproc.qualified_name
        if vproc.bound_processor is None:
            return PortfolioContext(
                [],
                None,
                f"virtual processor {name} is not bound to a processor",
            )
        protocol = vproc.property(SCHEDULING_PROTOCOL)
        if not isinstance(protocol, SchedulingProtocol):
            return PortfolioContext(
                [],
                None,
                f"virtual processor {name}: missing or invalid "
                f"Scheduling_Protocol",
            )
        period_tv = vproc.property_time(PERIOD)
        budget_tv = vproc.property_time(EXECUTION_TIME)
        if period_tv is None or budget_tv is None:
            return PortfolioContext(
                [],
                None,
                f"virtual processor {name}: missing server Period or "
                f"Execution_Time",
            )
        try:
            tasks = extract_task_set(instance, vproc, quantizer)
        except (SchedError, QuantizationError) as exc:
            return PortfolioContext([], None, str(exc))
        if len(tasks) != len(bound):
            return PortfolioContext(
                [],
                None,
                f"virtual processor {name}: some bound threads fall "
                f"outside the periodic task model",
            )
        # Supply-side rounding is conservative: replenishment up (rarer
        # refills), budget down (less supply).  Exact under the natural
        # quantizer, whose GCD includes both durations.
        try:
            interface = BdrInterface.from_server(
                name,
                quantizer.quanta_ceil(period_tv),
                quantizer.quanta_floor(budget_tv),
            )
        except HierError as exc:
            return PortfolioContext([], None, str(exc))
        units.append(AnalyticUnit(name, tasks, protocol, interface))
        partitions.append((vproc, period_tv, budget_tv))

    # -- host units: each physical processor's direct threads plus one
    #    server task per hosted partition (demand-side rounding: budget
    #    up, replenishment down -- more load, never less).
    for processor in instance.processors():
        direct = [t for t in threads if t.bound_processor is processor]
        hosted = [
            entry
            for entry in partitions
            if entry[0].bound_processor is processor
        ]
        if not direct and not hosted:
            continue
        protocol = processor.property(SCHEDULING_PROTOCOL)
        if not isinstance(protocol, SchedulingProtocol):
            return PortfolioContext(
                [],
                None,
                f"processor {processor.qualified_name}: missing or invalid "
                f"Scheduling_Protocol",
            )
        try:
            tasks = extract_task_set(instance, processor, quantizer)
        except (SchedError, QuantizationError) as exc:
            # e.g. a missing period or an infeasible deadline: the
            # exhaustive translation is the tool that judges those.
            return PortfolioContext([], None, str(exc))
        if len(tasks) != len(direct):
            return PortfolioContext(
                [],
                None,
                f"processor {processor.qualified_name}: some bound threads "
                f"fall outside the periodic task model",
            )
        task_list = list(tasks)
        for vproc, period_tv, budget_tv in hosted:
            server_period = quantizer.quanta_floor(period_tv)
            server_wcet = quantizer.quanta_ceil(budget_tv)
            if server_period < 1 or server_wcet > server_period:
                return PortfolioContext(
                    [],
                    None,
                    f"virtual processor {vproc.qualified_name}: server "
                    f"parameters degenerate at quantum "
                    f"{quantizer.quantum}",
                )
            priority = vproc.property_int(PRIORITY)
            if (
                protocol is SchedulingProtocol.HIGHEST_PRIORITY_FIRST
                and priority is None
            ):
                return PortfolioContext(
                    [],
                    None,
                    f"virtual processor {vproc.qualified_name}: bound to "
                    f"an HPF processor but lacks Priority",
                )
            task_list.append(
                PeriodicTask(
                    f"{vproc.qualified_name}.server",
                    wcet=server_wcet,
                    period=server_period,
                    deadline=server_period,
                    priority=priority,
                )
            )
        units.append(
            AnalyticUnit(
                processor.qualified_name, TaskSet(task_list), protocol
            )
        )
    if not units:
        return PortfolioContext(
            [], None, "no processor-bound periodic threads"
        )
    return PortfolioContext(units, quantizer)


def _outside_classical_fragment(
    instance: SystemInstance, *, steady_mode: bool = False
) -> Optional[str]:
    """The reason the classical task model does not cover ``instance``,
    or None when it does."""
    threads = instance.threads()
    if not threads:
        return "model has no threads"
    for thread in threads:
        protocol = thread.property(DISPATCH_PROTOCOL)
        if protocol is not DispatchProtocol.PERIODIC:
            # Sporadic threads translate to event-driven dispatchers
            # whose behaviours the periodic abstraction cannot bound.
            name = getattr(protocol, "value", protocol)
            return (
                f"{thread.qualified_name}: dispatch protocol {name} is "
                f"outside the periodic task model"
            )
        if thread.bound_processor is None:
            return f"{thread.qualified_name}: not bound to a processor"
    # Pure data-port connections into periodic threads get no queue
    # process from the translator (paper S2: periodic threads ignore
    # external events) -- they are semantically inert, exactly as the
    # compositional partitioner treats them.  Anything queued or carried
    # by a bus changes the resource picture and escapes the task model.
    from repro.translate.translator import _needs_queue

    for conn in instance.connections:
        if _needs_queue(conn):
            return (
                f"connection {conn.qualified_name} is queued; classical "
                f"tests assume independent tasks"
            )
        if conn.buses:
            return (
                f"connection {conn.qualified_name} is bus-bound; its "
                f"resource demand is outside the task model"
            )
    if instance.access_connections:
        return "model has shared data access"
    if instance.active_modes and not steady_mode:
        # A steady-mode caller pinned the instance to one mode and
        # claims the verdict for that mode only, so the switch-coupling
        # objection does not apply.
        return "model has multi-modal components"
    if instance.buses() or instance.devices():
        return "model has buses or devices"
    return None
