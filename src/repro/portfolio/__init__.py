"""Tiered verdict portfolio: analytic fast path, exploration as escalation.

The exhaustive ACSR exploration is the paper's exact instrument, but on
the classical fragment (independent periodic threads, no communication)
the textbook tests decide the very same quantized model in microseconds.
This package chains them in escalating cost order --

    utilization cap -> utilization bounds -> RTA -> EDF demand ->
    hyperperiod simulation -> (escalate) exhaustive exploration

-- with each tier's conclusions bounded by an explicit soundness class
(:class:`~repro.portfolio.tiers.Soundness`), witnesses synthesized for
analytic UNSCHEDULABLE verdicts, and per-tier counters on the engine
stats.  ``repro analyze --portfolio``, the compose runner and the batch
pool route through :func:`analyze_portfolio`; the ``oracle portfolio``
relation cross-checks it against pure exploration.  See
``docs/portfolio.md``.
"""

from repro.portfolio.analyzer import PortfolioAnalyzer, analyze_portfolio
from repro.portfolio.context import (
    AnalyticUnit,
    PortfolioContext,
    build_context,
)
from repro.portfolio.tiers import (
    DEFAULT_MAX_HORIZON,
    EdfDemandTier,
    RtaTier,
    SimulationTier,
    Soundness,
    Tier,
    UnitDecision,
    UtilizationBoundTier,
    UtilizationCapTier,
    default_tiers,
    tiers_from_token,
)
from repro.portfolio.witness import (
    explanation_witness,
    miss_witness,
    scenario_from_simulation,
)

__all__ = [
    "AnalyticUnit",
    "DEFAULT_MAX_HORIZON",
    "EdfDemandTier",
    "PortfolioAnalyzer",
    "PortfolioContext",
    "RtaTier",
    "SimulationTier",
    "Soundness",
    "Tier",
    "UnitDecision",
    "UtilizationBoundTier",
    "UtilizationCapTier",
    "analyze_portfolio",
    "build_context",
    "default_tiers",
    "explanation_witness",
    "miss_witness",
    "scenario_from_simulation",
    "tiers_from_token",
]
