"""Transition-aware schedulability of multi-modal AADL models.

:func:`analyze_modal` is the front door of :mod:`repro.modal`: it
combines the steady per-mode analysis (:mod:`repro.analysis.modes` --
reachable modes only, optionally through the portfolio and the batch
pool) with a transient check of every reachable mode *transition*
under an explicit mode-change protocol
(:mod:`repro.modal.transient`).  The overall verdict is the
conjunction of every steady mode and every transition; the result's
``format()`` renders the per-transition trail the CLI shows.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.errors import AadlLegalityError, AnalysisError
from repro.aadl.components import DeclarativeModel
from repro.aadl.instance import SystemInstance, instantiate
from repro.aadl.properties import TimeValue
from repro.analysis.modes import ModalAnalysisResult, analyze_all_modes
from repro.analysis.schedulability import Verdict
from repro.engine.stats import EngineStats
from repro.modal.automaton import ModeAutomaton, TransitionEdge
from repro.modal.transient import (
    DEFAULT_MAX_PHASINGS,
    DEFAULT_TRANSIENT_WINDOW,
    PROTOCOLS,
    TransientCheck,
    check_transition,
)


class TransitionOutcome:
    """One transition's verdict under the chosen protocol."""

    __slots__ = (
        "edge",
        "verdict",
        "decided_by",
        "detail",
        "escalated",
    )

    def __init__(
        self,
        edge: TransitionEdge,
        verdict: Verdict,
        decided_by: str,
        detail: str,
        *,
        escalated: bool = False,
    ) -> None:
        self.edge = edge
        self.verdict = verdict
        self.decided_by = decided_by
        self.detail = detail
        self.escalated = escalated

    def format(self) -> str:
        delta = []
        if self.edge.activated:
            delta.append("+" + ",".join(self.edge.activated))
        if self.edge.deactivated:
            delta.append("-" + ",".join(self.edge.deactivated))
        delta_text = f" [{' '.join(delta)}]" if delta else ""
        line = (
            f"{self.edge.label}: {self.verdict.value} "
            f"({self.decided_by}){delta_text}"
        )
        if self.detail:
            line += f"\n    {self.detail}"
        return line

    def __repr__(self) -> str:
        return (
            f"TransitionOutcome({self.edge.label}, {self.verdict.value})"
        )


class ModalResult:
    """Steady per-mode verdicts plus per-transition transient verdicts."""

    def __init__(
        self,
        *,
        impl_name: str,
        protocol: str,
        steady: ModalAnalysisResult,
        transitions: List[TransitionOutcome],
        stats: EngineStats,
        elapsed: float,
    ) -> None:
        self.impl_name = impl_name
        self.protocol = protocol
        self.steady = steady
        self.transitions = transitions
        self.stats = stats
        self.elapsed = elapsed

    @property
    def verdict(self) -> Verdict:
        return Verdict.combine(
            [self.steady.verdict]
            + [outcome.verdict for outcome in self.transitions]
        )

    @property
    def unreachable_modes(self) -> tuple:
        return self.steady.unreachable_modes

    @property
    def num_states(self) -> int:
        return sum(o.num_states for o in self.steady.per_mode.values())

    @property
    def failing_transitions(self) -> List[TransitionOutcome]:
        return [
            o
            for o in self.transitions
            if o.verdict is Verdict.UNSCHEDULABLE
        ]

    def format(self) -> str:
        lines = [
            f"modal analysis of {self.impl_name} "
            f"(protocol: {self.protocol})",
            f"verdict: {self.verdict.value}",
            "steady modes:",
        ]
        lines.extend(
            "  " + line for line in self.steady.format().splitlines()
        )
        if self.transitions:
            lines.append("transitions:")
            for outcome in self.transitions:
                lines.extend(
                    "  " + line for line in outcome.format().splitlines()
                )
        else:
            lines.append("transitions: none declared")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ModalResult({self.impl_name!r}, {self.verdict.value}, "
            f"{len(self.transitions)} transition(s))"
        )


def analyze_modal(
    model: DeclarativeModel,
    root_impl: str,
    *,
    protocol: str = "synchronous",
    quantum: Optional[TimeValue] = None,
    max_states: int = 1_000_000,
    portfolio: bool = False,
    tiers: Optional[str] = None,
    reduction: Optional[str] = None,
    workers: Optional[int] = None,
    cache=None,
    progress=None,
    max_phasings: int = DEFAULT_MAX_PHASINGS,
    max_window: int = DEFAULT_TRANSIENT_WINDOW,
    fault: Optional[str] = None,
) -> ModalResult:
    """Transition-aware analysis of a multi-modal model.

    Steady half: every mode reachable from the initial mode, analyzed
    as its own bound system (optionally through the portfolio tiers,
    reduction, or the batch pool -- see
    :func:`repro.analysis.modes.analyze_all_modes`).  Transition half:
    every reachable transition checked under ``protocol``
    (:data:`repro.modal.transient.PROTOCOLS`); ``fault`` injects a
    registered transient-checker defect for oracle self-tests.
    """
    from repro.obs.tracer import current_tracer

    if protocol not in PROTOCOLS:
        raise AnalysisError(
            f"unknown mode-change protocol {protocol!r}; choose from "
            f"{list(PROTOCOLS)}"
        )
    started = time.perf_counter()
    tracer = current_tracer()
    impl = model.implementation(root_impl)
    if not impl.modes:
        raise AnalysisError(
            f"{root_impl} declares no modes; use analyze_model instead"
        )

    with tracer.span("modal.automaton", impl=impl.name) as span:
        automaton = ModeAutomaton.from_implementation(model, impl)
        span.set(
            modes=len(automaton.modes),
            transitions=len(automaton.edges),
            unreachable=len(automaton.unreachable_modes()),
        )
        if automaton.violations:
            raise AadlLegalityError(
                "mode declarations are not legal:\n  - "
                + "\n  - ".join(automaton.violations)
            )

    steady = analyze_all_modes(
        model,
        root_impl,
        quantum=quantum,
        max_states=max_states,
        portfolio=portfolio,
        tiers=tiers,
        reduction=reduction,
        workers=workers,
        cache=cache,
        progress=progress,
    )

    outcomes: List[TransitionOutcome] = []
    escalations = 0
    edges = automaton.reachable_edges()
    mode_units: Dict[str, object] = {}
    if edges and protocol == "asynchronous":
        # Task sets of *different* modes meet in one union, so both
        # sides must be quantized identically: one common quantizer
        # (the GCD across every reachable mode) for all extractions.
        mode_units = _steady_unit_map(
            model, impl, list(steady.per_mode), quantum
        )
    for edge in edges:
        with tracer.span(
            "modal.transition", edge=edge.label, protocol=protocol
        ) as span:
            if protocol == "synchronous":
                outcome = _synchronous_outcome(edge, steady)
            else:
                outcome = _asynchronous_outcome(
                    edge,
                    mode_units,
                    max_phasings=max_phasings,
                    max_window=max_window,
                    fault=fault,
                    tracer=tracer,
                )
            span.set(verdict=outcome.verdict.value)
        if outcome.escalated:
            escalations += 1
        outcomes.append(outcome)

    stats = EngineStats.aggregate(
        (o.stats for o in steady.per_mode.values()),
        strategy="modal",
        wall_elapsed=time.perf_counter() - started,
    )
    stats.modal_transitions_checked = len(outcomes)
    stats.modal_transient_escalations = escalations
    return ModalResult(
        impl_name=impl.name,
        protocol=protocol,
        steady=steady,
        transitions=outcomes,
        stats=stats,
        elapsed=time.perf_counter() - started,
    )


def _synchronous_outcome(
    edge: TransitionEdge, steady: ModalAnalysisResult
) -> TransitionOutcome:
    """The sound fast path: the runtime defers the switch to the old
    mode's next hyperperiod boundary, where a schedulable
    constrained-deadline mode has no job in flight -- no carry-over,
    so the steady endpoint verdicts decide the transition."""
    endpoint_verdicts = [
        steady.per_mode[mode].verdict
        for mode in (edge.source, edge.target)
        if mode in steady.per_mode
    ]
    verdict = Verdict.combine(endpoint_verdicts)
    detail = (
        "switch deferred to the old mode's hyperperiod boundary; "
        "no carry-over, steady verdicts govern"
        if verdict is Verdict.SCHEDULABLE
        else "an endpoint mode is not (known) schedulable"
    )
    return TransitionOutcome(
        edge, verdict, "hyperperiod-boundary", detail
    )


def _asynchronous_outcome(
    edge: TransitionEdge,
    mode_units: Dict[str, object],
    *,
    max_phasings: int,
    max_window: int,
    fault: Optional[str],
    tracer,
) -> TransitionOutcome:
    """The asynchronous overlap: union analytic test, then escalation
    to exhaustive switch-phasing simulation (:mod:`.transient`)."""
    old_units = mode_units.get(edge.source.lower())
    new_units = mode_units.get(edge.target.lower())
    if isinstance(old_units, str) or isinstance(new_units, str):
        reason = old_units if isinstance(old_units, str) else new_units
        return TransitionOutcome(
            edge,
            Verdict.UNKNOWN,
            "inapplicable",
            f"transient analysis needs the classical task model on "
            f"both sides: {reason}",
        )
    if old_units is None or new_units is None:
        # An endpoint outside the reachable steady set (defensive).
        return TransitionOutcome(
            edge,
            Verdict.UNKNOWN,
            "inapplicable",
            "endpoint mode was not analyzed",
        )

    checks: List[Tuple[str, TransientCheck]] = []
    escalated = False
    for processor in sorted(set(old_units) | set(new_units)):
        old_unit = old_units.get(processor)
        new_unit = new_units.get(processor)
        unit = new_unit or old_unit
        check = check_transition(
            list(old_unit.tasks) if old_unit else [],
            list(new_unit.tasks) if new_unit else [],
            ordering=unit.ordering,
            edf=unit.sim_policy == "edf",
            policy=unit.sim_policy,
            max_phasings=max_phasings,
            max_window=max_window,
            fault=fault,
        )
        if check.escalated:
            escalated = True
            with tracer.span(
                "modal.transient", edge=edge.label, processor=processor
            ) as span:
                span.set(
                    decided=check.decided_by,
                    schedulable=check.schedulable,
                )
        checks.append((processor, check))
        if check.schedulable is False:
            break

    verdicts = {
        None: Verdict.UNKNOWN,
        True: Verdict.SCHEDULABLE,
        False: Verdict.UNSCHEDULABLE,
    }
    verdict = Verdict.combine(
        verdicts[check.schedulable] for _, check in checks
    )
    if verdict is Verdict.SCHEDULABLE:
        decided = sorted({check.decided_by for _, check in checks})
        decided_by = "+".join(decided)
        detail = ""
    else:
        processor, check = next(
            (p, c)
            for p, c in checks
            if verdicts[c.schedulable] is verdict
        )
        decided_by = check.decided_by
        detail = f"{processor}: {check.detail}"
    return TransitionOutcome(
        edge, verdict, decided_by, detail, escalated=escalated
    )


def _steady_unit_map(
    model: DeclarativeModel,
    impl,
    modes: List[str],
    quantum: Optional[TimeValue],
) -> Dict[str, object]:
    """Per-processor analytic units of every steady mode, extracted
    under ONE common quantizer (the GCD of every mode's natural
    quantum, unless the caller pinned one) so tasks from different
    modes are comparable in the transient union.  A mode outside the
    classical fragment maps to its reason string instead -- the
    transient machinery is task-model based and abstains there.
    """
    import math

    from repro.errors import QuantizationError
    from repro.portfolio.context import build_context
    from repro.translate.quantum import TimingQuantizer

    instances: Dict[str, SystemInstance] = {
        mode.lower(): instantiate(
            model, impl.name, mode_overrides={impl.name: mode}
        )
        for mode in modes
    }
    if quantum is not None:
        quantizer = TimingQuantizer(quantum)
    else:
        gcd_ps = 0
        try:
            for instance in instances.values():
                natural = TimingQuantizer.natural(instance)
                gcd_ps = math.gcd(gcd_ps, natural.quantum.picoseconds)
        except QuantizationError as exc:
            reason = str(exc)
            return {key: reason for key in instances}
        quantizer = TimingQuantizer(TimeValue(gcd_ps, "ps"))

    units: Dict[str, object] = {}
    for key, instance in instances.items():
        context = build_context(
            instance, quantizer=quantizer, steady_mode=True
        )
        if not context.applicable:
            units[key] = f"mode {key}: {context.inapplicable}"
        else:
            units[key] = {unit.processor: unit for unit in context.units}
    return units
