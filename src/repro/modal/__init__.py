"""Mode-transition schedulability: modes as a first-class scenario family.

The steady per-mode analysis (:mod:`repro.analysis.modes`) answers
"is every mode schedulable on its own?".  This package answers the
harder question the paper's multi-modal models (S2) raise: **is the
system schedulable while it moves between modes?**  Three layers:

* :mod:`.automaton` -- the mode automaton of a component
  implementation: reachability from the initial mode, trigger
  legality, and the per-edge activated/deactivated thread deltas.
* :mod:`.transient` -- the transition-transient decision procedure
  under an explicit mode-change protocol (synchronous hyperperiod
  boundary vs. asynchronous overlap), analytic union test first,
  exhaustive switch-phasing simulation as escalation.
* :mod:`.analysis` -- :func:`analyze_modal`, the front door that
  combines both with the steady half and renders the per-transition
  trail.

The oracle relation for this family lives in
:mod:`repro.oracle.modal`; the fault registry is
:data:`MODAL_FAULTS`.
"""

from repro.modal.analysis import ModalResult, TransitionOutcome, analyze_modal
from repro.modal.automaton import ModeAutomaton, TransitionEdge
from repro.modal.transient import (
    DEFAULT_MAX_PHASINGS,
    DEFAULT_TRANSIENT_WINDOW,
    MODAL_FAULTS,
    PROTOCOLS,
    TransientCheck,
    check_transition,
    simulate_transition,
    transient_union_check,
    union_task_set,
)

__all__ = [
    "DEFAULT_MAX_PHASINGS",
    "DEFAULT_TRANSIENT_WINDOW",
    "MODAL_FAULTS",
    "ModalResult",
    "ModeAutomaton",
    "PROTOCOLS",
    "TransientCheck",
    "TransitionEdge",
    "TransitionOutcome",
    "analyze_modal",
    "check_transition",
    "simulate_transition",
    "transient_union_check",
    "union_task_set",
]
