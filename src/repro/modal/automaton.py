"""The mode automaton of a root implementation.

AADL's system operation modes form a finite automaton: states are the
declared modes, edges the declared ``source -[trigger]-> target``
transitions, the start state the unique ``initial`` mode.  The paper
(S2) introduces the modal model but leaves transitions out of the
translation; this layer makes the automaton itself first-class so the
analyses above it can reason about *which* modes matter and *what*
changes on each switch:

* **reachability** -- a mode no transition path reaches from the
  initial mode never occurs at runtime, so its (possibly unschedulable)
  workload must not count against the system verdict;
* **trigger legality** -- every transition trigger must name a real
  port (delegated to :func:`repro.aadl.validation.collect_mode_violations`
  so the CLI ``validate`` report and this layer agree by construction);
* **per-edge deltas** -- the thread subcomponents a switch activates
  and deactivates, the raw material of the transient analysis
  (:mod:`repro.modal.transient`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.aadl.components import (
    ComponentCategory,
    ComponentImplementation,
    DeclarativeModel,
)


class TransitionEdge:
    """One declared mode transition plus its workload delta."""

    __slots__ = ("source", "trigger", "target", "activated", "deactivated")

    def __init__(
        self,
        source: str,
        trigger: str,
        target: str,
        activated: Tuple[str, ...],
        deactivated: Tuple[str, ...],
    ) -> None:
        self.source = source
        self.trigger = trigger
        self.target = target
        #: thread subcomponents active in ``target`` but not ``source``
        self.activated = activated
        #: thread subcomponents active in ``source`` but not ``target``
        self.deactivated = deactivated

    @property
    def label(self) -> str:
        return f"{self.source} -[{self.trigger}]-> {self.target}"

    def __repr__(self) -> str:
        return f"TransitionEdge({self.label})"


class ModeAutomaton:
    """The automaton over one implementation's declared modes."""

    __slots__ = ("impl_name", "modes", "initial", "edges", "violations")

    def __init__(
        self,
        impl_name: str,
        modes: List[str],
        initial: Optional[str],
        edges: List[TransitionEdge],
        violations: List[str],
    ) -> None:
        self.impl_name = impl_name
        #: declared mode names, declaration order, original spelling
        self.modes = modes
        self.initial = initial
        self.edges = edges
        #: mode-declaration legality problems (same messages as the
        #: ``validate`` report); analyses refuse to run while non-empty
        self.violations = violations

    @classmethod
    def from_implementation(
        cls,
        model: DeclarativeModel,
        impl: ComponentImplementation,
    ) -> "ModeAutomaton":
        from repro.aadl.validation import collect_mode_violations

        violations = collect_mode_violations(model, impl)
        modes = [mode.name for mode in impl.modes.values()]
        initials = [m.name for m in impl.modes.values() if m.initial]
        initial = initials[0] if len(initials) == 1 else None
        active: Dict[str, FrozenSet[str]] = {
            name: _active_threads(impl, name) for name in modes
        }
        edges: List[TransitionEdge] = []
        for transition in impl.mode_transitions:
            source = impl.modes.get(transition.source.lower())
            target = impl.modes.get(transition.target.lower())
            if source is None or target is None:
                # Already a violation; no edge to build.
                continue
            old = active[source.name]
            new = active[target.name]
            edges.append(
                TransitionEdge(
                    source.name,
                    transition.trigger,
                    target.name,
                    tuple(sorted(new - old)),
                    tuple(sorted(old - new)),
                )
            )
        return cls(impl.name, modes, initial, edges, violations)

    def reachable_modes(self) -> FrozenSet[str]:
        """Modes reachable from the initial mode via declared
        transitions.  A model with modes but *no* transitions keeps the
        historical steady-mode reading -- every mode is a possible
        (externally chosen) configuration -- so all modes count."""
        if not self.edges or self.initial is None:
            return frozenset(self.modes)
        successors: Dict[str, List[str]] = {}
        for edge in self.edges:
            successors.setdefault(edge.source.lower(), []).append(
                edge.target
            )
        seen = {self.initial.lower()}
        frontier = [self.initial]
        while frontier:
            mode = frontier.pop()
            for target in successors.get(mode.lower(), ()):
                if target.lower() not in seen:
                    seen.add(target.lower())
                    frontier.append(target)
        return frozenset(m for m in self.modes if m.lower() in seen)

    def unreachable_modes(self) -> Tuple[str, ...]:
        reachable = {m.lower() for m in self.reachable_modes()}
        return tuple(m for m in self.modes if m.lower() not in reachable)

    def reachable_edges(self) -> List[TransitionEdge]:
        """Edges whose source mode can actually occur."""
        reachable = {m.lower() for m in self.reachable_modes()}
        return [e for e in self.edges if e.source.lower() in reachable]

    def __repr__(self) -> str:
        return (
            f"ModeAutomaton({self.impl_name!r}, {len(self.modes)} mode(s), "
            f"{len(self.edges)} transition(s))"
        )


def _active_threads(
    impl: ComponentImplementation, mode: str
) -> FrozenSet[str]:
    """Thread(-bearing) subcomponents active in ``mode``: those with no
    ``in modes`` clause plus those listing the mode."""
    active = set()
    for sub in impl.subcomponents.values():
        if sub.category not in (
            ComponentCategory.THREAD,
            ComponentCategory.THREAD_GROUP,
            ComponentCategory.PROCESS,
            ComponentCategory.SYSTEM,
        ):
            continue
        if not sub.in_modes or mode.lower() in {
            m.lower() for m in sub.in_modes
        }:
            active.add(sub.name)
    return frozenset(active)
