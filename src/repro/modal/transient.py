"""Transition-transient schedulability under a mode-change protocol.

A mode switch is not instantaneous for the workload: jobs of
deactivated threads released before the switch still hold their
deadlines, while threads the new mode activates start releasing at the
switch.  Whether that *transient* overlap can miss a deadline depends
on the mode-change protocol:

* ``synchronous`` -- the runtime delays the switch to the next
  hyperperiod boundary of the old mode.  At a boundary of a schedulable
  constrained-deadline mode every released job has completed, so there
  is no carry-over at all and the steady per-mode verdicts already
  cover the transition.  This is the sound fast path (and the standard
  ARINC-653 reading of a major-frame switch).
* ``asynchronous`` -- the switch may happen at any instant.  The
  transient workload is the union of completing old-mode jobs and the
  newly released new-mode jobs.  Two-step decision procedure:

  1. **analytic (sufficient)**: the *union* task set -- every task of
     either mode, offsets stripped (the synchronous release is the
     critical instant, so this upper-bounds every switch phasing) --
     checked with the existing response-time / EDF demand machinery.
     A pass proves every transient phasing safe; a fail proves nothing.
  2. **escalation (exact over the window)**: simulate the actual
     switch at *every* boundary phasing in one old-mode hyperperiod,
     old tasks ceasing release at the switch but completing in-flight
     jobs, new tasks released from the switch on.  Caps on phasings
     and window length return UNKNOWN rather than guess.

``fault="shrink-transient-window"`` deliberately corrupts step 2 into
the classic unsound shortcut -- drop carry-over jobs at the switch and
observe only a truncated window -- so the oracle campaign
(:mod:`repro.oracle.modal`) can prove it would catch such a bug.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError, SchedError
from repro.sched.demand import edf_schedulable
from repro.sched.rta import rta_schedulable
from repro.sched.taskmodel import PeriodicTask, TaskSet

#: Recognized mode-change protocols, in CLI order.
PROTOCOLS = ("synchronous", "asynchronous")

#: Registered transient-checker defects for oracle self-tests.
MODAL_FAULTS = ("shrink-transient-window",)

#: Caps on the escalated simulation: switch phasings tried (one per
#: quantum of the old-mode hyperperiod) and simulated quanta per
#: phasing.  Exceeding either yields UNKNOWN, never a guess.
DEFAULT_MAX_PHASINGS = 512
DEFAULT_TRANSIENT_WINDOW = 1 << 15

_EPSILON = 1e-12


class TransientCheck:
    """Outcome of one transition's transient analysis."""

    __slots__ = ("schedulable", "decided_by", "detail", "escalated")

    def __init__(
        self,
        schedulable: Optional[bool],
        decided_by: str,
        detail: str,
        *,
        escalated: bool = False,
    ) -> None:
        #: True / False / None (= undecided under the caps)
        self.schedulable = schedulable
        self.decided_by = decided_by
        self.detail = detail
        self.escalated = escalated

    def __repr__(self) -> str:
        return (
            f"TransientCheck({self.schedulable}, by={self.decided_by!r})"
        )


def union_task_set(
    old_tasks: Sequence[PeriodicTask], new_tasks: Sequence[PeriodicTask]
) -> TaskSet:
    """The offset-free union of both modes' tasks, by name.

    A thread present in both modes contributes once; if its parameters
    differ between modes (distinct classifiers under one name) the
    worst case of each parameter is kept, so the union stays an upper
    bound on transient demand.
    """
    merged: Dict[str, PeriodicTask] = {}
    for task in list(old_tasks) + list(new_tasks):
        seen = merged.get(task.name)
        if seen is None:
            merged[task.name] = _strip_offset(task)
        elif (
            seen.wcet != task.wcet
            or seen.period != task.period
            or seen.deadline != task.deadline
        ):
            merged[task.name] = PeriodicTask(
                task.name,
                wcet=max(seen.wcet, task.wcet),
                period=min(seen.period, task.period),
                deadline=min(
                    seen.deadline, task.deadline, min(seen.period, task.period)
                ),
                priority=seen.priority,
            )
    if not merged:
        raise AnalysisError("transition with no tasks on either side")
    return TaskSet(list(merged.values()))


def _strip_offset(task: PeriodicTask) -> PeriodicTask:
    if task.offset == 0:
        return task
    return PeriodicTask(
        task.name,
        wcet=task.wcet,
        period=task.period,
        deadline=task.deadline,
        priority=task.priority,
        bcet=task.bcet,
    )


def transient_union_check(
    old_tasks: Sequence[PeriodicTask],
    new_tasks: Sequence[PeriodicTask],
    *,
    ordering: Optional[str] = None,
    edf: bool = False,
) -> Optional[bool]:
    """The sufficient analytic transient test: is the *union* of both
    modes schedulable as a permanent set?  True proves every switch
    phasing transient-safe; None means undecided (escalate) -- either
    the union failed (transients can still work out: the overload is
    never sustained) or no analytic test fits the policy."""
    union = union_task_set(old_tasks, new_tasks)
    if union.utilization > 1.0 + _EPSILON:
        return None
    try:
        if edf:
            ok = edf_schedulable(union)
        elif ordering is not None:
            ok = rta_schedulable(union, ordering=ordering)
        else:
            return None
    except SchedError:
        return None
    return True if ok else None


def simulate_transition(
    old_tasks: Sequence[PeriodicTask],
    new_tasks: Sequence[PeriodicTask],
    *,
    switch: int,
    policy: str,
    window: int,
) -> Tuple[bool, Optional[str]]:
    """Simulate one asynchronous mode switch at absolute time ``switch``.

    Old-mode tasks release synchronously from 0 (plus their offsets) and
    stop releasing at the switch, but in-flight jobs keep their
    deadlines and complete under the new contention.  New-mode-only
    tasks release from ``switch`` on (plus offsets); tasks present in
    both modes keep their old-mode release pattern uninterrupted.
    Returns ``(schedulable, first-miss detail)`` over ``[0, window)``.
    """
    old_by_name = {t.name: t for t in old_tasks}
    new_by_name = {t.name: t for t in new_tasks}
    continued = set(old_by_name) & set(new_by_name)
    tasks = list(old_tasks) + [
        t for t in new_tasks if t.name not in continued
    ]

    static_rank: Dict[str, int] = {}
    if policy in ("rate", "deadline", "explicit"):
        union = TaskSet(tasks)
        if policy == "rate":
            ordered = union.by_rate_monotonic()
        elif policy == "deadline":
            ordered = union.by_deadline_monotonic()
        else:
            ordered = union.by_explicit_priority()
        static_rank = {task.name: idx for idx, task in enumerate(ordered)}
    elif policy not in ("edf", "llf"):
        raise SchedError(f"unknown policy {policy!r}")

    from repro.sched.simulation import _Job, _pick

    ready: List[_Job] = []
    for now in range(window):
        for task in old_tasks:
            released = (
                now >= task.offset
                and (now - task.offset) % task.period == 0
            )
            if released and (now < switch or task.name in continued):
                ready.append(_Job(task, now))
        for task in new_tasks:
            if task.name in continued:
                continue
            start = switch + task.offset
            if now >= start and (now - start) % task.period == 0:
                ready.append(_Job(task, now))

        still_ready: List[_Job] = []
        for job in ready:
            if job.remaining > 0 and now >= job.deadline:
                return False, (
                    f"{job.task.name} misses at t={job.deadline} "
                    f"(switch at t={switch})"
                )
            still_ready.append(job)
        ready = still_ready

        running = _pick(ready, policy, static_rank, now)
        if running is not None:
            running.remaining -= 1
            if running.remaining == 0:
                ready.remove(running)

    for job in ready:
        if job.remaining > 0 and job.deadline <= window:
            return False, (
                f"{job.task.name} misses at t={job.deadline} "
                f"(switch at t={switch})"
            )
    return True, None


def check_transition(
    old_tasks: Sequence[PeriodicTask],
    new_tasks: Sequence[PeriodicTask],
    *,
    ordering: Optional[str] = None,
    edf: bool = False,
    policy: Optional[str] = None,
    max_phasings: int = DEFAULT_MAX_PHASINGS,
    max_window: int = DEFAULT_TRANSIENT_WINDOW,
    fault: Optional[str] = None,
) -> TransientCheck:
    """Decide one asynchronous transition on one processor.

    Analytic union test first; on undecided, escalate to exhaustive
    switch-phasing simulation.  ``fault`` injects a registered
    :data:`MODAL_FAULTS` defect into the escalated simulation only
    (the analytic step stays honest -- a fault must corrupt exactly
    the layer whose soundness the oracle relation checks).
    """
    if fault is not None and fault not in MODAL_FAULTS:
        raise AnalysisError(
            f"unknown modal fault {fault!r}; choose from {list(MODAL_FAULTS)}"
        )
    if not old_tasks and not new_tasks:
        return TransientCheck(
            True, "empty", "no tasks on either side of the switch"
        )
    analytic = transient_union_check(
        old_tasks, new_tasks, ordering=ordering, edf=edf
    )
    if analytic:
        return TransientCheck(
            True,
            "transient-union-" + ("edf" if edf else "rta"),
            "union of both modes schedulable as a permanent set",
        )
    if policy is None:
        return TransientCheck(
            None,
            "inapplicable",
            "no simulation policy for this scheduling protocol",
            escalated=True,
        )

    old_hyper = TaskSet(list(old_tasks)).hyperperiod if old_tasks else 1
    if old_hyper > max_phasings:
        return TransientCheck(
            None,
            "transient-simulation",
            f"old-mode hyperperiod {old_hyper} exceeds the phasing cap "
            f"{max_phasings}",
            escalated=True,
        )
    new_hyper = TaskSet(list(new_tasks)).hyperperiod if new_tasks else 1
    max_old_deadline = max(
        (t.offset + t.deadline for t in old_tasks), default=0
    )
    max_new_offset = max((t.offset for t in new_tasks), default=0)
    for switch in range(old_hyper):
        window = switch + max_old_deadline + max_new_offset + 2 * new_hyper
        if fault == "shrink-transient-window":
            # The unsound shortcut under test: pretend the switch is a
            # clean restart -- no carry-over, and only a sliver of the
            # new mode observed.
            ok, detail = simulate_transition(
                [],
                list(new_tasks),
                switch=switch,
                policy=policy,
                window=switch + max(1, new_hyper // 2),
            )
        else:
            if window > max_window:
                return TransientCheck(
                    None,
                    "transient-simulation",
                    f"transient window {window} exceeds the cap "
                    f"{max_window} at switch t={switch}",
                    escalated=True,
                )
            ok, detail = simulate_transition(
                list(old_tasks),
                list(new_tasks),
                switch=switch,
                policy=policy,
                window=window,
            )
        if not ok:
            return TransientCheck(
                False, "transient-simulation", detail or "", escalated=True
            )
    return TransientCheck(
        True,
        "transient-simulation",
        f"all {old_hyper} switch phasing(s) miss-free",
        escalated=True,
    )
