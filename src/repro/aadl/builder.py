"""Fluent programmatic construction of bound AADL systems.

The :class:`SystemBuilder` covers the common flat shape -- threads,
processors and buses directly under one system, sibling connections,
bindings -- without writing textual AADL::

    b = SystemBuilder("Example")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    t1 = b.thread("sensor", dispatch=DispatchProtocol.PERIODIC,
                  period=ms(20), compute_time=(ms(2), ms(4)),
                  deadline=ms(20), processor=cpu)
    t1.out_data_port("speed")
    t2 = b.thread("ctrl", ...); t2.in_data_port("speed")
    b.connect(t1, "speed", t2, "speed")
    instance = b.instantiate()

Hierarchical models (like the paper's Figure 1) are better written in
textual AADL -- see :mod:`repro.aadl.gallery`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import AadlError
from repro.aadl.components import (
    ComponentCategory,
    ComponentImplementation,
    ComponentType,
    DeclarativeModel,
    Subcomponent,
)
from repro.aadl.connections import Connection, ConnectionRef
from repro.aadl.features import Port, PortDirection, PortKind
from repro.aadl.instance import SystemInstance, instantiate
from repro.aadl.modes import Mode, ModeTransition
from repro.aadl.properties import (
    ACTUAL_CONNECTION_BINDING,
    ACTUAL_PROCESSOR_BINDING,
    COMPUTE_DEADLINE,
    COMPUTE_EXECUTION_TIME,
    DISPATCH_OFFSET,
    DISPATCH_PROTOCOL,
    EXECUTION_TIME,
    OVERFLOW_HANDLING_PROTOCOL,
    PERIOD,
    PRIORITY,
    QUEUE_SIZE,
    SCHEDULING_PROTOCOL,
    URGENCY,
    DispatchProtocol,
    OverflowHandlingProtocol,
    ReferenceValue,
    SchedulingProtocol,
    TimeRange,
    TimeValue,
)
from repro.aadl.validation import check_translation_assumptions

TimeLike = Union[TimeValue, int]


def _as_time(value: TimeLike, what: str) -> TimeValue:
    if isinstance(value, TimeValue):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return TimeValue(value, "ms")
    raise AadlError(f"{what} must be a TimeValue or int (ms), got {value!r}")


class ProcessorHandle:
    """Builder-side handle for a processor subcomponent."""

    def __init__(self, builder: "SystemBuilder", name: str) -> None:
        self.builder = builder
        self.name = name

    def __repr__(self) -> str:
        return f"ProcessorHandle({self.name!r})"


class VirtualProcessorHandle:
    """Builder-side handle for a virtual processor (ARINC-653
    partition server): threads bind to it like a processor."""

    def __init__(self, builder: "SystemBuilder", name: str) -> None:
        self.builder = builder
        self.name = name

    def __repr__(self) -> str:
        return f"VirtualProcessorHandle({self.name!r})"


class BusHandle:
    """Builder-side handle for a bus subcomponent."""

    def __init__(self, builder: "SystemBuilder", name: str) -> None:
        self.builder = builder
        self.name = name

    def __repr__(self) -> str:
        return f"BusHandle({self.name!r})"


class ThreadHandle:
    """Builder-side handle for a thread: add ports, then connect."""

    def __init__(
        self, builder: "SystemBuilder", name: str, ctype: ComponentType
    ) -> None:
        self.builder = builder
        self.name = name
        self.ctype = ctype

    def _port(
        self,
        name: str,
        direction: PortDirection,
        kind: PortKind,
        queue_size: Optional[int] = None,
        overflow: Optional[OverflowHandlingProtocol] = None,
    ) -> "ThreadHandle":
        port = Port(name, direction, kind)
        if queue_size is not None:
            port.add_property(QUEUE_SIZE, queue_size)
        if overflow is not None:
            port.add_property(OVERFLOW_HANDLING_PROTOCOL, overflow)
        self.ctype.add_feature(port)
        return self

    def out_data_port(self, name: str) -> "ThreadHandle":
        return self._port(name, PortDirection.OUT, PortKind.DATA)

    def in_data_port(self, name: str) -> "ThreadHandle":
        return self._port(name, PortDirection.IN, PortKind.DATA)

    def out_event_port(self, name: str) -> "ThreadHandle":
        return self._port(name, PortDirection.OUT, PortKind.EVENT)

    def in_event_port(
        self,
        name: str,
        *,
        queue_size: Optional[int] = None,
        overflow: Optional[OverflowHandlingProtocol] = None,
    ) -> "ThreadHandle":
        return self._port(
            name, PortDirection.IN, PortKind.EVENT, queue_size, overflow
        )

    def out_event_data_port(self, name: str) -> "ThreadHandle":
        return self._port(name, PortDirection.OUT, PortKind.EVENT_DATA)

    def in_event_data_port(
        self,
        name: str,
        *,
        queue_size: Optional[int] = None,
        overflow: Optional[OverflowHandlingProtocol] = None,
    ) -> "ThreadHandle":
        return self._port(
            name, PortDirection.IN, PortKind.EVENT_DATA, queue_size, overflow
        )

    def requires_data_access(
        self, name: str, classifier: Optional[str] = None
    ) -> "ThreadHandle":
        """Shared-data access: threads naming the same ``classifier``
        contend for one resource (Figure 5's R set)."""
        from repro.aadl.features import (
            AccessCategory,
            AccessFeature,
            AccessKind,
        )

        self.ctype.add_feature(
            AccessFeature(
                name, AccessKind.REQUIRES, AccessCategory.DATA, classifier
            )
        )
        return self

    def __repr__(self) -> str:
        return f"ThreadHandle({self.name!r})"


class SystemBuilder:
    """Accumulates a flat bound system and instantiates it."""

    def __init__(self, name: str = "Example") -> None:
        self.name = name
        self.model = DeclarativeModel()
        self._system_type = ComponentType(name, ComponentCategory.SYSTEM)
        self.model.add_type(self._system_type)
        self._impl = ComponentImplementation(f"{name}.impl")
        self._threads: Dict[str, ThreadHandle] = {}
        self._processors: Dict[str, ProcessorHandle] = {}
        self._virtual_processors: Dict[str, VirtualProcessorHandle] = {}
        self._buses: Dict[str, BusHandle] = {}
        self._conn_count = 0
        self._impl_registered = False

    # -- components -------------------------------------------------------

    def processor(
        self,
        name: str,
        *,
        scheduling: Union[SchedulingProtocol, str] = (
            SchedulingProtocol.RATE_MONOTONIC
        ),
    ) -> ProcessorHandle:
        """Add a processor with the given scheduling protocol."""
        if isinstance(scheduling, str):
            scheduling = SchedulingProtocol.parse(scheduling)
        ctype = ComponentType(f"{name}_cpu", ComponentCategory.PROCESSOR)
        ctype.add_property(SCHEDULING_PROTOCOL, scheduling)
        self.model.add_type(ctype)
        self._impl.add_subcomponent(
            Subcomponent(name, ComponentCategory.PROCESSOR, ctype.name)
        )
        handle = ProcessorHandle(self, name)
        self._processors[name] = handle
        return handle

    def virtual_processor(
        self,
        name: str,
        *,
        period: TimeLike,
        budget: TimeLike,
        scheduling: Union[SchedulingProtocol, str] = (
            SchedulingProtocol.RATE_MONOTONIC
        ),
        processor: Optional[ProcessorHandle] = None,
        priority: Optional[int] = None,
    ) -> VirtualProcessorHandle:
        """Add a virtual processor: a periodic server supplying
        ``budget`` units of every ``period`` (the ARINC-653 partition
        shape), scheduling its bound threads with ``scheduling`` and
        itself bound to ``processor``.  ``priority`` ranks the server
        task on an HPF host."""
        if isinstance(scheduling, str):
            scheduling = SchedulingProtocol.parse(scheduling)
        ctype = ComponentType(
            f"{name}_vproc", ComponentCategory.VIRTUAL_PROCESSOR
        )
        ctype.add_property(SCHEDULING_PROTOCOL, scheduling)
        ctype.add_property(PERIOD, _as_time(period, "period"))
        ctype.add_property(EXECUTION_TIME, _as_time(budget, "budget"))
        if priority is not None:
            ctype.add_property(PRIORITY, priority)
        self.model.add_type(ctype)
        self._impl.add_subcomponent(
            Subcomponent(
                name, ComponentCategory.VIRTUAL_PROCESSOR, ctype.name
            )
        )
        if processor is not None:
            self._impl.add_property(
                ACTUAL_PROCESSOR_BINDING,
                ReferenceValue((processor.name,)),
                applies_to=(name,),
            )
        handle = VirtualProcessorHandle(self, name)
        self._virtual_processors[name] = handle
        return handle

    def bus(self, name: str) -> BusHandle:
        """Add a bus component."""
        ctype = ComponentType(f"{name}_bus", ComponentCategory.BUS)
        self.model.add_type(ctype)
        self._impl.add_subcomponent(
            Subcomponent(name, ComponentCategory.BUS, ctype.name)
        )
        handle = BusHandle(self, name)
        self._buses[name] = handle
        return handle

    def thread(
        self,
        name: str,
        *,
        dispatch: Union[DispatchProtocol, str],
        compute_time: Union[Tuple[TimeLike, TimeLike], TimeLike],
        deadline: TimeLike,
        period: Optional[TimeLike] = None,
        processor: Optional[
            Union[ProcessorHandle, VirtualProcessorHandle]
        ] = None,
        priority: Optional[int] = None,
        offset: Optional[TimeLike] = None,
        in_modes: Tuple[str, ...] = (),
    ) -> ThreadHandle:
        """Add a thread with its timing properties and binding (to a
        processor or a virtual processor).  ``in_modes`` restricts the
        thread to the named system operation modes (active in every
        mode when empty)."""
        if isinstance(dispatch, str):
            dispatch = DispatchProtocol.parse(dispatch)
        ctype = ComponentType(f"{name}_thr", ComponentCategory.THREAD)
        ctype.add_property(DISPATCH_PROTOCOL, dispatch)
        if isinstance(compute_time, tuple):
            low, high = compute_time
            ctype.add_property(
                COMPUTE_EXECUTION_TIME,
                TimeRange(
                    _as_time(low, "compute_time low"),
                    _as_time(high, "compute_time high"),
                ),
            )
        else:
            time = _as_time(compute_time, "compute_time")
            ctype.add_property(COMPUTE_EXECUTION_TIME, TimeRange(time, time))
        ctype.add_property(COMPUTE_DEADLINE, _as_time(deadline, "deadline"))
        if period is not None:
            ctype.add_property(PERIOD, _as_time(period, "period"))
        if offset is not None:
            ctype.add_property(DISPATCH_OFFSET, _as_time(offset, "offset"))
        if priority is not None:
            ctype.add_property(PRIORITY, priority)
        self.model.add_type(ctype)
        self._impl.add_subcomponent(
            Subcomponent(
                name, ComponentCategory.THREAD, ctype.name, in_modes
            )
        )
        if processor is not None:
            self._impl.add_property(
                ACTUAL_PROCESSOR_BINDING,
                ReferenceValue((processor.name,)),
                applies_to=(name,),
            )
        handle = ThreadHandle(self, name, ctype)
        self._threads[name] = handle
        return handle

    # -- modes --------------------------------------------------------------

    def mode(self, name: str, *, initial: bool = False) -> str:
        """Declare a system operation mode on the root implementation.

        Exactly one mode must be declared ``initial``.  Returns the
        mode name for use in ``in_modes`` and transitions.
        """
        self._impl.add_mode(Mode(name, initial=initial))
        return name

    def mode_transition(
        self, source: str, trigger: str, target: str
    ) -> None:
        """Declare a mode transition ``source -[trigger]-> target``.

        ``trigger`` is either ``"sub.port"`` (an event arriving on a
        subcomponent's out port) or a bare feature of the root system
        type; legality is checked by
        :func:`repro.aadl.validation.collect_mode_violations`.
        """
        self._impl.mode_transitions.append(
            ModeTransition(source, trigger, target)
        )

    # -- connections --------------------------------------------------------

    def connect(
        self,
        source: ThreadHandle,
        source_port: str,
        destination: ThreadHandle,
        destination_port: str,
        *,
        bus: Optional[BusHandle] = None,
        urgency: Optional[int] = None,
        name: Optional[str] = None,
        in_modes: Tuple[str, ...] = (),
    ) -> Connection:
        """Connect two sibling thread ports, optionally bound to a bus
        and optionally restricted to the named modes."""
        self._conn_count += 1
        conn = Connection(
            name or f"conn{self._conn_count}",
            ConnectionRef(source_port, source.name),
            ConnectionRef(destination_port, destination.name),
            in_modes=in_modes,
        )
        if bus is not None:
            conn.add_property(
                ACTUAL_CONNECTION_BINDING, ReferenceValue((bus.name,))
            )
        if urgency is not None:
            conn.add_property(URGENCY, urgency)
        self._impl.add_connection(conn)
        return conn

    # -- output ---------------------------------------------------------------

    def declarative(self) -> DeclarativeModel:
        """The underlying declarative model (registers the root impl)."""
        if not self._impl_registered:
            self.model.add_implementation(self._impl)
            self._impl_registered = True
        return self.model

    def instantiate(self, *, validate: bool = True) -> SystemInstance:
        """Instantiate the system; by default also run the S4.1 checks."""
        model = self.declarative()
        instance = instantiate(model, f"{self.name}.impl")
        if validate:
            check_translation_assumptions(instance)
        return instance
