"""Canned AADL models, including the paper's Figure 1 cruise control.

The cruise-control system is written in textual AADL (exercising the
parser and hierarchical semantic-connection resolution); the smaller
models use :class:`~repro.aadl.builder.SystemBuilder`.

The paper gives the cruise-control architecture but not its timing
properties; the numbers below are chosen to be schedulable under RMS with
a comfortable margin (utilization 0.7 and 0.6 on the two processors) and
to quantize exactly with a 10 ms quantum.  ``cruise_control_overloaded``
inflates Cruise1's execution time so the CCL processor misses deadlines.
"""

from __future__ import annotations

from repro.aadl.builder import SystemBuilder
from repro.aadl.instance import SystemInstance, instantiate
from repro.aadl.parser import parse_model
from repro.aadl.properties import (
    DispatchProtocol,
    OverflowHandlingProtocol,
    SchedulingProtocol,
    ms,
)

# Figure 1: two processors joined by a bus; the HCI subsystem (four
# threads) is bound to one, CruiseControlLaws (two threads) to the other.
# Data connections only -- per S4.1 the translation yields 6 thread
# processes + 6 dispatchers and no queue processes.  DriverModeLogic and
# RefSpeed have outgoing data connections mapped to the bus (S4.2).
_CRUISE_CONTROL_TEMPLATE = """
processor CPU
  properties
    Scheduling_Protocol => RMS;
end CPU;

bus Network
end Network;

thread ButtonPanel
  features
    buttons: out data port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 50 ms;
    Compute_Execution_Time => 10 ms .. 10 ms;
    Compute_Deadline => 50 ms;
end ButtonPanel;

thread DriverModeLogic
  features
    buttons: in data port;
    mode: out data port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 50 ms;
    Compute_Execution_Time => 10 ms .. 10 ms;
    Compute_Deadline => 50 ms;
end DriverModeLogic;

thread RefSpeed
  features
    speed: out data port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 50 ms;
    Compute_Execution_Time => 10 ms .. 10 ms;
    Compute_Deadline => 50 ms;
end RefSpeed;

thread InstrumentPanel
  features
    display: in data port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 100 ms;
    Compute_Execution_Time => 10 ms .. 10 ms;
    Compute_Deadline => 100 ms;
end InstrumentPanel;

thread Cruise1
  features
    mode: in data port;
    speed: in data port;
    law: out data port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 50 ms;
    Compute_Execution_Time => @C1@ ms .. @C1@ ms;
    Compute_Deadline => 50 ms;
end Cruise1;

thread Cruise2
  features
    law: in data port;
    display: out data port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 100 ms;
    Compute_Execution_Time => @C2@ ms .. @C2@ ms;
    Compute_Deadline => 100 ms;
end Cruise2;

system HCI
  features
    mode_out: out data port;
    speed_out: out data port;
    display_in: in data port;
end HCI;

system implementation HCI.impl
  subcomponents
    buttonpanel: thread ButtonPanel;
    drivermodelogic: thread DriverModeLogic;
    refspeed: thread RefSpeed;
    instrumentpanel: thread InstrumentPanel;
  connections
    hc1: port buttonpanel.buttons -> drivermodelogic.buttons;
    hc2: port drivermodelogic.mode -> mode_out;
    hc3: port refspeed.speed -> speed_out;
    hc4: port display_in -> instrumentpanel.display;
end HCI.impl;

system CruiseControlLaws
  features
    mode_in: in data port;
    speed_in: in data port;
    display_out: out data port;
end CruiseControlLaws;

system implementation CruiseControlLaws.impl
  subcomponents
    cruise1: thread Cruise1;
    cruise2: thread Cruise2;
  connections
    cc1: port mode_in -> cruise1.mode;
    cc2: port speed_in -> cruise1.speed;
    cc3: port cruise1.law -> cruise2.law;
    cc4: port cruise2.display -> display_out;
end CruiseControlLaws.impl;

system CruiseControl
end CruiseControl;

system implementation CruiseControl.impl
  subcomponents
    hci: system HCI.impl;
    ccl: system CruiseControlLaws.impl;
    hci_processor: processor CPU;
    ccl_processor: processor CPU;
    net: bus Network;
  connections
    sc1: port hci.mode_out -> ccl.mode_in
         { Actual_Connection_Binding => reference(net); };
    sc2: port hci.speed_out -> ccl.speed_in
         { Actual_Connection_Binding => reference(net); };
    sc3: port ccl.display_out -> hci.display_in;
  properties
    Actual_Processor_Binding => reference(hci_processor)
        applies to hci.buttonpanel;
    Actual_Processor_Binding => reference(hci_processor)
        applies to hci.drivermodelogic;
    Actual_Processor_Binding => reference(hci_processor)
        applies to hci.refspeed;
    Actual_Processor_Binding => reference(hci_processor)
        applies to hci.instrumentpanel;
    Actual_Processor_Binding => reference(ccl_processor)
        applies to ccl.cruise1;
    Actual_Processor_Binding => reference(ccl_processor)
        applies to ccl.cruise2;
end CruiseControl.impl;
"""


def cruise_control_text(*, overloaded: bool = False) -> str:
    """Textual AADL for the Figure 1 cruise-control system."""
    if overloaded:
        # Cruise1 alone saturates the CCL processor: U = 40/50 + 30/100.
        c1, c2 = 40, 30
    else:
        c1, c2 = 20, 20
    return _CRUISE_CONTROL_TEMPLATE.replace("@C1@", str(c1)).replace(
        "@C2@", str(c2)
    )


def cruise_control(*, overloaded: bool = False) -> SystemInstance:
    """Instantiated Figure 1 model (schedulable unless ``overloaded``)."""
    model = parse_model(cruise_control_text(overloaded=overloaded))
    return instantiate(model, "CruiseControl.impl")


def two_periodic_threads(
    *,
    schedulable: bool = True,
    scheduling: SchedulingProtocol = SchedulingProtocol.RATE_MONOTONIC,
) -> SystemInstance:
    """Minimal two-thread single-processor model.

    Schedulable variant: C1=1/T1=4, C2=2/T2=8 (U = 0.5).
    Unschedulable variant: C1=3/T1=4, C2=3/T2=8 (U = 1.125).
    Times are in ms with a natural 1 ms quantum.
    """
    b = SystemBuilder("TwoThreads")
    cpu = b.processor("cpu", scheduling=scheduling)
    if schedulable:
        c1, c2 = 1, 2
    else:
        c1, c2 = 3, 3
    b.thread(
        "fast",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(c1), ms(c1)),
        deadline=ms(4),
        processor=cpu,
        priority=2,
    )
    b.thread(
        "slow",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(c2), ms(c2)),
        deadline=ms(8),
        processor=cpu,
        priority=1,
    )
    return b.instantiate()


def sporadic_consumer(
    *,
    queue_size: int = 2,
    overflow: OverflowHandlingProtocol = OverflowHandlingProtocol.DROP_NEWEST,
    producer_period: int = 4,
    min_separation: int = 6,
) -> SystemInstance:
    """A periodic producer raising events consumed by a sporadic thread.

    The producer's period being shorter than the consumer's minimum
    separation makes the queue fill up, exercising the overflow protocols
    of S4.4.
    """
    b = SystemBuilder("SporadicChain")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.DEADLINE_MONOTONIC)
    producer = b.thread(
        "producer",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(producer_period),
        compute_time=(ms(1), ms(1)),
        deadline=ms(producer_period),
        processor=cpu,
    )
    producer.out_event_port("tick")
    consumer = b.thread(
        "consumer",
        dispatch=DispatchProtocol.SPORADIC,
        period=ms(min_separation),
        compute_time=(ms(1), ms(1)),
        deadline=ms(min_separation),
        processor=cpu,
    )
    consumer.in_event_port("trigger", queue_size=queue_size, overflow=overflow)
    b.connect(producer, "tick", consumer, "trigger")
    return b.instantiate()


def aperiodic_worker(*, deadline: int = 5, period: int = 8) -> SystemInstance:
    """A periodic driver dispatching an aperiodic worker through an event
    connection (Figure 6b scenario)."""
    b = SystemBuilder("AperiodicChain")
    cpu = b.processor("cpu", scheduling=SchedulingProtocol.DEADLINE_MONOTONIC)
    driver = b.thread(
        "driver",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(period),
        compute_time=(ms(1), ms(1)),
        deadline=ms(period),
        processor=cpu,
    )
    driver.out_event_port("go")
    worker = b.thread(
        "worker",
        dispatch=DispatchProtocol.APERIODIC,
        compute_time=(ms(2), ms(2)),
        deadline=ms(deadline),
        processor=cpu,
    )
    worker.in_event_port("go", queue_size=1)
    b.connect(driver, "go", worker, "go")
    return b.instantiate()


def shared_bus_pair() -> SystemInstance:
    """Two single-thread processors whose outgoing connections share one
    bus -- cross-processor resource contention (paper S3, Figure 3
    scenario at system scale)."""
    b = SystemBuilder("SharedBus")
    cpu1 = b.processor("cpu1", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    cpu2 = b.processor("cpu2", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    net = b.bus("net")
    sender1 = b.thread(
        "sender1",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(2), ms(2)),
        deadline=ms(4),
        processor=cpu1,
    )
    sender1.out_data_port("out1")
    sender2 = b.thread(
        "sender2",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(2), ms(2)),
        deadline=ms(4),
        processor=cpu2,
    )
    sender2.out_data_port("out2")
    sink = b.thread(
        "sink",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(1), ms(1)),
        deadline=ms(8),
        processor=cpu1,
    )
    sink.in_data_port("in1")
    sink.in_data_port("in2")
    b.connect(sender1, "out1", sink, "in1", bus=net)
    b.connect(sender2, "out2", sink, "in2", bus=net)
    return b.instantiate()


def dual_island(*, schedulable: bool = True) -> SystemInstance:
    """Two processors whose only interaction is a pure data connection:
    decomposable into two single-processor islands.

    Data ports into periodic threads generate no ACSR (no queue, no
    bus), so the cross-processor wire is not a coupling edge and
    ``repro.compose`` can analyze ``cpu1`` and ``cpu2`` separately --
    the sum of the island state spaces is far below their product.

    The unschedulable variant overloads only ``cpu2`` (U = 1.125), so
    the compositional verdict must surface island ``cpu2`` as the
    counterexample while ``cpu1`` stays clean.
    """
    b = SystemBuilder("DualIsland")
    cpu1 = b.processor("cpu1", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    cpu2 = b.processor("cpu2", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    fast = b.thread(
        "fast",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(1), ms(1)),
        deadline=ms(4),
        processor=cpu1,
        priority=2,
    )
    slow = b.thread(
        "slow",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(2), ms(2)),
        deadline=ms(8),
        processor=cpu1,
        priority=1,
    )
    slow.out_data_port("state")
    c_harvest, c_report = (1, 2) if schedulable else (3, 3)
    harvest = b.thread(
        "harvest",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(c_harvest), ms(c_harvest)),
        deadline=ms(4),
        processor=cpu2,
        priority=2,
    )
    report = b.thread(
        "report",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(c_report), ms(c_report)),
        deadline=ms(8),
        processor=cpu2,
        priority=1,
    )
    report.in_data_port("state")
    del fast, harvest
    b.connect(slow, "state", report, "state")
    return b.instantiate()


def coupled_islands() -> SystemInstance:
    """The :func:`dual_island` topology made indivisible: ``cpu1``'s
    producer dispatches an aperiodic thread on ``cpu2`` through a
    cross-processor event connection, so the queue process ties both
    schedules together and ``repro.compose`` must fall back to the
    monolithic analysis."""
    b = SystemBuilder("CoupledIslands")
    cpu1 = b.processor("cpu1", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    cpu2 = b.processor("cpu2", scheduling=SchedulingProtocol.RATE_MONOTONIC)
    producer = b.thread(
        "producer",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(1), ms(1)),
        deadline=ms(4),
        processor=cpu1,
        priority=2,
    )
    producer.out_event_port("kick")
    b.thread(
        "local",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(2), ms(2)),
        deadline=ms(8),
        processor=cpu1,
        priority=1,
    )
    remote = b.thread(
        "remote",
        dispatch=DispatchProtocol.APERIODIC,
        compute_time=(ms(1), ms(1)),
        deadline=ms(4),
        processor=cpu2,
        priority=2,
    )
    remote.in_event_port("kick", queue_size=1)
    b.thread(
        "steady",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(8),
        compute_time=(ms(2), ms(2)),
        deadline=ms(8),
        processor=cpu2,
        priority=1,
    )
    b.connect(producer, "kick", remote, "kick")
    return b.instantiate()


def priority_inversion_trio() -> SystemInstance:
    """The classic unbounded-priority-inversion scenario.

    High (priority 3, tight deadline) and Low (priority 1) share a data
    component; Medium (priority 2) shares nothing.  Once Low has started
    executing it holds the shared resource for the rest of its job, so
    when Medium preempts Low while High is waiting for the resource,
    High's deadline expires -- unless the translation applies the
    priority-ceiling boost
    (``TranslationOptions(use_priority_ceiling=True)``), under which Low
    runs at High's priority while holding the resource and finishes
    before High's dispatch needs it.
    """
    b = SystemBuilder("Inversion")
    cpu = b.processor(
        "cpu", scheduling=SchedulingProtocol.HIGHEST_PRIORITY_FIRST
    )
    high = b.thread(
        "high",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(4),
        compute_time=(ms(1), ms(1)),
        deadline=ms(3),
        processor=cpu,
        priority=3,
    )
    high.requires_data_access("d", classifier="SharedState")
    b.thread(
        "medium",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(12),
        compute_time=(ms(4), ms(4)),
        deadline=ms(12),
        processor=cpu,
        priority=2,
    )
    low = b.thread(
        "low",
        dispatch=DispatchProtocol.PERIODIC,
        period=ms(12),
        compute_time=(ms(2), ms(2)),
        deadline=ms(12),
        processor=cpu,
        priority=1,
    )
    low.requires_data_access("d", classifier="SharedState")
    return b.instantiate()


# An ARINC-653 style integrated-modular-avionics node: one physical
# processor time-partitioned into two virtual-processor partitions
# (flight control at 5 of every 10 ms, displays at 5 of every 20 ms)
# plus a directly-bound health-monitor thread.  Both partitions pass
# their BDR interface check analytically -- `repro analyze --hier`
# decides this model without any flattened simulation.
_ARINC_PARTITIONS_TEXT = """
processor CoreModule
  properties
    Scheduling_Protocol => RMS;
end CoreModule;

virtual processor FlightPartition
  properties
    Scheduling_Protocol => RMS;
    Period => 10 ms;
    Execution_Time => 5 ms;
end FlightPartition;

virtual processor DisplayPartition
  properties
    Scheduling_Protocol => EDF;
    Period => 20 ms;
    Execution_Time => 5 ms;
end DisplayPartition;

thread ControlLaw
  properties
    Dispatch_Protocol => Periodic;
    Period => 40 ms;
    Compute_Execution_Time => 4 ms .. 4 ms;
    Compute_Deadline => 40 ms;
end ControlLaw;

thread Navigation
  properties
    Dispatch_Protocol => Periodic;
    Period => 80 ms;
    Compute_Execution_Time => 8 ms .. 8 ms;
    Compute_Deadline => 80 ms;
end Navigation;

thread PrimaryDisplay
  properties
    Dispatch_Protocol => Periodic;
    Period => 100 ms;
    Compute_Execution_Time => 5 ms .. 5 ms;
    Compute_Deadline => 100 ms;
end PrimaryDisplay;

thread StatusPage
  properties
    Dispatch_Protocol => Periodic;
    Period => 200 ms;
    Compute_Execution_Time => 10 ms .. 10 ms;
    Compute_Deadline => 200 ms;
end StatusPage;

thread HealthMonitor
  properties
    Dispatch_Protocol => Periodic;
    Period => 20 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Compute_Deadline => 20 ms;
end HealthMonitor;

system Avionics
end Avionics;

system implementation Avionics.impl
  subcomponents
    core: processor CoreModule;
    flight: virtual processor FlightPartition;
    display: virtual processor DisplayPartition;
    control_law: thread ControlLaw;
    navigation: thread Navigation;
    primary_display: thread PrimaryDisplay;
    status_page: thread StatusPage;
    health_monitor: thread HealthMonitor;
  properties
    Actual_Processor_Binding => reference(core) applies to flight;
    Actual_Processor_Binding => reference(core) applies to display;
    Actual_Processor_Binding => reference(flight) applies to control_law;
    Actual_Processor_Binding => reference(flight) applies to navigation;
    Actual_Processor_Binding => reference(display)
        applies to primary_display;
    Actual_Processor_Binding => reference(display) applies to status_page;
    Actual_Processor_Binding => reference(core) applies to health_monitor;
end Avionics.impl;
"""


def arinc_partitions_text() -> str:
    """Textual AADL for the two-partition ARINC-653 node."""
    return _ARINC_PARTITIONS_TEXT


def arinc_partitions() -> SystemInstance:
    """Instantiated ARINC-653 node: two budgeted partitions plus a
    direct thread on the host, all schedulable by the BDR interface
    check alone."""
    model = parse_model(arinc_partitions_text())
    return instantiate(model, "Avionics.impl")


# A fault/recovery modal system: the transition-aware analysis gallery
# model.  One RMS processor; `monitor` and `control` run in every mode,
# the mode cycle nominal -> error -> recovery -> nominal swaps `filter`
# (nominal), `alarm` (error) and `recover` (recovery) in and out on the
# monitor's event ports.  Per-mode utilization: nominal 0.5625, error
# 0.8125, recovery 0.5625 -- every reachable mode harmonically
# RM-schedulable.  The declared `maintenance` mode is deliberately
# unreachable (no transition targets it) and overloaded: a sound
# transition-aware verdict must skip it, not fail on it.
_FAULT_RECOVERY_TEXT = """
processor MainCpu
  properties
    Scheduling_Protocol => RMS;
end MainCpu;

thread Monitor
  features
    fault: out event port;
    cleared: out event port;
    done: out event port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 16 ms;
    Compute_Execution_Time => 1 ms .. 1 ms;
    Compute_Deadline => 16 ms;
end Monitor;

thread Control
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Compute_Deadline => 8 ms;
end Control;

thread Filter
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Compute_Deadline => 8 ms;
end Filter;

thread Alarm
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Compute_Deadline => 4 ms;
end Alarm;

thread Recover
  properties
    Dispatch_Protocol => Periodic;
    Period => 16 ms;
    Compute_Execution_Time => 4 ms .. 4 ms;
    Compute_Deadline => 16 ms;
end Recover;

thread Sweeper
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 4 ms .. 4 ms;
    Compute_Deadline => 4 ms;
end Sweeper;

system Plant
end Plant;

system implementation Plant.impl
  subcomponents
    cpu: processor MainCpu;
    monitor: thread Monitor;
    control: thread Control;
    filter: thread Filter in modes (nominal);
    alarm: thread Alarm in modes (error);
    recover: thread Recover in modes (recovery);
    sweeper: thread Sweeper in modes (maintenance);
  modes
    nominal: initial mode;
    error: mode;
    recovery: mode;
    maintenance: mode;
    t0: nominal -[monitor.fault]-> error;
    t1: error -[monitor.cleared]-> recovery;
    t2: recovery -[monitor.done]-> nominal;
  properties
    Actual_Processor_Binding => reference(cpu) applies to monitor;
    Actual_Processor_Binding => reference(cpu) applies to control;
    Actual_Processor_Binding => reference(cpu) applies to filter;
    Actual_Processor_Binding => reference(cpu) applies to alarm;
    Actual_Processor_Binding => reference(cpu) applies to recover;
    Actual_Processor_Binding => reference(cpu) applies to sweeper;
end Plant.impl;
"""


def fault_recovery_text() -> str:
    """Textual AADL for the fault/recovery modal system."""
    return _FAULT_RECOVERY_TEXT


def fault_recovery() -> SystemInstance:
    """The fault/recovery system instantiated in its initial (nominal)
    mode; pass the parsed :func:`fault_recovery_text` model to
    :func:`repro.modal.analyze_modal` for the transition-aware verdict."""
    model = parse_model(fault_recovery_text())
    return instantiate(model, "Plant.impl")
