"""Component types, implementations and the declarative model (paper S2).

AADL separates a component's externally visible *type* (category, features,
properties) from its *implementation* (subcomponents, connections, modes).
A :class:`DeclarativeModel` is a flat namespace of both -- the stand-in for
an OSATE workspace -- from which :func:`repro.aadl.instance.instantiate`
builds a component-instance tree.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.errors import AadlError, AadlNameError
from repro.aadl.features import Feature
from repro.aadl.properties import PropertyHolder


class ComponentCategory(enum.Enum):
    """The component categories of the AADL core language that the paper's
    translation touches."""

    SYSTEM = "system"
    PROCESS = "process"
    THREAD = "thread"
    THREAD_GROUP = "thread group"
    PROCESSOR = "processor"
    VIRTUAL_PROCESSOR = "virtual processor"
    BUS = "bus"
    MEMORY = "memory"
    DEVICE = "device"
    DATA = "data"

    @classmethod
    def parse(cls, text: str) -> "ComponentCategory":
        for member in cls:
            if member.value == text.lower():
                return member
        raise AadlError(f"unknown component category {text!r}")

    @property
    def is_execution_platform(self) -> bool:
        return self in (
            ComponentCategory.PROCESSOR,
            ComponentCategory.VIRTUAL_PROCESSOR,
            ComponentCategory.BUS,
            ComponentCategory.MEMORY,
            ComponentCategory.DEVICE,
        )

    @property
    def is_application(self) -> bool:
        return self in (
            ComponentCategory.SYSTEM,
            ComponentCategory.PROCESS,
            ComponentCategory.THREAD,
            ComponentCategory.THREAD_GROUP,
            ComponentCategory.DATA,
        )

    @property
    def can_be_ultimate_endpoint(self) -> bool:
        """Ultimate sources/destinations of semantic connections are thread
        or device components (paper S2)."""
        return self in (ComponentCategory.THREAD, ComponentCategory.DEVICE)


class ComponentType(PropertyHolder):
    """A component type: category, features and type-level properties."""

    def __init__(self, name: str, category: ComponentCategory) -> None:
        super().__init__()
        if not isinstance(name, str) or not name:
            raise AadlError(f"invalid component type name {name!r}")
        if "." in name:
            raise AadlError(
                f"component type name may not contain '.': {name!r}"
            )
        if not isinstance(category, ComponentCategory):
            raise AadlError(f"invalid category {category!r}")
        self.name = name
        self.category = category
        self.features: Dict[str, Feature] = {}

    def add_feature(self, feature: Feature) -> Feature:
        key = feature.name.lower()
        if key in self.features:
            raise AadlNameError(
                f"duplicate feature {feature.name!r} in type {self.name}"
            )
        self.features[key] = feature
        return feature

    def feature(self, name: str) -> Feature:
        try:
            return self.features[name.lower()]
        except KeyError:
            raise AadlNameError(
                f"type {self.name} has no feature {name!r}"
            ) from None

    def __repr__(self) -> str:
        return f"ComponentType({self.name!r}, {self.category.value})"


class Subcomponent(PropertyHolder):
    """A subcomponent declaration inside an implementation."""

    def __init__(
        self,
        name: str,
        category: ComponentCategory,
        classifier: str,
        in_modes: Sequence[str] = (),
    ) -> None:
        super().__init__()
        if not isinstance(name, str) or not name:
            raise AadlError(f"invalid subcomponent name {name!r}")
        self.name = name
        self.category = category
        self.classifier = classifier
        self.in_modes = tuple(in_modes)

    def __repr__(self) -> str:
        return (
            f"Subcomponent({self.name!r}, {self.category.value}, "
            f"{self.classifier!r})"
        )


class ComponentImplementation(PropertyHolder):
    """A component implementation: ``TypeName.implName`` with
    subcomponents, connections and modes."""

    def __init__(self, name: str) -> None:
        super().__init__()
        if not isinstance(name, str) or name.count(".") != 1:
            raise AadlError(
                f"implementation name must be 'Type.impl', got {name!r}"
            )
        self.name = name
        self.type_name, self.impl_name = name.split(".")
        self.subcomponents: Dict[str, Subcomponent] = {}
        # Connections and modes are stored in declaration order.
        from repro.aadl.connections import Connection
        from repro.aadl.modes import Mode, ModeTransition

        self.connections: List[Connection] = []
        self.modes: Dict[str, Mode] = {}
        self.mode_transitions: List[ModeTransition] = []

    def add_subcomponent(self, sub: Subcomponent) -> Subcomponent:
        key = sub.name.lower()
        if key in self.subcomponents:
            raise AadlNameError(
                f"duplicate subcomponent {sub.name!r} in {self.name}"
            )
        self.subcomponents[key] = sub
        return sub

    def subcomponent(self, name: str) -> Subcomponent:
        try:
            return self.subcomponents[name.lower()]
        except KeyError:
            raise AadlNameError(
                f"implementation {self.name} has no subcomponent {name!r}"
            ) from None

    def add_connection(self, connection) -> None:
        if any(c.name == connection.name for c in self.connections):
            raise AadlNameError(
                f"duplicate connection {connection.name!r} in {self.name}"
            )
        self.connections.append(connection)

    def add_mode(self, mode) -> None:
        key = mode.name.lower()
        if key in self.modes:
            raise AadlNameError(
                f"duplicate mode {mode.name!r} in {self.name}"
            )
        self.modes[key] = mode

    def initial_mode(self):
        initials = [m for m in self.modes.values() if m.initial]
        if not self.modes:
            return None
        if len(initials) != 1:
            raise AadlError(
                f"{self.name} must declare exactly one initial mode, "
                f"found {len(initials)}"
            )
        return initials[0]

    def __repr__(self) -> str:
        return f"ComponentImplementation({self.name!r})"


class DeclarativeModel:
    """A flat namespace of component types and implementations.

    Names are case-insensitive, as in AADL.  The declarative model plays
    the role of the OSATE workspace: it owns declarations and resolves
    classifier references.
    """

    def __init__(self) -> None:
        self._types: Dict[str, ComponentType] = {}
        self._impls: Dict[str, ComponentImplementation] = {}

    def add_type(self, ctype: ComponentType) -> ComponentType:
        key = ctype.name.lower()
        if key in self._types:
            raise AadlNameError(f"duplicate component type {ctype.name!r}")
        self._types[key] = ctype
        return ctype

    def add_implementation(
        self, impl: ComponentImplementation
    ) -> ComponentImplementation:
        key = impl.name.lower()
        if key in self._impls:
            raise AadlNameError(f"duplicate implementation {impl.name!r}")
        if impl.type_name.lower() not in self._types:
            raise AadlNameError(
                f"implementation {impl.name!r} refers to unknown type "
                f"{impl.type_name!r}"
            )
        self._impls[key] = impl
        return impl

    def type(self, name: str) -> ComponentType:
        try:
            return self._types[name.lower()]
        except KeyError:
            raise AadlNameError(f"unknown component type {name!r}") from None

    def implementation(self, name: str) -> ComponentImplementation:
        try:
            return self._impls[name.lower()]
        except KeyError:
            raise AadlNameError(f"unknown implementation {name!r}") from None

    def has_type(self, name: str) -> bool:
        return name.lower() in self._types

    def has_implementation(self, name: str) -> bool:
        return name.lower() in self._impls

    def types(self) -> List[ComponentType]:
        return list(self._types.values())

    def implementations(self) -> List[ComponentImplementation]:
        return list(self._impls.values())

    def resolve(self, classifier: str):
        """Resolve a classifier reference to ``(type, impl-or-None)``."""
        if "." in classifier:
            impl = self.implementation(classifier)
            return self.type(impl.type_name), impl
        return self.type(classifier), None

    def type_of_impl(self, impl: ComponentImplementation) -> ComponentType:
        return self.type(impl.type_name)

    def __repr__(self) -> str:
        return (
            f"DeclarativeModel(types={len(self._types)}, "
            f"implementations={len(self._impls)})"
        )
