"""Pretty-printer for the AADL object model (round-trips with the parser)."""

from __future__ import annotations

from typing import List

from repro.aadl.components import (
    ComponentImplementation,
    ComponentType,
    DeclarativeModel,
)
from repro.aadl.connections import ConnectionKind
from repro.aadl.features import AccessFeature, Port, PortDirection, PortKind
from repro.aadl.properties import (
    DispatchProtocol,
    OverflowHandlingProtocol,
    PropertyAssociation,
    ReferenceValue,
    SchedulingProtocol,
    TimeRange,
    TimeValue,
)


def format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, TimeValue):
        return str(value)
    if isinstance(value, TimeRange):
        return str(value)
    if isinstance(value, ReferenceValue):
        return str(value)
    if isinstance(
        value, (DispatchProtocol, SchedulingProtocol, OverflowHandlingProtocol)
    ):
        return value.value
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(v) for v in value) + ")"
    if isinstance(value, str):
        return f'"{value}"'
    raise TypeError(f"cannot format property value {value!r}")


def _format_assoc(assoc: PropertyAssociation) -> str:
    applies = (
        " applies to " + ".".join(assoc.applies_to) if assoc.applies_to else ""
    )
    name = "::".join(part.capitalize() for part in assoc.name.split("::"))
    return f"{name} => {format_value(assoc.value)}{applies};"


def _format_property_block(holder) -> str:
    if not holder.properties:
        return ""
    inner = " ".join(_format_assoc(a) for a in holder.properties)
    return " { " + inner + " }"


def format_type(ctype: ComponentType) -> str:
    lines: List[str] = [f"{ctype.category.value} {ctype.name}"]
    if ctype.features:
        lines.append("  features")
        for feature in ctype.features.values():
            if isinstance(feature, Port):
                direction = feature.direction.value
                kind = feature.kind.value
                block = _format_property_block(feature)
                lines.append(
                    f"    {feature.name}: {direction} {kind} port{block};"
                )
            elif isinstance(feature, AccessFeature):
                classifier = (
                    f" {feature.classifier}" if feature.classifier else ""
                )
                lines.append(
                    f"    {feature.name}: {feature.kind.value} "
                    f"{feature.category.value} access{classifier};"
                )
    if ctype.properties:
        lines.append("  properties")
        for assoc in ctype.properties:
            lines.append(f"    {_format_assoc(assoc)}")
    lines.append(f"end {ctype.name};")
    return "\n".join(lines)


def format_implementation(impl: ComponentImplementation, category) -> str:
    lines: List[str] = [f"{category.value} implementation {impl.name}"]
    if impl.subcomponents:
        lines.append("  subcomponents")
        for sub in impl.subcomponents.values():
            block = _format_property_block(sub)
            modes = (
                " in modes (" + ", ".join(sub.in_modes) + ")"
                if sub.in_modes
                else ""
            )
            lines.append(
                f"    {sub.name}: {sub.category.value} "
                f"{sub.classifier}{block}{modes};"
            )
    if impl.connections:
        lines.append("  connections")
        for conn in impl.connections:
            kind = "port" if conn.kind is ConnectionKind.PORT else "data access"
            block = _format_property_block(conn)
            modes = (
                " in modes (" + ", ".join(conn.in_modes) + ")"
                if conn.in_modes
                else ""
            )
            lines.append(
                f"    {conn.name}: {kind} {conn.source} -> "
                f"{conn.destination}{block}{modes};"
            )
    if impl.modes or impl.mode_transitions:
        lines.append("  modes")
        for mode in impl.modes.values():
            marker = "initial mode" if mode.initial else "mode"
            lines.append(f"    {mode.name}: {marker};")
        for idx, trans in enumerate(impl.mode_transitions):
            lines.append(
                f"    mt{idx}: {trans.source} -[{trans.trigger}]-> "
                f"{trans.target};"
            )
    if impl.properties:
        lines.append("  properties")
        for assoc in impl.properties:
            lines.append(f"    {_format_assoc(assoc)}")
    lines.append(f"end {impl.name};")
    return "\n".join(lines)


def format_model(model: DeclarativeModel) -> str:
    """Print a declarative model as parseable textual AADL."""
    parts: List[str] = []
    for ctype in model.types():
        parts.append(format_type(ctype))
    for impl in model.implementations():
        category = model.type(impl.type_name).category
        parts.append(format_implementation(impl, category))
    return "\n\n".join(parts) + "\n"
